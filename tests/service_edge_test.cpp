// service/ edge cases the happy-path fleet tests never reach: a sink
// whose stream goes bad mid-write, submissions racing shutdown, and a
// sweep whose pool quarantines out from under it.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "service/fleet.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;
using namespace mc::service;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

SweepReport minimal_report(SweepId id) {
  SweepReport r;
  r.id = id;
  r.name = "edge";
  return r;
}

// ---- JsonLinesSink write failure ----------------------------------------------

TEST(JsonLinesSinkEdge, WriteFailureIsCountedAndRecoveredFrom) {
  std::ostringstream os;
  JsonLinesSink sink(os);

  // First report lands while the stream is broken: the line is lost, the
  // failure is counted, and the sink must clear the state instead of
  // wedging every later report.
  os.setstate(std::ios::failbit);
  sink.on_sweep(minimal_report(1));
  EXPECT_EQ(sink.write_failures(), 1u);

  sink.on_sweep(minimal_report(2));
  EXPECT_EQ(sink.write_failures(), 1u);  // recovered — no new failure
  const std::string out = os.str();
  EXPECT_EQ(out.find("\"id\":1"), std::string::npos);  // dropped line
  EXPECT_NE(out.find("\"id\":2"), std::string::npos);  // retried stream

  sink.on_sweep(minimal_report(3));
  EXPECT_EQ(sink.write_failures(), 1u);
  EXPECT_NE(os.str().find("\"id\":3"), std::string::npos);
}

TEST(JsonLinesSinkEdge, FailingStreamNeverStopsTheFleet) {
  auto env = make_env(3);
  std::ostringstream os;
  os.setstate(std::ios::badbit);  // broken from the start
  auto sink = std::make_shared<JsonLinesSink>(os);

  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  fleet.add_sink(sink);
  SweepSpec spec;
  spec.name = "doomed-sink";
  spec.pool_index = pool;
  spec.modules = {"hal.dll"};
  fleet.start();
  ASSERT_NE(fleet.submit(spec), 0u);
  fleet.drain();

  EXPECT_EQ(fleet.stats().completed_runs, 1u);  // the sweep itself ran
  EXPECT_EQ(sink->write_failures(), 1u);
}

// ---- submit after close / drain -----------------------------------------------

TEST(SweepQueueEdge, PushAfterCloseIsRefused) {
  SweepQueue q;
  QueuedSweep run;
  run.id = 1;
  EXPECT_TRUE(q.push(run));
  q.close();
  QueuedSweep late;
  late.id = 2;
  EXPECT_FALSE(q.push(late));
  EXPECT_EQ(q.pending(), 1u);  // the backlog is kept, the late push is not
}

TEST(FleetEdge, SubmitAfterDrainReturnsZero) {
  auto env = make_env(3);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  fleet.start();
  fleet.drain();

  SweepSpec spec;
  spec.name = "too-late";
  spec.pool_index = pool;
  spec.modules = {"hal.dll"};
  EXPECT_EQ(fleet.submit(spec), 0u);
  EXPECT_EQ(fleet.stats().submitted, 0u);
}

// ---- fully quarantined pool ---------------------------------------------------

TEST(FleetEdge, FullyQuarantinedPoolExhaustsInsteadOfSpinning) {
  auto env = make_env(3);
  vmm::FaultProfile always;
  always.read_fault_rate = 1.0;
  for (const vmm::DomainId vm : env->guests()) {
    env->hypervisor().fault_injector().arm(vm, always);
  }

  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  SweepSpec spec;
  spec.name = "dead-pool";
  spec.pool_index = pool;
  spec.modules = {"hal.dll", "ntfs.sys", "http.sys"};
  fleet.start();
  ASSERT_NE(fleet.submit(spec), 0u);
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 1u);
  const SweepReport& report = reports[0];
  // The first module scan quarantines every VM; the remaining modules are
  // skipped rather than re-polling a dead pool.
  EXPECT_TRUE(report.pool_exhausted);
  ASSERT_EQ(report.scans.size(), 1u);
  EXPECT_EQ(report.quarantined.size(), env->guests().size());
  EXPECT_FALSE(report.cancelled);
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"pool_exhausted\":true"), std::string::npos);
  EXPECT_EQ(fleet.stats().exhausted_runs, 1u);
  EXPECT_EQ(fleet.stats().quarantine_events, env->guests().size());
}

TEST(FleetEdge, CancellingASweepOnAQuarantiningPoolStopsItMidRun) {
  auto env = make_env(4);
  env->hypervisor().fault_injector().arm(env->guests()[1],
                                         vmm::FaultProfile{1.0});

  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);

  // Cancel from the module hook: the hook fires before the first module's
  // scan, the cancellation is observed at the next module boundary — the
  // run ends after exactly one (quarantining) scan, deterministically.
  std::atomic<bool> cancelled_once{false};
  FleetService* fleet_ptr = &fleet;
  fleet.set_module_hook([&cancelled_once, fleet_ptr](
                            SweepId id, std::size_t, const std::string&) {
    if (!cancelled_once.exchange(true)) {
      fleet_ptr->cancel(id);
    }
  });

  SweepSpec spec;
  spec.name = "cancel-me";
  spec.pool_index = pool;
  spec.modules = {"hal.dll", "ntfs.sys", "http.sys"};
  spec.repeat = 3;  // recurrences must die with the cancellation too
  spec.cadence = sim_ms(100);
  fleet.start();
  ASSERT_NE(fleet.submit(spec), 0u);
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 1u);  // no recurrence after cancel
  const SweepReport& report = reports[0];
  EXPECT_TRUE(report.cancelled);
  ASSERT_EQ(report.scans.size(), 1u);  // stopped at the module boundary
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], env->guests()[1]);
  EXPECT_EQ(fleet.stats().cancelled_runs, 1u);
  EXPECT_EQ(fleet.stats().completed_runs, 0u);
}

}  // namespace
