// Property suite for the paper's central claim: "ModChecker is able to
// detect ANY change in a kernel module's headers and executable content".
//
// For every module and every integrity-item class, a single byte inside
// the item is flipped in one guest's memory; ModChecker must flag that VM
// and attribute the mismatch to the right item.  Symmetrically, changes
// to the *excluded* surfaces (writable .data, discardable .reloc) must not
// raise a flag — they are outside the detection contract.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "pe/parser.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;

/// How strictly the flagged-item set must match.
enum class Expect {
  kExact,     // flagged == { item } (pure content changes)
  kContains,  // item is flagged; cascades allowed (a corrupted section
              // header also changes how its section data is extracted)
  kAnyFlag,   // corrupting structural fields may leave the module
              // unparseable, reported as MODULE_UNPARSEABLE instead
};

struct PatchCase {
  const char* module;
  const char* item;     // integrity item that must be flagged
  double position;      // relative offset within the item [0, 1)
  Expect expect = Expect::kExact;
};

void PrintTo(const PatchCase& c, std::ostream* os) {
  *os << c.module << ":" << c.item << "@" << c.position;
}

class DetectAnyChange : public ::testing::TestWithParam<PatchCase> {
 protected:
  DetectAnyChange() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 4;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  /// Finds the guest-image RVA range of an item by parsing the victim's
  /// module the same way the checker does.
  core::IntegrityItem find_item(const std::string& module,
                              const std::string& item_name) {
    SimClock clock;
    vmi::VmiSession session(env_->hypervisor(), env_->guests()[0], clock);
    core::ModuleSearcher searcher(session);
    const auto image = searcher.extract_module(module);
    EXPECT_TRUE(image.has_value());
    const core::ModuleParser parser;
    for (auto& item : parser.parse(*image, clock).items) {
      if (item.name == item_name) {
        return item;
      }
    }
    ADD_FAILURE() << "no item " << item_name << " in " << module;
    return {};
  }

  std::unique_ptr<cloud::CloudEnvironment> env_;
};

TEST_P(DetectAnyChange, SingleByteFlipIsAttributedToTheRightItem) {
  const PatchCase& c = GetParam();
  const core::IntegrityItem item = find_item(c.module, c.item);
  ASSERT_FALSE(item.bytes.empty());

  const auto rva = item.rva + static_cast<std::uint32_t>(
                                  c.position *
                                  static_cast<double>(item.bytes.size()));
  attacks::BytePatchAttack(rva, 0xA5).apply(*env_, env_->guests()[0],
                                            c.module);

  core::ModChecker checker(env_->hypervisor());
  const auto report = checker.check_module(env_->guests()[0], c.module);
  EXPECT_FALSE(report.subject_clean);
  ASSERT_FALSE(report.flagged_items.empty());
  const auto& flagged = report.flagged_items;
  const bool has_item =
      std::find(flagged.begin(), flagged.end(), c.item) != flagged.end();
  switch (c.expect) {
    case Expect::kExact:
      EXPECT_EQ(flagged, std::vector<std::string>{c.item});
      break;
    case Expect::kContains:
      EXPECT_TRUE(has_item);
      break;
    case Expect::kAnyFlag:
      EXPECT_TRUE(has_item ||
                  std::find(flagged.begin(), flagged.end(),
                            core::ModChecker::kUnparseableItem) !=
                      flagged.end());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModulesAllItems, DetectAnyChange,
    ::testing::Values(
        // DOS header + stub (E3's surface).  Offset 0 destroys the MZ
        // magic itself -> module may become unparseable, which is also a
        // (stronger) detection.
        PatchCase{"hal.dll", "IMAGE_DOS_HEADER", 0.0, Expect::kAnyFlag},
        PatchCase{"hal.dll", "IMAGE_DOS_HEADER", 0.9},
        PatchCase{"dummy.sys", "IMAGE_DOS_HEADER", 0.5},
        // NT header: corrupting NumberOfSections & co. can break the walk.
        PatchCase{"hal.dll", "IMAGE_NT_HEADER", 0.3, Expect::kAnyFlag},
        PatchCase{"http.sys", "IMAGE_NT_HEADER", 0.8},
        // Optional header, incl. the data directories tail.
        PatchCase{"hal.dll", "IMAGE_OPTIONAL_HEADER", 0.1,
                  Expect::kAnyFlag},
        PatchCase{"ntfs.sys", "IMAGE_OPTIONAL_HEADER", 0.95},
        // Section headers: a corrupted VirtualSize/VirtualAddress also
        // changes what gets extracted as that section's data (cascade).
        PatchCase{"hal.dll", "SECTION_HEADER[.text]", 0.2,
                  Expect::kContains},
        PatchCase{"tcpip.sys", "SECTION_HEADER[.data]", 0.5,
                  Expect::kContains},
        PatchCase{"http.sys", "SECTION_HEADER[.reloc]", 0.7,
                  Expect::kContains},
        // Executable content at many positions (E1/E2's surface).
        PatchCase{"hal.dll", ".text", 0.01},
        PatchCase{"hal.dll", ".text", 0.37},
        PatchCase{"hal.dll", ".text", 0.99},
        PatchCase{"http.sys", ".text", 0.5},
        PatchCase{"ntoskrnl.exe", ".text", 0.66},
        PatchCase{"dummy.sys", ".text", 0.25},
        // Read-only data is part of the checked surface too.
        PatchCase{"hal.dll", ".rdata", 0.4},
        PatchCase{"ntfs.sys", ".rdata", 0.8}));

// ---- the excluded surfaces ------------------------------------------------------------
class ExcludedSurface : public ::testing::TestWithParam<const char*> {};

TEST_P(ExcludedSurface, WritableDataChangesAreNotFlagged) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 4;
  cloud::CloudEnvironment env(cfg);
  const std::string module = GetParam();

  // Locate .data within the victim's image and flip a byte mid-section.
  SimClock clock;
  vmi::VmiSession session(env.hypervisor(), env.guests()[0], clock);
  const auto image = core::ModuleSearcher(session).extract_module(module);
  ASSERT_TRUE(image.has_value());
  const pe::ParsedImage parsed(image->bytes);
  const auto* data = parsed.find_section(".data");
  ASSERT_NE(data, nullptr);

  attacks::BytePatchAttack(data->VirtualAddress + data->VirtualSize / 2, 0x5A)
      .apply(env, env.guests()[0], module);

  core::ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], module);
  EXPECT_TRUE(report.subject_clean)
      << module << ": writable .data must be outside the checked surface";
  EXPECT_TRUE(report.flagged_items.empty());
}

INSTANTIATE_TEST_SUITE_P(Modules, ExcludedSurface,
                         ::testing::Values("hal.dll", "http.sys",
                                           "ntfs.sys"));

// ---- multi-position .text fuzz (denser sweep on the E1/E2 surface) -------------------
class TextFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TextFuzz, EveryTextOffsetClassIsCaught) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cfg.base_seed = static_cast<std::uint64_t>(GetParam()) * 17 + 3;
  cloud::CloudEnvironment env(cfg);

  SimClock clock;
  vmi::VmiSession session(env.hypervisor(), env.guests()[0], clock);
  const auto image = core::ModuleSearcher(session).extract_module("tcpip.sys");
  ASSERT_TRUE(image.has_value());
  const pe::ParsedImage parsed(image->bytes);
  const auto* text = parsed.find_section(".text");
  ASSERT_NE(text, nullptr);

  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const auto rva = text->VirtualAddress +
                   static_cast<std::uint32_t>(rng.below(text->VirtualSize));
  const auto mask = static_cast<std::uint8_t>(rng.range(1, 255));
  attacks::BytePatchAttack(rva, mask).apply(env, env.guests()[0],
                                            "tcpip.sys");

  core::ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "tcpip.sys");
  EXPECT_FALSE(report.subject_clean)
      << "rva=" << rva << " mask=" << int{mask};
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextFuzz, ::testing::Range(0, 12));

}  // namespace
