// Mixed-format fleet: one FleetService sweeping a Windows/PE32 pool and a
// Linux/ELF64 pool concurrently, with format auto-detection doing the
// per-module plugin routing.  Runs under the tsan ctest label — the two
// pools' sweeps interleave on the worker pool, so the format registry and
// both parser paths must be clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "cloud/linux.hpp"
#include "elf/parser.hpp"
#include "guestos/kernel.hpp"
#include "guestos/ko_loader.hpp"
#include "service/fleet.hpp"

namespace {

using namespace mc;
using namespace mc::service;

std::unique_ptr<cloud::CloudEnvironment> make_pe_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

std::unique_ptr<cloud::LinuxEnvironment> make_elf_env(std::size_t guests) {
  cloud::LinuxCloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::LinuxEnvironment>(cfg);
}

SweepSpec spec(std::string name, std::size_t pool,
               std::vector<std::string> modules, int priority = 0) {
  SweepSpec s;
  s.name = std::move(name);
  s.pool_index = pool;
  s.modules = std::move(modules);
  s.priority = priority;
  return s;
}

/// Patches one .text byte of a loaded .ko in guest memory (the ELF E1
/// analogue, done inline — the attack layer is PE-specific).
void patch_ko_text(cloud::LinuxEnvironment& env, vmm::DomainId vm,
                   const std::string& module) {
  const guestos::LoadedKo* ko = env.loader(vm).find(module);
  ASSERT_NE(ko, nullptr);
  const elf::ElfImage image{ByteView(env.golden_file(module))};
  const elf::Elf64Shdr* text = image.find_section(".text");
  ASSERT_NE(text, nullptr);
  const std::uint32_t va =
      ko->base + static_cast<std::uint32_t>(text->sh_offset) + 5;
  const Bytes patch = {0xCC};
  env.kernel(vm).address_space().write_virtual(va, ByteView(patch));
}

TEST(MixedFleet, CleanPoolsOfBothFormatsDrainSilently) {
  auto pe_env = make_pe_env(4);
  auto elf_env = make_elf_env(4);

  FleetService fleet({/*workers=*/4});
  const std::size_t pe_pool =
      fleet.add_pool(pe_env->hypervisor(), pe_env->guests());
  const std::size_t elf_pool =
      fleet.add_pool(elf_env->hypervisor(), elf_env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.start();  // submit after start: workers race the submissions

  const int kSweepsPerPool = 4;
  for (int i = 0; i < kSweepsPerPool; ++i) {
    fleet.submit(spec("pe" + std::to_string(i), pe_pool,
                      {"hal.dll", "ntfs.sys"}, i % 2));
    fleet.submit(spec("elf" + std::to_string(i), elf_pool,
                      {"scsi_mod", "hello"}, i % 2));
  }
  fleet.drain();

  EXPECT_EQ(ring->total_seen(), 2u * kSweepsPerPool);
  EXPECT_EQ(fleet.stats().completed_runs, 2u * kSweepsPerPool);
  for (const auto& report : ring->snapshot()) {
    EXPECT_TRUE(report.findings.empty()) << report.name;
    EXPECT_EQ(report.scans.size(), 2u) << report.name;
    for (const auto& scan : report.scans) {
      for (const auto& verdict : scan.verdicts) {
        EXPECT_TRUE(verdict.clean)
            << report.name << " " << scan.module_name << " vm " << verdict.vm;
      }
    }
  }
}

TEST(MixedFleet, InfectionsLocalizedPerFormatUnderConcurrency) {
  auto pe_env = make_pe_env(5);
  auto elf_env = make_elf_env(5);
  const vmm::DomainId pe_victim = pe_env->guests()[2];
  const vmm::DomainId elf_victim = elf_env->guests()[1];
  attacks::InlineHookAttack{}.apply(*pe_env, pe_victim, "hal.dll");
  patch_ko_text(*elf_env, elf_victim, "scsi_mod");

  FleetService fleet({/*workers=*/4});
  const std::size_t pe_pool =
      fleet.add_pool(pe_env->hypervisor(), pe_env->guests());
  const std::size_t elf_pool =
      fleet.add_pool(elf_env->hypervisor(), elf_env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.start();

  const int kSweepsPerPool = 3;
  for (int i = 0; i < kSweepsPerPool; ++i) {
    fleet.submit(spec("pe" + std::to_string(i), pe_pool,
                      {"hal.dll", "ntfs.sys"}));
    fleet.submit(spec("elf" + std::to_string(i), elf_pool,
                      {"scsi_mod", "hello"}));
  }
  fleet.drain();

  const auto reports = ring->snapshot();
  EXPECT_EQ(reports.size(), 2u * kSweepsPerPool);
  for (const auto& report : reports) {
    // Every sweep of either pool flags exactly its own victim on exactly
    // its own infected module — no cross-format bleed-through.
    ASSERT_EQ(report.findings.size(), 1u) << report.name;
    if (report.pool_index == pe_pool) {
      EXPECT_EQ(report.findings[0].module, "hal.dll") << report.name;
      EXPECT_EQ(report.findings[0].vm, pe_victim) << report.name;
    } else {
      EXPECT_EQ(report.findings[0].module, "scsi_mod") << report.name;
      EXPECT_EQ(report.findings[0].vm, elf_victim) << report.name;
    }
  }
}

}  // namespace
