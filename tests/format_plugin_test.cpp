// Format-plugin seam: registry detection/resolution, the CLI format
// spellings, and the PE32 differential guarantee — the plugin path must
// be byte-identical to the direct pe::ParsedImage walk it replaced
// (items, verdicts, digest-driven vote counts and simulated costs).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "cloud/linux.hpp"
#include "modchecker/format.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report_json.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace {

using namespace mc;
using namespace mc::core;

ModuleImage owned_image(Bytes bytes) {
  ModuleImage image;
  image.name = "img";
  image.bytes = std::move(bytes);
  return image;
}

Bytes golden_pe() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 1;
  const cloud::CloudEnvironment env{cfg};
  // Memory layout — the plugins parse mapped images, as acquired from a
  // guest, not disk files.
  return pe::map_image(ByteView(env.golden().file("hal.dll")));
}

Bytes golden_ko() {
  return cloud::build_ko_image(cloud::default_ko_catalog().front());
}

// ---- registry ---------------------------------------------------------------

TEST(FormatRegistry, DetectsPeAndElfMagic) {
  const auto& registry = FormatRegistry::process_default();
  ASSERT_EQ(registry.formats().size(), 2u);

  const Bytes pe = golden_pe();
  const ModuleFormat* detected = registry.detect(ByteView(pe).first(16));
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->id(), ModuleFormatId::kPe32);
  EXPECT_EQ(detected->name(), "pe32");

  const Bytes ko = golden_ko();
  detected = registry.detect(ByteView(ko).first(16));
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->id(), ModuleFormatId::kElf64);
  EXPECT_EQ(detected->name(), "elf64");
}

TEST(FormatRegistry, UnrecognizedMagicIsNullptrAndResolveThrows) {
  const auto& registry = FormatRegistry::process_default();
  const Bytes garbage(64, 0xAA);
  EXPECT_EQ(registry.detect(ByteView(garbage).first(16)), nullptr);
  EXPECT_THROW(registry.resolve(owned_image(garbage), ModuleFormatId::kAuto),
               FormatError);
}

TEST(FormatRegistry, ExplicitFormatPinsThePlugin) {
  const auto& registry = FormatRegistry::process_default();
  const ModuleImage ko = owned_image(golden_ko());
  EXPECT_EQ(&registry.resolve(ko, ModuleFormatId::kElf64), &elf64_format());
  // A pinned plugin is returned regardless of the magic; the mismatch
  // surfaces as a FormatError at parse time.
  EXPECT_EQ(&registry.resolve(ko, ModuleFormatId::kPe32), &pe32_format());
  EXPECT_THROW(pe32_format().extract_items(ko), FormatError);
}

TEST(FormatRegistry, ResolveSniffsTinyImagesWithoutThrowingBadAccess) {
  const auto& registry = FormatRegistry::process_default();
  EXPECT_THROW(registry.resolve(owned_image(Bytes{0x7F}),
                                ModuleFormatId::kAuto),
               FormatError);
  EXPECT_THROW(registry.resolve(owned_image(Bytes{}), ModuleFormatId::kAuto),
               FormatError);
}

TEST(FormatNames, CliSpellingsRoundTrip) {
  EXPECT_EQ(parse_module_format("auto"), ModuleFormatId::kAuto);
  EXPECT_EQ(parse_module_format("pe32"), ModuleFormatId::kPe32);
  EXPECT_EQ(parse_module_format("elf64"), ModuleFormatId::kElf64);
  EXPECT_THROW(parse_module_format("coff"), InvalidArgument);
  for (const ModuleFormatId id :
       {ModuleFormatId::kAuto, ModuleFormatId::kPe32, ModuleFormatId::kElf64}) {
    EXPECT_EQ(parse_module_format(to_string(id)), id);
  }
}

TEST(FormatPolicies, PluginsCarryTheirLoaderRecipes) {
  const FixupPolicy pe = pe32_format().fixup_policy();
  EXPECT_EQ(pe.width, 4u);
  EXPECT_EQ(pe.alt_width, 0u);
  EXPECT_EQ(pe.base_bias, 0u);

  const FixupPolicy elf = elf64_format().fixup_policy();
  EXPECT_EQ(elf.width, 8u);
  EXPECT_EQ(elf.alt_width, 4u);
  EXPECT_EQ(elf.base_bias, 0xFFFFFFFF00000000ull);
}

// ---- PE differential: plugin vs direct ParsedImage walk ---------------------

TEST(PeDifferential, PluginItemsMatchDirectParserByteForByte) {
  const Bytes file = golden_pe();
  const ModuleImage image = owned_image(file);
  const auto plugin_items = pe32_format().extract_items(image);

  const ByteView mapped{file};
  const pe::ParsedImage parsed(mapped);
  const auto direct_items = parsed.extract_items(mapped);

  ASSERT_EQ(plugin_items.size(), direct_items.size());
  for (std::size_t i = 0; i < plugin_items.size(); ++i) {
    const IntegrityItem& a = plugin_items[i];
    const IntegrityItem& b = direct_items[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.rva, b.rva) << i;
    EXPECT_EQ(a.rva_sensitive, b.rva_sensitive) << i;
    EXPECT_EQ(a.bytes, b.bytes) << a.name;
  }
}

TEST(PeDifferential, AutoAndPinnedScansAreReportIdentical) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 5;
  const cloud::CloudEnvironment env{cfg};

  ModCheckerConfig auto_cfg;  // kAuto is the default
  ModCheckerConfig pinned_cfg;
  pinned_cfg.format = ModuleFormatId::kPe32;

  ModChecker auto_checker(env.hypervisor(), auto_cfg);
  ModChecker pinned_checker(env.hypervisor(), pinned_cfg);
  const auto a = auto_checker.scan_pool("hal.dll", env.guests());
  const auto b = pinned_checker.scan_pool("hal.dll", env.guests());

  // The serialized reports carry verdicts, per-stage simulated costs and
  // the fast-path counters — byte equality covers all of it.
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(a.fastpath_pairs, 10u);  // clean C(5,2)
  for (const auto& verdict : a.verdicts) {
    EXPECT_TRUE(verdict.clean);
  }
}

TEST(PeDifferential, ElfPinOnPePoolFlagsEveryCopyInsteadOfThrowing) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  const cloud::CloudEnvironment env{cfg};
  ModCheckerConfig pinned;
  pinned.format = ModuleFormatId::kElf64;
  ModChecker checker(env.hypervisor(), pinned);
  const auto report = checker.scan_pool("hal.dll", env.guests());
  ASSERT_EQ(report.verdicts.size(), 3u);
  for (const auto& verdict : report.verdicts) {
    EXPECT_FALSE(verdict.clean);  // every copy is a parse failure
  }
}

}  // namespace
