// Unit tests for mc_x86: instruction encodings, the length decoder, cave
// scanning, and the synthetic driver code generator.
#include <gtest/gtest.h>

#include "x86/assembler.hpp"
#include "x86/codegen.hpp"
#include "x86/decoder.hpp"

namespace {

using namespace mc;
using namespace mc::x86;

// ---- encodings (exact bytes; E1 depends on these being genuine IA-32) --------
TEST(Assembler, PaperOpcodePair) {
  Assembler as;
  as.dec_ecx();
  EXPECT_EQ(as.code(), Bytes{0x49});

  Assembler as2;
  as2.sub_ecx_imm8(1);
  EXPECT_EQ(as2.code(), (Bytes{0x83, 0xE9, 0x01}));
}

TEST(Assembler, SingleByteOps) {
  Assembler as;
  as.nop();
  as.ret();
  as.int3();
  as.push_ebp();
  as.pop_ebp();
  as.inc_eax();
  EXPECT_EQ(as.code(), (Bytes{0x90, 0xC3, 0xCC, 0x55, 0x5D, 0x40}));
}

TEST(Assembler, TwoByteOps) {
  Assembler as;
  as.mov_ebp_esp();
  as.xor_eax_eax();
  EXPECT_EQ(as.code(), (Bytes{0x89, 0xE5, 0x31, 0xC0}));
}

TEST(Assembler, MovEaxAbsEncodesA1AndRecordsFixup) {
  Assembler as;
  as.mov_eax_abs(0xF8CC2010);
  ASSERT_EQ(as.code().size(), 5u);
  EXPECT_EQ(as.code()[0], 0xA1);
  EXPECT_EQ(load_le32(as.code(), 1), 0xF8CC2010u);
  ASSERT_EQ(as.fixups().size(), 1u);
  EXPECT_EQ(as.fixups()[0], 1u);  // operand offset
}

TEST(Assembler, MovRegImmIsNotAFixup) {
  Assembler as;
  as.mov_reg_imm32(Reg::kEcx, 0x12345678);
  EXPECT_EQ(as.code()[0], 0xB9);
  EXPECT_TRUE(as.fixups().empty());
}

TEST(Assembler, MovRegAddrIsAFixup) {
  Assembler as;
  as.mov_reg_addr(Reg::kEdx, 0xF8001000);
  EXPECT_EQ(as.code()[0], 0xBA);
  EXPECT_EQ(as.fixups().size(), 1u);
}

TEST(Assembler, CallIndirectAbs) {
  Assembler as;
  as.call_indirect_abs(0xF8003004);
  ASSERT_EQ(as.code().size(), 6u);
  EXPECT_EQ(as.code()[0], 0xFF);
  EXPECT_EQ(as.code()[1], 0x15);
  EXPECT_EQ(load_le32(as.code(), 2), 0xF8003004u);
  EXPECT_EQ(as.fixups(), (std::vector<std::uint32_t>{2}));
}

TEST(Assembler, RelativeCallComputesDisplacement) {
  Assembler as;
  as.nop();          // offset 0
  as.call_to(0x50);  // call at 1, next instruction at 6
  ASSERT_EQ(as.code().size(), 6u);
  EXPECT_EQ(as.code()[1], 0xE8);
  EXPECT_EQ(static_cast<std::int32_t>(load_le32(as.code(), 2)), 0x50 - 6);
}

TEST(Assembler, BackwardJmp) {
  Assembler as;
  as.nop();
  as.nop();
  as.jmp_to(0);  // jmp at 2, ends at 7, rel = -7
  EXPECT_EQ(static_cast<std::int32_t>(load_le32(as.code(), 3)), -7);
}

TEST(Assembler, CaveEmitsZeros) {
  Assembler as;
  as.cave(12);
  EXPECT_EQ(as.code(), Bytes(12, 0x00));
}

// ---- decoder ---------------------------------------------------------------------
TEST(Decoder, LengthsForEmittedSubset) {
  Assembler as;
  as.push_ebp();           // 1
  as.mov_ebp_esp();        // 2
  as.mov_reg_imm32(Reg::kEcx, 5);  // 5
  as.dec_ecx();            // 1
  as.sub_ecx_imm8(1);      // 3
  as.cmp_eax_imm32(7);     // 5
  as.jz_rel8(1);           // 2
  as.call_rel32(0);        // 5
  as.call_indirect_abs(0x1000);  // 6
  as.ret();                // 1

  const ByteView code = as.code();
  std::size_t off = 0;
  for (const std::uint32_t expected : {1u, 2u, 5u, 1u, 3u, 5u, 2u, 5u, 6u, 1u}) {
    const auto len = instruction_length(code, off);
    ASSERT_TRUE(len.has_value()) << "at offset " << off;
    EXPECT_EQ(*len, expected) << "at offset " << off;
    off += *len;
  }
  EXPECT_EQ(off, code.size());
}

TEST(Decoder, RejectsUnknownOpcode) {
  const Bytes code = {0x0F, 0x05};  // syscall — outside the subset
  EXPECT_FALSE(instruction_length(code, 0).has_value());
}

TEST(Decoder, RejectsTruncatedInstruction) {
  const Bytes code = {0xE8, 0x01};  // call rel32 needs 5 bytes
  EXPECT_FALSE(instruction_length(code, 0).has_value());
}

TEST(Decoder, CoverInstructionsFindsWholeBoundary) {
  Assembler as;
  as.push_ebp();     // 1
  as.mov_ebp_esp();  // 2
  as.mov_reg_imm32(Reg::kEcx, 9);  // 5
  const auto covered = cover_instructions(as.code(), 0, 5);
  ASSERT_TRUE(covered.has_value());
  EXPECT_EQ(*covered, 8u);  // 1 + 2 + 5: must not split the mov
}

TEST(Decoder, CoverInstructionsFailsOnGarbage) {
  const Bytes code = {0x90, 0x0F, 0xFF};
  EXPECT_FALSE(cover_instructions(code, 0, 3).has_value());
}

TEST(Decoder, FindCaves) {
  Bytes code = {0x90, 0x00, 0x00, 0x00, 0x90, 0x00, 0x00,
                0x00, 0x00, 0x00, 0x00, 0x90};
  const auto caves = find_caves(code, 4);
  ASSERT_EQ(caves.size(), 1u);
  EXPECT_EQ(caves[0].offset, 5u);
  EXPECT_EQ(caves[0].length, 6u);

  const auto small = find_caves(code, 3);
  ASSERT_EQ(small.size(), 2u);
  EXPECT_EQ(small[0].offset, 1u);
  EXPECT_EQ(small[0].length, 3u);
}

TEST(Decoder, FindCavesAtBufferEnd) {
  Bytes code = {0x90, 0x00, 0x00, 0x00};
  const auto caves = find_caves(code, 3);
  ASSERT_EQ(caves.size(), 1u);
  EXPECT_EQ(caves[0].offset, 1u);
}

// ---- codegen ----------------------------------------------------------------------
CodeGenParams small_params() {
  CodeGenParams p;
  p.seed = 11;
  p.function_count = 5;
  p.ops_per_function = 30;
  p.data_rva = 0x3000;
  p.data_size = 0x1000;
  return p;
}

TEST(CodeGen, DeterministicForSameSeed) {
  const CodeBlob a = generate_driver_text(small_params(), 0x10000);
  const CodeBlob b = generate_driver_text(small_params(), 0x10000);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.fixups, b.fixups);
  EXPECT_EQ(a.function_offsets, b.function_offsets);
}

TEST(CodeGen, DifferentSeedsProduceDifferentCode) {
  auto p = small_params();
  const CodeBlob a = generate_driver_text(p, 0x10000);
  p.seed = 12;
  const CodeBlob b = generate_driver_text(p, 0x10000);
  EXPECT_NE(a.code, b.code);
}

TEST(CodeGen, SizeIndependentOfOperandValues) {
  // The two-pass golden-image build relies on this: same shape params,
  // different base/IAT values, identical size.
  auto p = small_params();
  p.iat_slot_rvas = {0x4000, 0x4004};
  const CodeBlob a = generate_driver_text(p, 0x10000);
  p.iat_slot_rvas = {0x7000, 0x7104};
  const CodeBlob b = generate_driver_text(p, 0x00400000);
  EXPECT_EQ(a.code.size(), b.code.size());
  EXPECT_EQ(a.fixups, b.fixups);
  EXPECT_EQ(a.function_offsets, b.function_offsets);
}

TEST(CodeGen, EveryFunctionIsFullyDecodable) {
  const CodeBlob blob = generate_driver_text(small_params(), 0x10000);
  // Decode from each function start until its ret; all instructions must
  // be within the decoder subset.
  for (std::size_t f = 0; f < blob.function_offsets.size(); ++f) {
    std::size_t off = blob.function_offsets[f];
    const std::size_t end = (f + 1 < blob.function_offsets.size())
                                ? blob.function_offsets[f + 1]
                                : blob.code.size();
    bool saw_ret = false;
    while (off < end) {
      if (blob.code[off] == 0xC3) {
        saw_ret = true;
        break;
      }
      const auto len = instruction_length(blob.code, off);
      ASSERT_TRUE(len.has_value()) << "fn " << f << " offset " << off;
      off += *len;
    }
    EXPECT_TRUE(saw_ret) << "fn " << f;
  }
}

TEST(CodeGen, FixupsPointAtPlausibleAddresses) {
  const std::uint32_t image_base = 0x00400000;
  const CodeBlob blob = generate_driver_text(small_params(), image_base);
  EXPECT_FALSE(blob.fixups.empty());
  for (const std::uint32_t off : blob.fixups) {
    ASSERT_LE(off + 4, blob.code.size());
    const std::uint32_t va = load_le32(blob.code, off);
    EXPECT_GE(va, image_base);
    EXPECT_LT(va, image_base + 0x01000000);
  }
}

TEST(CodeGen, EntryIsLastFunction) {
  const CodeBlob blob = generate_driver_text(small_params(), 0x10000);
  EXPECT_EQ(blob.entry_offset, blob.function_offsets.back());
}

TEST(CodeGen, EveryFunctionContainsDecEcx) {
  // E1's target instruction must exist in every generated module.
  const CodeBlob blob = generate_driver_text(small_params(), 0x10000);
  for (std::size_t f = 0; f < blob.function_offsets.size(); ++f) {
    std::size_t off = blob.function_offsets[f];
    bool found = false;
    while (off < blob.code.size() && blob.code[off] != 0xC3) {
      if (blob.code[off] == 0x49) {
        found = true;
        break;
      }
      const auto len = instruction_length(blob.code, off);
      ASSERT_TRUE(len.has_value());
      off += *len;
    }
    EXPECT_TRUE(found) << "fn " << f;
  }
}

TEST(CodeGen, InterFunctionCavesExist) {
  auto p = small_params();
  p.cave_min = 16;
  p.cave_max = 32;
  const CodeBlob blob = generate_driver_text(p, 0x10000);
  const auto caves = find_caves(blob.code, 16);
  EXPECT_GE(caves.size(), p.function_count - 1);
}

TEST(CodeGen, IatCallsEmittedWhenSlotsProvided) {
  auto p = small_params();
  p.iat_slot_rvas = {0x4000};
  p.address_op_fraction = 0.5;
  const CodeBlob blob = generate_driver_text(p, 0x10000);
  // Look for FF 15 with the slot VA.
  bool found = false;
  for (std::size_t i = 0; i + 6 <= blob.code.size(); ++i) {
    if (blob.code[i] == 0xFF && blob.code[i + 1] == 0x15 &&
        load_le32(blob.code, i + 2) == 0x10000 + 0x4000) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
