// Unit & property tests for Algorithm 2 (RVA adjustment) — the paper's
// core mechanism, including its published examples and edge cases.
#include <gtest/gtest.h>

#include "modchecker/rva_adjust.hpp"
#include "util/rng.hpp"

namespace {

using namespace mc;
using namespace mc::core;

// ---- base_difference_offset (Algorithm 2 lines 1-9) ---------------------------
TEST(BaseOffset, PaperFigure4Bases) {
  // Fig. 4: bases '00 20 CC F8' and '00 C0 D0 F8' (little-endian byte
  // sequences of 0xF8CC2000 and 0xF8D0C000): first byte equal, second
  // differs -> offset 2.
  EXPECT_EQ(base_difference_offset(0xF8CC2000, 0xF8D0C000), 2u);
}

TEST(BaseOffset, PaperSectionIVExample) {
  // §IV-C: "if the base addresses are '00 CC 20 F8' and '00 CC 90 70', the
  // first two bytes of the base address are the same" -> offset 3.
  EXPECT_EQ(base_difference_offset(0xF820CC00, 0x7090CC00), 3u);
}

TEST(BaseOffset, FirstByteDiffers) {
  EXPECT_EQ(base_difference_offset(0xF8000001, 0xF8000002), 1u);
}

TEST(BaseOffset, OnlyHighByteDiffers) {
  EXPECT_EQ(base_difference_offset(0xF8000000, 0xF9000000), 4u);
}

TEST(BaseOffset, IdenticalBases) {
  EXPECT_EQ(base_difference_offset(0xF8CC2000, 0xF8CC2000), 0u);
}

// ---- helpers ---------------------------------------------------------------------
struct TestSection {
  Bytes a;
  Bytes b;
  std::vector<std::uint32_t> planted;  // offsets of planted addresses
};

/// Builds two copies of a section with `addresses` relocated absolute
/// addresses planted at pseudo-random positions.
TestSection make_section(std::size_t size, std::size_t addresses,
                         std::uint32_t base_a, std::uint32_t base_b,
                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TestSection s;
  s.a.resize(size);
  for (auto& byte : s.a) {
    byte = static_cast<std::uint8_t>(rng.next());
  }
  s.b = s.a;
  std::size_t cursor = 4;
  for (std::size_t i = 0; i < addresses && cursor + 4 < size; ++i) {
    const auto rva = static_cast<std::uint32_t>(rng.below(0x80000));
    store_le32(s.a, cursor, base_a + rva);
    store_le32(s.b, cursor, base_b + rva);
    s.planted.push_back(static_cast<std::uint32_t>(cursor));
    cursor += 4 + 1 + rng.below(size / (addresses + 1) + 1);
  }
  return s;
}

// ---- basic recovery ------------------------------------------------------------------
TEST(AdjustRvas, RecoversAllRelocationsAndEqualizesBuffers) {
  auto s = make_section(4096, 50, 0xF8CC2000, 0xF8D0C000, 1);
  const auto result = adjust_rvas(s.a, 0xF8CC2000, s.b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, s.planted.size());
  EXPECT_EQ(result.unresolved_diffs, 0u);
  EXPECT_EQ(s.a, s.b);
}

TEST(AdjustRvas, ReplacesAddressesWithCommonRva) {
  Bytes a(16, 0x90);
  Bytes b(16, 0x90);
  store_le32(a, 4, 0xF8CC2000 + 0x1234);
  store_le32(b, 4, 0xF8D0C000 + 0x1234);
  const auto result = adjust_rvas(a, 0xF8CC2000, b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, 1u);
  EXPECT_EQ(load_le32(a, 4), 0x1234u);
  EXPECT_EQ(load_le32(b, 4), 0x1234u);
}

TEST(AdjustRvas, IdenticalSectionsUntouched) {
  Bytes a(256, 0x33);
  Bytes b = a;
  const auto result = adjust_rvas(a, 0xF8000000, b, 0xF8100000);
  EXPECT_EQ(result.adjusted, 0u);
  EXPECT_EQ(result.unresolved_diffs, 0u);
  EXPECT_EQ(a, Bytes(256, 0x33));
}

TEST(AdjustRvas, InfectionProducesUnresolvedDiffs) {
  auto s = make_section(4096, 20, 0xF8CC2000, 0xF8D0C000, 2);
  // Simulate an inline hook: clobber 5 bytes of copy A between addresses.
  for (std::size_t i = 2000; i < 2005; ++i) {
    s.a[i] = static_cast<std::uint8_t>(~s.a[i]);
  }
  const auto result = adjust_rvas(s.a, 0xF8CC2000, s.b, 0xF8D0C000);
  EXPECT_GT(result.unresolved_diffs, 0u);
  EXPECT_FALSE(result.sections_identical_after());
  EXPECT_NE(s.a, s.b);
}

TEST(AdjustRvas, EqualBasesCountDiffsOnly) {
  Bytes a(64, 0);
  Bytes b(64, 0);
  b[10] = 1;
  b[20] = 2;
  const auto result = adjust_rvas(a, 0xF8000000, b, 0xF8000000);
  EXPECT_EQ(result.adjusted, 0u);
  EXPECT_EQ(result.unresolved_diffs, 2u);
}

TEST(AdjustRvas, LengthMismatchCountsTrailingBytes) {
  Bytes a(64, 7);
  Bytes b(60, 7);
  const auto result = adjust_rvas(a, 0xF8000000, b, 0xF8100000);
  EXPECT_EQ(result.unresolved_diffs, 4u);
}

// ---- section-edge handling ---------------------------------------------------------
TEST(AdjustRvas, AddressAtSectionStart) {
  Bytes a(16, 0x90);
  Bytes b(16, 0x90);
  store_le32(a, 0, 0xF8CC2000 + 0x10);
  store_le32(b, 0, 0xF8D0C000 + 0x10);
  const auto result = adjust_rvas(a, 0xF8CC2000, b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, 1u);
  EXPECT_EQ(load_le32(a, 0), 0x10u);
}

TEST(AdjustRvas, AddressFlushWithSectionEnd) {
  Bytes a(16, 0x90);
  Bytes b(16, 0x90);
  store_le32(a, 12, 0xF8CC2000 + 0x20);
  store_le32(b, 12, 0xF8D0C000 + 0x20);
  const auto result = adjust_rvas(a, 0xF8CC2000, b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, 1u);
}

TEST(AdjustRvas, DifferenceTooCloseToEndIsUnresolved) {
  // A lone differing byte 2 from the end cannot host a 4-byte address
  // starting at j-1 (offset 2): window would overrun.
  Bytes a(16, 0x90);
  Bytes b(16, 0x90);
  a[15] = 0x11;
  b[15] = 0x22;
  const auto result = adjust_rvas(a, 0xF8CC2000, b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, 0u);
  EXPECT_EQ(result.unresolved_diffs, 1u);
}

TEST(AdjustRvas, DifferenceTooCloseToStartIsUnresolved) {
  // offset 4 (bases differ at the top byte) but the difference is at j=1:
  // the address would start at j-3 = -2.
  Bytes a(16, 0x90);
  Bytes b(16, 0x90);
  a[1] = 0x11;
  b[1] = 0x22;
  const auto result = adjust_rvas(a, 0xF8000000, b, 0xF9000000);
  EXPECT_EQ(result.adjusted, 0u);
  EXPECT_EQ(result.unresolved_diffs, 1u);
}

TEST(AdjustRvas, BackToBackAddresses) {
  Bytes a(24, 0x90);
  Bytes b(24, 0x90);
  for (std::size_t off = 4; off <= 12; off += 4) {
    store_le32(a, off, 0xF8CC2000 + static_cast<std::uint32_t>(off));
    store_le32(b, off, 0xF8D0C000 + static_cast<std::uint32_t>(off));
  }
  const auto result = adjust_rvas(a, 0xF8CC2000, b, 0xF8D0C000);
  EXPECT_EQ(result.adjusted, 3u);
  EXPECT_EQ(result.unresolved_diffs, 0u);
  EXPECT_EQ(a, b);
}

TEST(AdjustRvas, EmptySections) {
  Bytes a;
  Bytes b;
  const auto result = adjust_rvas(a, 0xF8000000, b, 0xF8100000);
  EXPECT_EQ(result.adjusted, 0u);
  EXPECT_EQ(result.unresolved_diffs, 0u);
}

// ---- property sweep: base pairs x address densities --------------------------------
struct SweepCase {
  std::uint32_t base_a;
  std::uint32_t base_b;
  std::size_t addresses;
};

class AdjustSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AdjustSweep, FullRecoveryOnCleanPairs) {
  const auto& c = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto s = make_section(8192, c.addresses, c.base_a, c.base_b, seed);
    const auto result = adjust_rvas(s.a, c.base_a, s.b, c.base_b);
    EXPECT_EQ(result.adjusted, s.planted.size()) << "seed " << seed;
    EXPECT_EQ(result.unresolved_diffs, 0u) << "seed " << seed;
    EXPECT_EQ(s.a, s.b) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasePairsAndDensities, AdjustSweep,
    ::testing::Values(
        // offset 1 (page-unaligned hypothetical), 2, 3, 4 base pairs.
        SweepCase{0xF8CC2001, 0xF8CC2002, 20},
        SweepCase{0xF8CC2000, 0xF8D0C000, 20},   // Fig. 4 pair
        SweepCase{0xF820CC00, 0x7090CC00, 20},   // §IV-C pair
        SweepCase{0xF8000000, 0xF9000000, 20},
        SweepCase{0xF8CC2000, 0xF8D0C000, 1},
        SweepCase{0xF8CC2000, 0xF8D0C000, 200},
        SweepCase{0xF8001000, 0xF8002000, 64},
        SweepCase{0x00010000, 0xFFFF0000, 32}));  // extreme delta

// Evasion resistance (adversarial property): an attacker controlling ONE
// VM's copy cannot craft any in-place modification that Algorithm 2
// "normalizes away".  At a differing position the algorithm accepts the
// bytes only if V_attacker - base1 == V_reference - base2, i.e.
// V_attacker == base1 + rva_reference — which IS the original value on
// the attacker's VM.  Any actual change therefore always survives as an
// unresolved difference.  This sweep tries the attacker's best moves:
// overwriting relocation sites with values that look like relocations.
TEST(AdjustRvas, AttackerCannotForgeConsistentRelocation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto s = make_section(4096, 24, 0xF8CC2000, 0xF8D0C000, seed);
    Xoshiro256 rng(seed * 31);
    // Attack copy A at one planted relocation site with a *valid-looking*
    // absolute address (base1 + arbitrary rva) that differs from the
    // original.
    const std::uint32_t victim = s.planted[rng.below(s.planted.size())];
    const std::uint32_t original = load_le32(s.a, victim);
    std::uint32_t forged = original;
    while (forged == original) {
      forged = 0xF8CC2000 + static_cast<std::uint32_t>(rng.below(0x80000));
    }
    store_le32(s.a, victim, forged);

    const auto result = adjust_rvas(s.a, 0xF8CC2000, s.b, 0xF8D0C000);
    EXPECT_GT(result.unresolved_diffs, 0u) << "seed " << seed;
    EXPECT_NE(s.a, s.b) << "seed " << seed;
  }
}

// Property: a single corrupted byte inside a planted address makes the
// pair unresolvable at that site (rva1 != rva2) and detection survives.
TEST(AdjustRvas, CorruptedRelocationIsNotFalselyMatched) {
  auto s = make_section(2048, 10, 0xF8CC2000, 0xF8D0C000, 9);
  // Corrupt the low byte of the 3rd planted address in copy A only.
  const std::uint32_t victim = s.planted[2];
  s.a[victim] = static_cast<std::uint8_t>(s.a[victim] ^ 0x40);
  const auto result = adjust_rvas(s.a, 0xF8CC2000, s.b, 0xF8D0C000);
  EXPECT_GT(result.unresolved_diffs, 0u);
  EXPECT_NE(s.a, s.b);
}

}  // namespace
