// End-to-end smoke test: boot a small cloud, check a module across the
// pool, expect clean verdicts and sensible component timing.
#include <gtest/gtest.h>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report.hpp"

namespace {

using namespace mc;

TEST(Smoke, CleanPoolChecksClean) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 4;
  cloud::CloudEnvironment env(cfg);

  core::ModChecker checker(env.hypervisor());
  const auto report =
      checker.check_module(env.guests()[0], "http.sys");

  EXPECT_TRUE(report.subject_clean) << core::format_report(report);
  EXPECT_EQ(report.successes, 3u);
  EXPECT_EQ(report.total_comparisons, 3u);
  EXPECT_TRUE(report.flagged_items.empty());
  EXPECT_TRUE(report.missing_on.empty());

  // Module-Searcher must dominate (paper §V-C.1).
  EXPECT_GT(report.cpu_times.searcher, report.cpu_times.parser);
  EXPECT_GT(report.cpu_times.searcher, report.cpu_times.checker);
  EXPECT_GT(report.cpu_times.total(), 0u);
}

TEST(Smoke, ModulesLoadAtDifferentBases) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cloud::CloudEnvironment env(cfg);

  const auto* m0 = env.loader(env.guests()[0]).find("http.sys");
  const auto* m1 = env.loader(env.guests()[1]).find("http.sys");
  ASSERT_NE(m0, nullptr);
  ASSERT_NE(m1, nullptr);
  EXPECT_NE(m0->base, m1->base);
}

}  // namespace
