// Telemetry substrate tests: registry semantics (counters, owned cells,
// gauges, histogram bucket edges), span nesting and ordering under a real
// thread pool, the VmiSession stats()-during-read torn-snapshot regression,
// and the differential guarantee that telemetry-off report JSON is
// byte-identical to a run with no telemetry configured at all.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report_json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;

// ---- registry --------------------------------------------------------------

TEST(MetricRegistry, CounterHandlesShareOneAggregate) {
  telemetry::MetricRegistry reg;
  telemetry::Counter a = reg.counter("x.count");
  telemetry::Counter b = reg.counter("x.count");
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(MetricRegistry, CountersSumAcrossThreads) {
  telemetry::MetricRegistry reg;
  telemetry::Counter c = reg.counter("mt.count");
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futs;
    for (int t = 0; t < kThreads; ++t) {
      futs.push_back(pool.submit([&c] {
        for (int i = 0; i < kIncs; ++i) {
          c.inc();
        }
      }));
    }
    for (auto& f : futs) {
      f.get();
    }
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(MetricRegistry, OwnedCounterFoldsIntoAggregateOnDestroy) {
  telemetry::MetricRegistry reg;
  telemetry::Counter view = reg.counter("fold.count");
  {
    telemetry::OwnedCounter mine = reg.owned_counter("fold.count");
    mine.inc(7);
    EXPECT_EQ(mine.value(), 7u);   // this object's contribution
    EXPECT_EQ(view.value(), 7u);   // already visible in the aggregate
  }
  // The cell died; its count survives in the aggregate (monotonicity).
  EXPECT_EQ(view.value(), 7u);
  telemetry::OwnedCounter next = reg.owned_counter("fold.count");
  next.inc(3);
  EXPECT_EQ(next.value(), 3u);  // fresh cell starts at zero
  EXPECT_EQ(view.value(), 10u);
}

TEST(MetricRegistry, GaugeSetAndAdd) {
  telemetry::MetricRegistry reg;
  telemetry::Gauge g = reg.gauge("depth");
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
}

TEST(MetricRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  telemetry::MetricRegistry reg;
  telemetry::Histogram h =
      reg.histogram("lat", telemetry::HistogramSpec{{10, 100, 1000}});
  h.observe(10);    // == edge -> bucket 0
  h.observe(11);    // just past -> bucket 1
  h.observe(100);   // == edge -> bucket 1
  h.observe(1000);  // == edge -> bucket 2
  h.observe(1001);  // past the last edge -> overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u + 11 + 100 + 1000 + 1001);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf
}

TEST(MetricRegistry, DisabledRegistryHandlesAreNoOps) {
  telemetry::MetricRegistry& off = telemetry::MetricRegistry::disabled();
  EXPECT_FALSE(off.enabled());
  telemetry::Counter c = off.counter("ghost.count");
  telemetry::Gauge g = off.gauge("ghost.gauge");
  telemetry::Histogram h = off.histogram("ghost.hist");
  telemetry::OwnedCounter o = off.owned_counter("ghost.owned");
  c.inc(100);
  g.set(100);
  h.observe(100);
  o.inc(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(o.value(), 0u);
  EXPECT_TRUE(off.snapshot().empty());
}

TEST(MetricRegistry, SnapshotIsSortedAndSerializes) {
  telemetry::MetricRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("g").set(-4);
  reg.histogram("h", telemetry::HistogramSpec{{10}}).observe(3);
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[1].name, "b.count");
  const std::string json = telemetry::to_json(snap);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[10,1],[\"+inf\",0]]"),
            std::string::npos);
}

TEST(MetricRegistry, ResolveMapsNullToProcessDefault) {
  EXPECT_EQ(&telemetry::resolve(nullptr),
            &telemetry::MetricRegistry::process_default());
  telemetry::MetricRegistry mine;
  EXPECT_EQ(&telemetry::resolve(&mine), &mine);
}

// ---- tracing ---------------------------------------------------------------

TEST(TraceRecorder, NestedSpansRecordDepthAndOrdering) {
  telemetry::TraceRecorder rec;
  {
    telemetry::SpanScope outer = rec.span("outer", "test");
    {
      telemetry::SpanScope inner = rec.span("inner", "test", 0, 0);
      inner.arg("k", std::string("v"));
    }
  }
  const auto spans = rec.drain();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_TRUE(rec.drain().empty());  // drain() cleared them
}

TEST(TraceRecorder, SimClockStampsSimDuration) {
  telemetry::TraceRecorder rec;
  SimClock clock;
  clock.advance_raw(100);
  {
    telemetry::SpanScope s = rec.span("work", "test", 0, 0, &clock);
    clock.advance_raw(250);
  }
  const auto spans = rec.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].sim_start, 100u);
  EXPECT_EQ(spans[0].sim_dur, 250u);
}

TEST(TraceRecorder, NullRecorderHelperIsFreeOfEffects) {
  telemetry::SpanScope s = telemetry::span(nullptr, "ghost", "test");
  EXPECT_FALSE(static_cast<bool>(s));
  s.arg("k", std::uint64_t{1});  // must not crash
  s.end();
}

TEST(TraceRecorder, SpansFromManyThreadsAllComplete) {
  telemetry::TraceRecorder rec;
  constexpr int kThreads = 6;
  constexpr int kSpans = 200;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futs;
    for (int t = 0; t < kThreads; ++t) {
      futs.push_back(pool.submit([&rec, t] {
        for (int i = 0; i < kSpans; ++i) {
          telemetry::SpanScope outer =
              rec.span("outer", "mt", 0, static_cast<std::uint64_t>(t));
          telemetry::SpanScope inner =
              rec.span("inner", "mt", 0, static_cast<std::uint64_t>(t));
        }
      }));
    }
    for (auto& f : futs) {
      f.get();
    }
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kSpans * 2);
  // seq values are unique and dense.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(spans.size());
  for (const auto& s : spans) {
    seqs.push_back(s.seq);
    EXPECT_LE(s.depth, 1u);  // per-thread nesting never exceeded two levels
  }
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i);
  }
}

TEST(TraceRecorder, ChromeTraceIsAValidJsonArray) {
  telemetry::TraceRecorder rec;
  {
    telemetry::SpanScope s = rec.span("scan", "pipeline", 1, 2);
    s.arg("module", std::string("hal.dll"));
    s.arg("pairs", std::uint64_t{14});
  }
  std::ostringstream os;
  telemetry::write_chrome_trace(os, rec.drain());
  const std::string trace = os.str();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"name\":\"scan\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"module\":\"hal.dll\""), std::string::npos);
  EXPECT_NE(trace.find("\"pairs\":14"), std::string::npos);
  EXPECT_EQ(trace.find('\''), std::string::npos);
}

// ---- VmiSession torn-snapshot regression -----------------------------------

// Hammers stats() from one thread while another performs guest reads.
// With the historical plain-struct counters this was a data race (torn
// 64-bit reads) that TSan flags; the registry cells make it clean.
TEST(VmiSessionStats, SnapshotDuringConcurrentReadsIsRaceFree) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 2;
  cloud::CloudEnvironment env(cfg);
  SimClock clock;
  vmi::VmiSession session(env.hypervisor(), env.guests()[0], clock);
  // A guaranteed-mapped kernel VA: the loader list head itself.
  const std::uint32_t list_va = session.symbol_to_va("PsLoadedModuleList");

  std::atomic<bool> stop{false};
  ThreadPool pool(2);
  auto reader = pool.submit([&] {
    Bytes buf(8);  // LIST_ENTRY {Flink, Blink}
    for (int i = 0; i < 300; ++i) {
      session.read_va(list_va, MutableByteView(buf));
    }
    stop.store(true);
  });
  auto observer = pool.submit([&] {
    std::uint64_t last = 0;
    // Bounded so a reader failure can never wedge the pool join.
    for (long i = 0; i < 200000000L && !stop.load(); ++i) {
      const vmi::VmiStats s = session.stats();
      EXPECT_GE(s.read_calls, last);  // monotone under concurrency
      last = s.read_calls;
    }
    return last;
  });
  reader.get();
  observer.get();
  EXPECT_GE(session.stats().read_calls, 300u);
}

// ---- differential byte-identity --------------------------------------------

core::PoolScanReport scan_with(const cloud::CloudEnvironment& env,
                               core::ModCheckerConfig cfg) {
  core::ModChecker checker(env.hypervisor(), std::move(cfg));
  return checker.scan_pool("hal.dll", env.guests());
}

TEST(TelemetryDifferential, ReportJsonUnchangedUnlessOptedIn) {
  cloud::CloudConfig cloud_cfg;
  cloud_cfg.guest_count = 4;
  cloud::CloudEnvironment env(cloud_cfg);

  // Baseline: no telemetry configured anywhere.
  const std::string plain = core::to_json(scan_with(env, {}));

  // Same scan with a private registry + tracer wired in but emit off: the
  // report must stay byte-identical — observers must not perturb output.
  telemetry::MetricRegistry reg;
  telemetry::TraceRecorder rec;
  core::ModCheckerConfig wired;
  wired.metrics = &reg;
  wired.tracer = &rec;
  const std::string observed = core::to_json(scan_with(env, wired));
  EXPECT_EQ(plain, observed);
  EXPECT_GT(rec.completed(), 0u);  // the tracer really was active

  // Explicitly disabled registry: still byte-identical.
  core::ModCheckerConfig off;
  off.metrics = &telemetry::MetricRegistry::disabled();
  EXPECT_EQ(plain, core::to_json(scan_with(env, off)));

  // Opting in appends exactly one new field.
  telemetry::MetricRegistry reg2;
  core::ModCheckerConfig emit;
  emit.metrics = &reg2;
  emit.emit_telemetry = true;
  const std::string with = core::to_json(scan_with(env, emit));
  EXPECT_NE(with.find(",\"telemetry\":{"), std::string::npos);
  EXPECT_NE(with.find("\"pipeline.pool_scans\""), std::string::npos);
  // The new field is appended immediately before the report's closing '}'.
  EXPECT_EQ(with.find(",\"telemetry\":{"), plain.size() - 1);
}

TEST(TelemetryDifferential, PipelineStagesLandInOneRegistry) {
  cloud::CloudConfig cloud_cfg;
  cloud_cfg.guest_count = 3;
  cloud::CloudEnvironment env(cloud_cfg);
  telemetry::MetricRegistry reg;
  telemetry::TraceRecorder rec;
  core::ModCheckerConfig cfg;
  cfg.metrics = &reg;
  cfg.tracer = &rec;
  core::ModChecker checker(env.hypervisor(), std::move(cfg));
  const core::PoolScanReport report =
      checker.scan_pool("hal.dll", env.guests());
  EXPECT_FALSE(report.verdicts.empty());
  // The pool scan's spans, before the single-subject check adds its own.
  const std::vector<telemetry::SpanRecord> scan_spans = rec.drain();
  // A single-subject check exercises the digest-memo path too.
  checker.check_module(env.guests()[0], "hal.dll");

  const std::string json = telemetry::to_json(reg.snapshot());
  // Every layer routed through the one registry: vmi, pool, canonical,
  // digest memo, pipeline counters and stage histograms.
  for (const char* name :
       {"vmi.read_calls", "vmi.pool.created", "canonical.eligible",
        "digest_memo.hits", "pipeline.checks", "pipeline.pool_scans",
        "pipeline.acquire.attempts", "pipeline.acquire.sim_ns",
        "pipeline.compare.sim_ns"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }

  // One span per stage per domain for the staged part: acquire + parse per
  // VM, plus pool-level normalize/compare/vote under one pool_scan span.
  std::size_t acquire = 0;
  std::size_t parse = 0;
  std::size_t pool_scan = 0;
  for (const auto& s : scan_spans) {
    acquire += s.name == "acquire" ? 1u : 0u;
    parse += s.name == "parse" ? 1u : 0u;
    pool_scan += s.name == "pool_scan" ? 1u : 0u;
  }
  EXPECT_EQ(acquire, env.guests().size());
  EXPECT_EQ(parse, env.guests().size());
  EXPECT_EQ(pool_scan, 1u);
}

}  // namespace
