// Integration tests reproducing the paper's §V-B detection experiments
// (E1-E4) plus the extension attacks, asserting the exact set of flagged
// integrity items.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/dkom_hide.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report.hpp"

namespace {

using namespace mc;

class DetectionTest : public ::testing::Test {
 protected:
  DetectionTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 5;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
    env_->snapshot_all();
  }

  core::CheckReport run_check(vmm::DomainId subject,
                              const std::string& module) {
    core::ModChecker checker(env_->hypervisor());
    return checker.check_module(subject, module);
  }

  /// Applies `attack` to the module on Dom1 and checks Dom1 against the
  /// pool, asserting the flagged items match the attack's expectations.
  void expect_exact_detection(const attacks::Attack& attack,
                              const std::string& module) {
    const vmm::DomainId victim = env_->guests()[0];
    const auto result = attack.apply(*env_, victim, module);

    const auto report = run_check(victim, module);
    EXPECT_FALSE(report.subject_clean)
        << attack.name() << ": " << core::format_report(report);
    EXPECT_EQ(report.successes, 0u) << attack.name();
    EXPECT_EQ(report.total_comparisons, 4u);

    std::vector<std::string> expected = result.expected_flagged;
    std::sort(expected.begin(), expected.end());
    std::vector<std::string> actual = report.flagged_items;
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected)
        << attack.name() << ": " << core::format_report(report);

    // The rest of the pool must still vote each other clean.
    core::ModChecker checker(env_->hypervisor());
    const auto pool_report = checker.scan_pool(module, env_->guests());
    for (const auto& v : pool_report.verdicts) {
      if (v.vm == victim) {
        EXPECT_FALSE(v.clean) << attack.name();
      } else {
        EXPECT_TRUE(v.clean) << attack.name() << " Dom" << v.vm;
      }
    }
  }

  std::unique_ptr<cloud::CloudEnvironment> env_;
};

// --- E1: single opcode replacement on hal.dll (§V-B.1) ---------------------
TEST_F(DetectionTest, E1_SingleOpcodeReplacement) {
  expect_exact_detection(attacks::OpcodeReplaceAttack{}, "hal.dll");
}

// --- E2: inline hooking of hal.dll's entry function (§V-B.2) ----------------
TEST_F(DetectionTest, E2_InlineHooking) {
  expect_exact_detection(attacks::InlineHookAttack{}, "hal.dll");
}

// --- E3: DOS-stub modification of the dummy driver (§V-B.3) -----------------
TEST_F(DetectionTest, E3_StubModification) {
  expect_exact_detection(attacks::StubPatchAttack{}, "dummy.sys");
}

// --- E4: PE-header DLL hooking of dummy.sys (§V-B.4) -------------------------
TEST_F(DetectionTest, E4_DllImportInjection) {
  expect_exact_detection(attacks::DllImportInjectAttack{}, "dummy.sys");
}

// --- Extensions ---------------------------------------------------------------
TEST_F(DetectionTest, HeaderTamperFlagsOptionalHeader) {
  expect_exact_detection(attacks::HeaderTamperAttack{}, "ntfs.sys");
}

TEST_F(DetectionTest, IatHookEvadesModChecker) {
  const vmm::DomainId victim = env_->guests()[0];
  const auto result =
      attacks::IatHookAttack{}.apply(*env_, victim, "http.sys");
  EXPECT_FALSE(result.detectable_by_modchecker);

  const auto report = run_check(victim, "http.sys");
  // Documented limitation: writable .idata is not hashed.
  EXPECT_TRUE(report.subject_clean) << core::format_report(report);
}

TEST_F(DetectionTest, DkomHidingSurfacesAsMissingModule) {
  const vmm::DomainId victim = env_->guests()[0];
  attacks::DkomHideAttack{}.apply(*env_, victim, "ntfs.sys");

  // Checking from a healthy subject: the hidden VM shows up as missing.
  const auto report = run_check(env_->guests()[1], "ntfs.sys");
  ASSERT_EQ(report.missing_on.size(), 1u);
  EXPECT_EQ(report.missing_on[0], victim);
  EXPECT_TRUE(report.subject_clean);
}

TEST_F(DetectionTest, RevertRestoresCleanVerdict) {
  const vmm::DomainId victim = env_->guests()[0];
  attacks::InlineHookAttack{}.apply(*env_, victim, "hal.dll");
  ASSERT_FALSE(run_check(victim, "hal.dll").subject_clean);

  // §III: revert the flagged machine to its clean snapshot.
  env_->revert(victim);
  EXPECT_TRUE(run_check(victim, "hal.dll").subject_clean);
}

TEST_F(DetectionTest, SingleBytePatchInTextIsDetected) {
  const vmm::DomainId victim = env_->guests()[0];
  // Patch a byte in the middle of .text (RVA 0x1100 is inside code for
  // every catalog driver).
  attacks::BytePatchAttack attack(0x1100, 0x01);
  attack.apply(*env_, victim, "tcpip.sys");

  const auto report = run_check(victim, "tcpip.sys");
  EXPECT_FALSE(report.subject_clean);
  ASSERT_EQ(report.flagged_items.size(), 1u);
  EXPECT_EQ(report.flagged_items[0], ".text");
}

}  // namespace
