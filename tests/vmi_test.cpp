// Unit tests for mc_vmi: the LibVMI-like introspection session — symbol
// resolution via the debug-block scan, V2P translation with caching,
// page-wise reads, UNICODE_STRING decoding, cost accounting.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/environment.hpp"
#include "guestos/winlike.hpp"
#include "vmi/session.hpp"
#include "vmi/session_pool.hpp"
#include "workload/heavyload.hpp"

namespace {

using namespace mc;

class VmiTest : public ::testing::Test {
 protected:
  VmiTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 2;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  vmm::DomainId guest() const { return env_->guests()[0]; }

  std::unique_ptr<cloud::CloudEnvironment> env_;
  SimClock clock_;
};

TEST_F(VmiTest, AttachToMissingDomainThrows) {
  EXPECT_THROW(vmi::VmiSession(env_->hypervisor(), 999, clock_),
               NotFoundError);
}

TEST_F(VmiTest, AttachChargesTime) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  EXPECT_GE(clock_.now(), session.costs().attach);
}

TEST_F(VmiTest, DebugBlockScanResolvesSymbols) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const std::uint32_t va = session.symbol_to_va("PsLoadedModuleList");
  EXPECT_EQ(va, env_->kernel(guest()).ps_loaded_module_list_va());
  EXPECT_GT(session.stats().kdbg_frames_scanned, 0u);
  EXPECT_EQ(session.symbol_to_va("KernBase"), 0x80000000u);
}

TEST_F(VmiTest, UnknownSymbolThrows) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  EXPECT_THROW(session.symbol_to_va("NoSuchSymbol"), VmiError);
}

TEST_F(VmiTest, ScanHappensOnce) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  session.symbol_to_va("PsLoadedModuleList");
  const auto scanned = session.stats().kdbg_frames_scanned;
  session.symbol_to_va("PsLoadedModuleList");
  EXPECT_EQ(session.stats().kdbg_frames_scanned, scanned);
}

TEST_F(VmiTest, TranslationMatchesGuestPageTables) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const std::uint32_t va = env_->kernel(guest()).ps_loaded_module_list_va();
  const auto expected = env_->kernel(guest()).address_space().translate(va);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(session.translate_kv2p(va), *expected);
}

TEST_F(VmiTest, TranslationCacheHits) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const std::uint32_t va = env_->kernel(guest()).ps_loaded_module_list_va();
  session.translate_kv2p(va);
  const auto hits_before = session.stats().translation_cache_hits;
  session.translate_kv2p(va + 4);  // same page
  EXPECT_EQ(session.stats().translation_cache_hits, hits_before + 1);
}

TEST_F(VmiTest, UnmappedVaThrows) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  EXPECT_THROW(session.translate_kv2p(0x70000000), VmiError);
  Bytes buf(4, 0);
  EXPECT_THROW(session.read_va(0x70000000, buf), VmiError);
}

TEST_F(VmiTest, ReadsMatchGuestMemory) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);

  // Cross several pages to exercise the chunked path.
  const std::size_t len = 3 * vmm::kFrameSize + 123;
  const Bytes via_vmi = session.read_region(hal->base, len);
  Bytes direct(len, 0);
  env_->kernel(guest()).address_space().read_virtual(hal->base, direct);
  EXPECT_EQ(via_vmi, direct);
}

TEST_F(VmiTest, ReadStatsAccumulate) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);
  session.read_region(hal->base, 2 * vmm::kFrameSize);
  EXPECT_GE(session.stats().pages_mapped, 2u);
  EXPECT_EQ(session.stats().bytes_copied, 2u * vmm::kFrameSize);
  EXPECT_GE(session.stats().read_calls, 1u);
}

TEST_F(VmiTest, TypedReads) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const std::uint32_t head = session.symbol_to_va("PsLoadedModuleList");
  const std::uint32_t flink = session.read_u32(head);
  EXPECT_NE(flink, 0u);
  EXPECT_NE(flink, head);  // modules are loaded
  const std::uint16_t lo = session.read_u16(head);
  EXPECT_EQ(lo, flink & 0xFFFF);
}

TEST_F(VmiTest, ReadUnicodeString) {
  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  const std::uint32_t head = session.symbol_to_va("PsLoadedModuleList");
  const std::uint32_t first_entry = session.read_u32(head);
  const std::string name = session.read_unicode_string(
      first_entry + guestos::kOffBaseDllName);
  EXPECT_EQ(name, "ntoskrnl.exe");  // first module in load order
}

TEST_F(VmiTest, CostsScaleWithBytes) {
  // Superlinear page cost is a property of the *unbatched* read path (every
  // page pays the full map cost); coalescing deliberately flattens it, so
  // pin it off here.
  vmi::VmiCostModel costs;
  costs.coalesce_reads = false;
  vmi::VmiSession s1(env_->hypervisor(), guest(), clock_, costs);
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);

  const SimNanos before = clock_.now();
  s1.read_region(hal->base, vmm::kFrameSize);
  const SimNanos small = clock_.now() - before;

  const SimNanos before2 = clock_.now();
  s1.read_region(hal->base, 8 * vmm::kFrameSize);
  const SimNanos large = clock_.now() - before2;
  EXPECT_GT(large, 4 * small);
}

TEST_F(VmiTest, ContentionInflatesCharges) {
  // Same read, idle vs loaded pool: the loaded one must charge more.
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);

  SimClock idle_clock;
  {
    vmi::VmiSession session(env_->hypervisor(), guest(), idle_clock);
    session.read_region(hal->base, 4 * vmm::kFrameSize);
  }

  workload::HeavyLoad heavyload(*env_);
  heavyload.stress_guests(env_->guests().size());
  SimClock loaded_clock;
  {
    vmi::VmiSession session(env_->hypervisor(), guest(), loaded_clock);
    session.read_region(hal->base, 4 * vmm::kFrameSize);
  }
  EXPECT_GT(loaded_clock.now(), idle_clock.now());
}

TEST_F(VmiTest, BatchedReadMatchesUnbatchedByteForByte) {
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);
  const std::size_t len = 5 * vmm::kFrameSize + 777;

  vmi::VmiCostModel plain;
  plain.coalesce_reads = false;
  SimClock plain_clock;
  vmi::VmiSession unbatched(env_->hypervisor(), guest(), plain_clock, plain);
  const Bytes a = unbatched.read_region(hal->base, len);

  SimClock batched_clock;
  vmi::VmiSession batched(env_->hypervisor(), guest(), batched_clock);
  const Bytes b = batched.read_region(hal->base, len);

  EXPECT_EQ(a, b);
  // Same work copied either way; batching only cheapens the page maps.
  EXPECT_EQ(batched.stats().bytes_copied, unbatched.stats().bytes_copied);
  EXPECT_EQ(batched.stats().pages_mapped, unbatched.stats().pages_mapped);
  // Module images sit in physically contiguous frames, so the run after
  // the first page coalesces.
  EXPECT_GT(batched.stats().batched_pages, 0u);
  EXPECT_EQ(unbatched.stats().batched_pages, 0u);
  EXPECT_LT(batched_clock.now(), plain_clock.now());
}

TEST_F(VmiTest, SessionPoolReusesWarmSessions) {
  vmi::VmiSessionPool pool(env_->hypervisor());

  SimClock first_clock;
  {
    auto lease = pool.acquire(guest(), first_clock);
    lease->symbol_to_va("PsLoadedModuleList");
  }
  const SimNanos cold = first_clock.now();

  SimClock second_clock;
  {
    auto lease = pool.acquire(guest(), second_clock);
    // Warm session: symbols resolved, no re-attach, no re-scan.
    lease->symbol_to_va("PsLoadedModuleList");
    EXPECT_GT(lease->stats().session_reuses, 0u);
  }
  EXPECT_LT(second_clock.now(), cold);

  const auto stats = pool.stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.invalidated, 0u);
}

TEST_F(VmiTest, SessionPoolKeepsDomainsSeparate) {
  vmi::VmiSessionPool pool(env_->hypervisor());
  auto a = pool.acquire(env_->guests()[0], clock_);
  auto b = pool.acquire(env_->guests()[1], clock_);
  EXPECT_NE(&a.session(), &b.session());
  EXPECT_EQ(pool.stats().created, 2u);
}

TEST_F(VmiTest, SessionPoolInvalidatesOnSnapshotRestore) {
  env_->snapshot_all();
  vmi::VmiSessionPool pool(env_->hypervisor());
  { auto lease = pool.acquire(guest(), clock_); }

  // Restoring the snapshot rewinds the domain (epoch bump): the pooled
  // session's V2P cache and symbol map may describe a stale world.
  env_->revert(guest());
  SimClock fresh_clock;
  { auto lease = pool.acquire(guest(), fresh_clock); }

  const auto stats = pool.stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.created, 2u);
  EXPECT_EQ(stats.reused, 0u);
  // The re-attach pays the full cold cost again.
  EXPECT_GE(fresh_clock.now(), vmi::VmiCostModel{}.attach);
}

TEST_F(VmiTest, SessionPoolExplicitInvalidation) {
  vmi::VmiSessionPool pool(env_->hypervisor());
  { auto lease = pool.acquire(guest(), clock_); }
  pool.invalidate_all();
  { auto lease = pool.acquire(guest(), clock_); }
  EXPECT_EQ(pool.stats().created, 2u);
  EXPECT_EQ(pool.stats().reused, 0u);
}

TEST_F(VmiTest, SessionIsReadOnlyByConstruction) {
  // Compile-time property documented at runtime: the session exposes no
  // write entry points; verify a full read leaves guest memory identical.
  const auto* hal = env_->loader(guest()).find("hal.dll");
  ASSERT_NE(hal, nullptr);
  Bytes before(hal->size_of_image, 0);
  env_->kernel(guest()).address_space().read_virtual(hal->base, before);

  vmi::VmiSession session(env_->hypervisor(), guest(), clock_);
  session.read_region(hal->base, hal->size_of_image);

  Bytes after(hal->size_of_image, 0);
  env_->kernel(guest()).address_space().read_virtual(hal->base, after);
  EXPECT_EQ(before, after);
}

}  // namespace
