// Tests for the PE version resource (.rsrc) and the version-spoof attack.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/version_spoof.hpp"
#include "cloud/catalog.hpp"
#include "cloud/environment.hpp"
#include "cloud/golden.hpp"
#include "modchecker/modchecker.hpp"
#include "pe/constants.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/resources.hpp"

namespace {

using namespace mc;
using namespace mc::pe;

TEST(Resources, BuildParseRoundTrip) {
  VersionInfo v;
  v.file_major = 6;
  v.file_minor = 1;
  v.file_build = 7601;
  v.file_revision = 17514;
  v.product_major = 6;
  v.product_minor = 1;

  const std::uint32_t rva = 0x9000;
  const Bytes section = build_resource_section(v, rva);
  Bytes image(rva + section.size(), 0);
  std::copy(section.begin(), section.end(), image.begin() + rva);

  const auto parsed = parse_version_resource(image, rva);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, v);
}

TEST(Resources, FixedInfoRvaPointsAtSignature) {
  const VersionInfo v;
  const std::uint32_t rva = 0x4000;
  const Bytes section = build_resource_section(v, rva);
  Bytes image(rva + section.size(), 0);
  std::copy(section.begin(), section.end(), image.begin() + rva);

  const auto info_rva = find_fixed_file_info_rva(image, rva);
  ASSERT_TRUE(info_rva.has_value());
  EXPECT_EQ(load_le32(image, *info_rva), kFixedFileInfoSignature);
}

TEST(Resources, GoldenDriversCarryVersionResources) {
  const cloud::GoldenImages golden(cloud::default_catalog());
  for (const auto& [name, file] : golden.all()) {
    const Bytes mapped = map_image(file);
    const ParsedImage parsed(mapped);
    const auto& dir =
        parsed.optional_header().DataDirectories[kDirResource];
    ASSERT_NE(dir.VirtualAddress, 0u) << name;
    const auto version =
        parse_version_resource(mapped, dir.VirtualAddress);
    ASSERT_TRUE(version.has_value()) << name;
    EXPECT_EQ(version->file_major, 5) << name;
    EXPECT_NE(parsed.find_section(".rsrc"), nullptr) << name;
  }
}

TEST(Resources, DriversHaveDistinctRevisions) {
  const cloud::GoldenImages golden(cloud::default_catalog());
  const Bytes hal = map_image(golden.file("hal.dll"));
  const Bytes ntfs = map_image(golden.file("ntfs.sys"));
  const auto v_hal = parse_version_resource(
      hal, ParsedImage(hal).optional_header().DataDirectories[kDirResource]
               .VirtualAddress);
  const auto v_ntfs = parse_version_resource(
      ntfs, ParsedImage(ntfs)
                .optional_header()
                .DataDirectories[kDirResource]
                .VirtualAddress);
  EXPECT_NE(v_hal->file_revision, v_ntfs->file_revision);
}

TEST(Resources, RsrcIsPartOfTheCheckedSurface) {
  const cloud::GoldenImages golden(cloud::default_catalog());
  const Bytes mapped = map_image(golden.file("hal.dll"));
  const ParsedImage parsed(mapped);
  const auto items = parsed.extract_items(mapped);
  bool rsrc_item = false;
  for (const auto& item : items) {
    if (item.name == ".rsrc") {
      rsrc_item = true;
      EXPECT_FALSE(item.rva_sensitive);  // RVAs inside .rsrc are RVAs
    }
  }
  EXPECT_TRUE(rsrc_item);
}

TEST(Resources, VersionSpoofDetectedAsRsrcMismatch) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 4;
  cloud::CloudEnvironment env(cfg);

  const auto result =
      attacks::VersionSpoofAttack{}.apply(env, env.guests()[0], "ntfs.sys");
  EXPECT_EQ(result.expected_flagged, std::vector<std::string>{".rsrc"});

  core::ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "ntfs.sys");
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.flagged_items, std::vector<std::string>{".rsrc"});
}

TEST(Resources, SpoofedVersionReadsBack) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 2;
  cloud::CloudEnvironment env(cfg);
  attacks::VersionSpoofAttack{}.apply(env, env.guests()[0], "hal.dll");

  const auto* rec = env.loader(env.guests()[0]).find("hal.dll");
  Bytes image(rec->size_of_image, 0);
  env.kernel(env.guests()[0])
      .address_space()
      .read_virtual(rec->base, image);
  const ParsedImage parsed(image);
  const auto version = parse_version_resource(
      image,
      parsed.optional_header().DataDirectories[kDirResource].VirtualAddress);
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(version->file_build, 9999);  // the fake "update"
}

TEST(Resources, MissingResourceYieldsNullopt) {
  // An image built without .rsrc parses as "no version".
  Bytes fake(0x2000, 0);
  EXPECT_THROW(parse_version_resource(fake, 0x1000), FormatError);
}

}  // namespace
