// Tests for the dirty-frame-aware incremental scanner: verdict equivalence
// with the fresh scanner in every state, cache reuse on quiescent guests,
// and invalidation on every mutation channel (attack, reload, revert).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/incremental.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

void expect_same_verdicts(const PoolScanReport& a, const PoolScanReport& b) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].vm, b.verdicts[i].vm);
    EXPECT_EQ(a.verdicts[i].clean, b.verdicts[i].clean);
    EXPECT_EQ(a.verdicts[i].successes, b.verdicts[i].successes);
    EXPECT_EQ(a.verdicts[i].total, b.verdicts[i].total);
  }
}

TEST(Incremental, FirstScanMatchesFreshScanner) {
  auto env = make_env(5);
  IncrementalScanner incremental(env->hypervisor());
  ModChecker fresh(env->hypervisor());
  expect_same_verdicts(incremental.scan("hal.dll", env->guests()),
                       fresh.scan_pool("hal.dll", env->guests()));
  EXPECT_EQ(incremental.stats().full_extractions, 5u);
  EXPECT_EQ(incremental.stats().cache_reuses, 0u);
}

TEST(Incremental, QuiescentRescanReusesCacheAndIsCheaper) {
  auto env = make_env(8);
  IncrementalScanner incremental(env->hypervisor());

  const auto first = incremental.scan("http.sys", env->guests());
  const auto second = incremental.scan("http.sys", env->guests());
  expect_same_verdicts(first, second);

  EXPECT_EQ(incremental.stats().full_extractions, 8u);
  EXPECT_EQ(incremental.stats().cache_reuses, 8u);
  // Searcher cost collapses: no page-wise copy, only list walk + dirty
  // bitmap queries.
  EXPECT_LT(second.cpu_times.searcher, first.cpu_times.searcher / 2);
}

TEST(Incremental, AttackInvalidatesExactlyTheVictim) {
  auto env = make_env(6);
  IncrementalScanner incremental(env->hypervisor());
  incremental.scan("hal.dll", env->guests());

  attacks::InlineHookAttack{}.apply(*env, env->guests()[3], "hal.dll");
  const auto report = incremental.scan("hal.dll", env->guests());

  // Detection identical to a fresh scanner.
  ModChecker fresh(env->hypervisor());
  expect_same_verdicts(report, fresh.scan_pool("hal.dll", env->guests()));
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.clean, v.vm != env->guests()[3]);
  }
  // Only the victim was refreshed on the second scan — and only its dirty
  // pages were re-read (the watch hands back the exact page indices), so
  // the attack costs O(changed bytes), not a full re-extraction.
  EXPECT_EQ(incremental.stats().full_extractions, 6u);
  EXPECT_EQ(incremental.stats().invalidations, 1u);
  EXPECT_EQ(incremental.stats().partial_refreshes, 1u);
  EXPECT_GE(incremental.stats().frames_reread, 1u);
  EXPECT_EQ(incremental.stats().cache_reuses, 5u);
}

TEST(Incremental, SingleBytePatchIsNeverMaskedByTheCache) {
  auto env = make_env(4);
  IncrementalScanner incremental(env->hypervisor());
  incremental.scan("ntfs.sys", env->guests());

  attacks::BytePatchAttack(0x1100, 0x01).apply(*env, env->guests()[1],
                                               "ntfs.sys");
  const auto report = incremental.scan("ntfs.sys", env->guests());
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.clean, v.vm != env->guests()[1]);
  }
}

TEST(Incremental, ReloadAtNewBaseInvalidates) {
  auto env = make_env(3);
  IncrementalScanner incremental(env->hypervisor());
  incremental.scan("dummy.sys", env->guests());

  // Clean reload (same bytes, new base): cache must invalidate, and the
  // pool must still verify clean afterwards.
  const auto vm = env->guests()[0];
  env->loader(vm).unload("dummy.sys");
  env->loader(vm).load("dummy.sys", env->golden().file("dummy.sys"));

  const auto report = incremental.scan("dummy.sys", env->guests());
  for (const auto& v : report.verdicts) {
    EXPECT_TRUE(v.clean) << "Dom" << v.vm;
  }
  EXPECT_GE(incremental.stats().invalidations, 1u);
}

TEST(Incremental, SnapshotRevertInvalidates) {
  auto env = make_env(4);
  env->snapshot_all();
  IncrementalScanner incremental(env->hypervisor());

  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");
  auto report = incremental.scan("hal.dll", env->guests());
  ASSERT_FALSE(report.verdicts[2].clean);

  env->revert(env->guests()[2]);
  report = incremental.scan("hal.dll", env->guests());
  EXPECT_TRUE(report.verdicts[2].clean);  // stale cache would say infected
}

TEST(Incremental, UnloadedModuleDropsFromCache) {
  auto env = make_env(3);
  IncrementalScanner incremental(env->hypervisor());
  incremental.scan("dummy.sys", env->guests());

  env->loader(env->guests()[1]).unload("dummy.sys");
  const auto report = incremental.scan("dummy.sys", env->guests());
  EXPECT_EQ(report.verdicts[1].total, 0u);   // not comparable
  EXPECT_FALSE(report.verdicts[1].clean);
  EXPECT_EQ(report.verdicts[0].total, 1u);   // the remaining pair
  EXPECT_TRUE(report.verdicts[0].clean);
}

TEST(Incremental, RepeatedScansStayCheapAcrossManyRounds) {
  auto env = make_env(10);
  IncrementalScanner incremental(env->hypervisor());
  const auto first = incremental.scan("http.sys", env->guests());
  SimNanos steady_total = 0;
  for (int round = 0; round < 5; ++round) {
    steady_total += incremental.scan("http.sys", env->guests()).cpu_times
                        .searcher;
  }
  EXPECT_LT(steady_total / 5, first.cpu_times.searcher / 2);
  EXPECT_EQ(incremental.stats().full_extractions, 10u);
  EXPECT_EQ(incremental.stats().cache_reuses, 50u);
}

}  // namespace
