// ShardCoordinator + the primitives under it: consistent-hash routing
// (including the trailing-digit avalanche regression), the admission
// decision table, single-shard byte-identity with the FleetService facade,
// multi-shard report identity, work stealing, deterministic chaos
// re-sharding with zero sweep loss, SLO frontier accounting, and the
// per-shard MetricView namespace.  Runs under the tsan ctest label: the
// coordinator's steal path, chaos kill, and shared wake signal must be
// clean under ThreadSanitizer, not just correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "service/coordinator.hpp"
#include "service/fleet.hpp"
#include "telemetry/view.hpp"
#include "util/hash_ring.hpp"

namespace {

using namespace mc;
using namespace mc::service;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

SweepSpec spec(std::string name, std::size_t pool,
               std::vector<std::string> modules, int priority = 0) {
  SweepSpec s;
  s.name = std::move(name);
  s.pool_index = pool;
  s.modules = std::move(modules);
  s.priority = priority;
  return s;
}

// ---- HashRing -----------------------------------------------------------------

std::vector<std::string> pool_keys(std::size_t count) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("pool-" + std::to_string(i));
  }
  return keys;
}

// Regression for the FNV-1a clustering bug: keys differing only in their
// trailing digits must not all land on one node.  Raw FNV-1a put every
// "pool-N" key within a ~2^48 arc (the last byte never avalanches), so one
// shard owned the whole fleet; ring_hash's fmix64 finalizer spreads them.
TEST(HashRing, TrailingDigitKeysSpreadAcrossNodes) {
  HashRing ring;
  for (std::size_t n = 0; n < 4; ++n) {
    ring.add_node(n);
  }
  std::map<std::size_t, std::size_t> load;
  for (const std::string& key : pool_keys(24)) {
    ++load[ring.owner(key)];
  }
  EXPECT_EQ(load.size(), 4u) << "every node must own at least one key";
  for (const auto& [node, count] : load) {
    EXPECT_LT(count, 24u / 2) << "node " << node << " owns half the keys";
  }
}

TEST(HashRing, OwnerIsDeterministicAcrossRings) {
  HashRing a;
  HashRing b;
  for (std::size_t n = 0; n < 5; ++n) {
    a.add_node(n);
    b.add_node(n);
  }
  for (const std::string& key : pool_keys(50)) {
    EXPECT_EQ(a.owner(key), b.owner(key)) << key;
  }
  EXPECT_EQ(a.owner_of_index("pool", 7), a.owner("pool-7"));
}

TEST(HashRing, AddNodeMovesOnlyKeysItNowOwns) {
  HashRing ring;
  for (std::size_t n = 0; n < 8; ++n) {
    ring.add_node(n);
  }
  const auto keys = pool_keys(200);
  std::vector<std::size_t> before;
  for (const std::string& key : keys) {
    before.push_back(ring.owner(key));
  }

  ring.add_node(8);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t now = ring.owner(keys[i]);
    if (now != before[i]) {
      EXPECT_EQ(now, 8u) << "a moved key may only move to the new node";
      ++moved;
    }
  }
  // The new node's fair share is 1/9 of the keys; allow generous slack but
  // reject a reshuffle (modulo assignment would move ~8/9 of them).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(HashRing, RemoveNodeLeavesSurvivorAssignmentsUntouched) {
  HashRing ring;
  for (std::size_t n = 0; n < 4; ++n) {
    ring.add_node(n);
  }
  const auto keys = pool_keys(100);
  std::vector<std::size_t> before;
  for (const std::string& key : keys) {
    before.push_back(ring.owner(key));
  }
  const std::size_t dead = ring.owner(keys[0]);

  ring.remove_node(dead);
  EXPECT_FALSE(ring.contains(dead));
  EXPECT_EQ(ring.node_count(), 3u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t now = ring.owner(keys[i]);
    EXPECT_NE(now, dead);
    if (before[i] != dead) {
      EXPECT_EQ(now, before[i])
          << keys[i] << " was not on the dead node and must not move";
    }
  }
}

// ---- SweepQueue::admit --------------------------------------------------------

QueuedSweep recurring(SweepId id, int priority) {
  QueuedSweep q;
  q.id = id;
  q.spec.priority = priority;
  q.spec.repeat = 3;  // sheddable
  return q;
}

QueuedSweep one_shot(SweepId id, int priority) {
  QueuedSweep q;
  q.id = id;
  q.spec.priority = priority;
  return q;  // repeat == 1 → never sheddable
}

QueuedSweep alerted(SweepId id, int priority) {
  QueuedSweep q = recurring(id, priority);
  q.spec.alerted = true;  // recurring but exempt from shedding
  return q;
}

TEST(SweepQueueAdmit, UnderCapacityAdmits) {
  SweepQueue q;
  EXPECT_EQ(q.admit(recurring(1, 0), /*capacity=*/2), AdmitResult::kAdmitted);
  EXPECT_EQ(q.admit(recurring(2, 0), 2), AdmitResult::kAdmitted);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(SweepQueueAdmit, CheapestIncomingTickIsShed) {
  SweepQueue q;
  ASSERT_EQ(q.admit(recurring(1, 5), 1), AdmitResult::kAdmitted);
  std::optional<QueuedSweep> evicted;
  EXPECT_EQ(q.admit(recurring(2, 1), 1, &evicted), AdmitResult::kShed);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.try_pop()->id, 1u);  // the queued tick survived
}

TEST(SweepQueueAdmit, EqualTickIsShedNotSwapped) {
  SweepQueue q;
  ASSERT_EQ(q.admit(recurring(1, 3), 1), AdmitResult::kAdmitted);
  // Same priority and due: the incoming tick is not strictly better, so it
  // yields (no churn swaps between equals).
  EXPECT_EQ(q.admit(recurring(2, 3), 1), AdmitResult::kShed);
  EXPECT_EQ(q.try_pop()->id, 1u);
}

TEST(SweepQueueAdmit, BetterTickEvictsWorseTick) {
  SweepQueue q;
  ASSERT_EQ(q.admit(recurring(1, 1), 1), AdmitResult::kAdmitted);
  std::optional<QueuedSweep> evicted;
  EXPECT_EQ(q.admit(recurring(2, 5), 1, &evicted),
            AdmitResult::kAdmittedEvicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->id, 1u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.try_pop()->id, 2u);
}

TEST(SweepQueueAdmit, OneShotEvictsRecurringEvenAtLowerPriority) {
  SweepQueue q;
  ASSERT_EQ(q.admit(recurring(1, 9), 1), AdmitResult::kAdmitted);
  std::optional<QueuedSweep> evicted;
  // The one-shot is priority 0, the queued tick priority 9 — unsheddable
  // work is still never the thing dropped.
  EXPECT_EQ(q.admit(one_shot(2, 0), 1, &evicted),
            AdmitResult::kAdmittedEvicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->id, 1u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(SweepQueueAdmit, UnsheddableBacklogOverflowsTheBound) {
  SweepQueue q;
  ASSERT_EQ(q.admit(one_shot(1, 0), 1), AdmitResult::kAdmitted);
  EXPECT_EQ(q.admit(one_shot(2, 0), 1), AdmitResult::kOverflow);
  EXPECT_EQ(q.pending(), 2u);  // the bound bends instead of dropping
  EXPECT_EQ(q.peak_pending(), 2u);
}

TEST(SweepQueueAdmit, AlertedTicksAreNeverEvicted) {
  SweepQueue q;
  ASSERT_EQ(q.admit(alerted(1, 0), 1), AdmitResult::kAdmitted);
  // A better recurring tick cannot displace the alerted one...
  EXPECT_EQ(q.admit(recurring(2, 9), 1), AdmitResult::kShed);
  // ...and neither can a one-shot: it overflows instead.
  EXPECT_EQ(q.admit(one_shot(3, 9), 1), AdmitResult::kOverflow);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(SweepQueueAdmit, ClosedQueueRefuses) {
  SweepQueue q;
  q.close();
  EXPECT_EQ(q.admit(one_shot(1, 0), 0), AdmitResult::kRefused);
}

// ---- single-shard identity with the facade ------------------------------------

// The facade contract: a shards=1 unbounded coordinator IS the classic
// FleetService — same report bytes on the same pools, findings included.
TEST(ShardCoordinator, SingleShardMatchesFleetServiceByteForByte) {
  auto env = make_env(5);
  const vmm::DomainId infected = env->guests()[2];
  attacks::InlineHookAttack{}.apply(*env, infected, "hal.dll");

  const auto drive = [&](auto& service) {
    const std::size_t pool =
        service.add_pool(env->hypervisor(), env->guests());
    std::ostringstream lines;
    service.add_sink(std::make_shared<JsonLinesSink>(lines));
    // Submitted before start() so the single worker observes priority
    // order, making the line order itself deterministic.
    service.submit(spec("audit", pool, {"hal.dll", "ntfs.sys"}, 5));
    service.submit(spec("background", pool, {"http.sys"}, 0));
    service.start();
    service.drain();
    return lines.str();
  };

  FleetService fleet({/*workers=*/1});
  const std::string classic = drive(fleet);

  CoordinatorConfig cfg;
  cfg.shards = 1;
  cfg.workers_per_shard = 1;
  ShardCoordinator coordinator(cfg);
  const std::string sharded = drive(coordinator);

  EXPECT_FALSE(classic.empty());
  EXPECT_EQ(classic, sharded);
  EXPECT_NE(classic.find("\"findings\""), std::string::npos);
  // A normally-scheduled run never carries re-shard provenance.
  EXPECT_EQ(classic.find("rescheduled_from_shard"), std::string::npos);
}

// ---- multi-shard report identity ----------------------------------------------

std::vector<std::string> sorted_lines(const std::string& blob) {
  std::vector<std::string> lines;
  std::istringstream in(blob);
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

// Sharding is a scheduling decision, not a semantic one: the same
// submissions against the same pools emit the same report set at any shard
// count (order aside — runs complete shard-parallel).
TEST(ShardCoordinator, ShardCountDoesNotChangeReportContents) {
  constexpr std::size_t kPools = 6;
  std::vector<std::unique_ptr<cloud::CloudEnvironment>> envs;
  for (std::size_t p = 0; p < kPools; ++p) {
    envs.push_back(make_env(4));
  }
  attacks::InlineHookAttack{}.apply(*envs[1], envs[1]->guests()[0],
                                    "hal.dll");

  const auto drive = [&](std::size_t shards) {
    CoordinatorConfig cfg;
    cfg.shards = shards;
    cfg.workers_per_shard = 1;
    ShardCoordinator coordinator(cfg);
    for (auto& env : envs) {
      coordinator.add_pool(env->hypervisor(), env->guests());
    }
    std::ostringstream lines;
    coordinator.add_sink(std::make_shared<JsonLinesSink>(lines));
    for (std::size_t p = 0; p < kPools; ++p) {
      coordinator.submit(
          spec("audit-" + std::to_string(p), p, {"hal.dll", "ntfs.sys"}));
    }
    coordinator.start();
    coordinator.drain();
    EXPECT_EQ(coordinator.stats().completed_runs, kPools);
    return sorted_lines(lines.str());
  };

  EXPECT_EQ(drive(1), drive(4));
}

// ---- work stealing ------------------------------------------------------------

TEST(ShardCoordinator, IdleShardStealsOwnedBacklog) {
  constexpr std::size_t kPools = 6;
  std::vector<std::unique_ptr<cloud::CloudEnvironment>> envs;
  for (std::size_t p = 0; p < kPools; ++p) {
    envs.push_back(make_env(4));
  }

  CoordinatorConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 1;
  cfg.admission.work_stealing = true;
  cfg.admission.steal_lag = 0;  // steal whenever a sibling has backlog
  ShardCoordinator coordinator(cfg);
  for (auto& env : envs) {
    coordinator.add_pool(env->hypervisor(), env->guests());
  }
  auto ring = std::make_shared<RingSink>(64);
  coordinator.add_sink(ring);

  // Load every sweep onto pools owned by ONE shard (pre-start, so the
  // backlog exists the moment workers spawn).  The other shard has nothing
  // of its own: its worker's only source of work is the steal path.
  const std::size_t loaded = coordinator.shard_of(0);
  std::size_t submitted = 0;
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t p = 0; p < kPools; ++p) {
      if (coordinator.shard_of(p) != loaded) {
        continue;
      }
      coordinator.submit(spec("sweep-" + std::to_string(submitted), p,
                              {"hal.dll", "ntfs.sys"}));
      ++submitted;
    }
  }
  ASSERT_GE(submitted, 3u);
  coordinator.start();
  coordinator.drain();

  const auto stats = coordinator.stats();
  EXPECT_EQ(stats.completed_runs, submitted);
  EXPECT_EQ(ring->total_seen(), submitted);
  EXPECT_GT(stats.steals, 0u);
  const auto shards = coordinator.shard_stats();
  std::uint64_t completed_sum = 0;
  std::uint64_t stolen_sum = 0;
  for (const auto& s : shards) {
    completed_sum += s.completed_runs;
    stolen_sum += s.stolen_runs;
  }
  EXPECT_EQ(completed_sum, submitted);
  EXPECT_EQ(stolen_sum, stats.steals);
  // The thief executed runs it does not own.
  EXPECT_GT(shards[1 - loaded].completed_runs, 0u);
}

// ---- chaos re-sharding --------------------------------------------------------

struct ChaosOutcome {
  std::size_t victim = kNoShard;
  std::uint64_t completed = 0;
  std::uint64_t reshards = 0;
  std::uint64_t rescheduled = 0;
  std::vector<std::size_t> owned_runs;  // per shard, before the kill
  std::vector<std::string> report_lines;
};

ChaosOutcome run_chaos_fleet(std::uint64_t seed) {
  constexpr std::size_t kPools = 8;
  constexpr std::size_t kSweepsPerPool = 3;
  std::vector<std::unique_ptr<cloud::CloudEnvironment>> envs;
  for (std::size_t p = 0; p < kPools; ++p) {
    envs.push_back(make_env(3));
  }

  CoordinatorConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 1;
  // Stealing off: the victim's backlog stays on its queue until the kill,
  // so the rescued count is exactly (owned runs - kills-worth of work) and
  // the replay assertion below is deterministic.
  cfg.admission.work_stealing = false;
  cfg.chaos.enabled = true;
  cfg.chaos.seed = seed;
  cfg.chaos.kill_after_completions = 3;
  ShardCoordinator coordinator(cfg);
  for (auto& env : envs) {
    coordinator.add_pool(env->hypervisor(), env->guests());
  }
  auto ring = std::make_shared<RingSink>(64);
  std::ostringstream lines;
  coordinator.add_sink(ring);
  coordinator.add_sink(std::make_shared<JsonLinesSink>(lines));

  ChaosOutcome out;
  out.owned_runs.assign(cfg.shards, 0);
  for (std::size_t p = 0; p < kPools; ++p) {
    out.owned_runs[coordinator.shard_of(p)] += kSweepsPerPool;
    for (std::size_t i = 0; i < kSweepsPerPool; ++i) {
      coordinator.submit(spec(
          "p" + std::to_string(p) + "-s" + std::to_string(i), p,
          {"hal.dll"}));
    }
  }
  coordinator.start();
  coordinator.drain();

  const auto stats = coordinator.stats();
  out.completed = stats.completed_runs;
  out.reshards = stats.reshards;
  out.rescheduled = stats.rescheduled;
  out.report_lines = sorted_lines(lines.str());
  for (const auto& s : coordinator.shard_stats()) {
    if (s.dead) {
      out.victim = s.index;
    }
  }

  EXPECT_EQ(coordinator.live_shards(), cfg.shards - 1);
  // Zero loss: every submitted run completed and emitted a report.
  EXPECT_EQ(out.completed, kPools * kSweepsPerPool);
  EXPECT_EQ(ring->total_seen(), kPools * kSweepsPerPool);
  // Every rescued report carries the dead shard's index as provenance, and
  // only rescued reports carry it.
  std::uint64_t flagged = 0;
  for (const auto& report : ring->snapshot()) {
    if (report.rescheduled_from_shard != kNoShard) {
      EXPECT_EQ(report.rescheduled_from_shard, out.victim);
      ++flagged;
    }
  }
  EXPECT_EQ(flagged, out.rescheduled);
  return out;
}

TEST(ShardCoordinator, ChaosKillLosesNoSweeps) {
  const ChaosOutcome out = run_chaos_fleet(/*seed=*/42);
  ASSERT_NE(out.victim, kNoShard);
  EXPECT_EQ(out.reshards, 1u);
  // Both shards own enough pools that the victim — whichever the seed
  // picked — dies with a backlog; its single worker completed exactly
  // kill_after_completions runs first, so the rest were rescued.
  ASSERT_GT(out.owned_runs[out.victim], 3u);
  EXPECT_EQ(out.rescheduled, out.owned_runs[out.victim] - 3u);
  // The re-shard provenance reaches the JSON surface.
  const auto has_flag = [&](const std::string& line) {
    return line.find("\"rescheduled_from_shard\":") != std::string::npos;
  };
  EXPECT_EQ(static_cast<std::uint64_t>(std::count_if(
                out.report_lines.begin(), out.report_lines.end(), has_flag)),
            out.rescheduled);
}

TEST(ShardCoordinator, ChaosReplaysIdenticallyUnderOneSeed) {
  const ChaosOutcome first = run_chaos_fleet(/*seed=*/7);
  const ChaosOutcome second = run_chaos_fleet(/*seed=*/7);
  EXPECT_EQ(first.victim, second.victim);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.rescheduled, second.rescheduled);
  EXPECT_EQ(first.report_lines, second.report_lines);
}

// ---- SLO frontier -------------------------------------------------------------

TEST(ShardCoordinator, FrontierTracksDueTimesAndFlagsSloMisses) {
  auto env = make_env(3);

  CoordinatorConfig cfg;
  cfg.shards = 2;  // sharded mode: the SLO counters are attached
  cfg.workers_per_shard = 1;
  cfg.admission.work_stealing = false;
  cfg.admission.slo_lag = sim_ms(50);
  ShardCoordinator coordinator(cfg);
  const std::size_t pool =
      coordinator.add_pool(env->hypervisor(), env->guests());

  // One worker owns the pool.  The recurring high-priority sweep runs all
  // three of its ticks (due 0 / 100ms / 200ms) before the low-priority
  // one-shot, so the one-shot starts 200ms behind its due time — one
  // deadline miss, deterministic on the simulated timeline.
  SweepSpec monitor = spec("monitor", pool, {"hal.dll"}, /*priority=*/10);
  monitor.repeat = 3;
  monitor.cadence = sim_ms(100);
  coordinator.submit(monitor);
  coordinator.submit(spec("audit", pool, {"hal.dll"}, /*priority=*/0));
  coordinator.start();
  coordinator.drain();

  EXPECT_EQ(coordinator.frontier(), sim_ms(200));
  const auto stats = coordinator.stats();
  EXPECT_EQ(stats.completed_runs, 4u);
  EXPECT_EQ(stats.deadline_misses, 1u);
}

// ---- telemetry namespaces -----------------------------------------------------

TEST(MetricView, SnapshotFiltersByPrefix) {
  telemetry::MetricRegistry reg;
  reg.counter("service.submitted").inc(3);
  telemetry::MetricView shard0(reg, "shard0.");
  telemetry::MetricView shard1(reg, "shard1.");
  shard0.counter("completed_runs").inc(2);
  shard1.counter("completed_runs").inc(5);

  EXPECT_EQ(shard0.prefix(), "shard0.");
  const auto snap = shard0.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "shard0.completed_runs");
  EXPECT_EQ(snap.counters[0].value, 2u);
  // The full registry still sees every namespace.
  EXPECT_EQ(reg.snapshot().counters.size(), 3u);
}

TEST(ShardCoordinator, ClassicModeKeepsRegistryNamespaceClean) {
  auto env = make_env(3);
  const auto drive = [&](std::size_t shards,
                         telemetry::MetricRegistry& reg) {
    CoordinatorConfig cfg;
    cfg.shards = shards;
    cfg.workers_per_shard = 1;
    cfg.metrics = &reg;
    ShardCoordinator coordinator(cfg);
    const std::size_t pool =
        coordinator.add_pool(env->hypervisor(), env->guests());
    coordinator.submit(spec("audit", pool, {"hal.dll"}));
    coordinator.start();
    coordinator.drain();
  };

  // shards=1, unbounded, no chaos: the historical FleetService namespace —
  // no shard<i>.* or coordinator.* names may appear.
  telemetry::MetricRegistry classic;
  drive(1, classic);
  for (const auto& counter : classic.snapshot().counters) {
    EXPECT_EQ(counter.name.rfind("shard", 0), std::string::npos)
        << counter.name;
    EXPECT_EQ(counter.name.rfind("coordinator.", 0), std::string::npos)
        << counter.name;
  }

  // shards=2: the per-shard views and coordinator counters are live.
  telemetry::MetricRegistry sharded;
  drive(2, sharded);
  const auto snap = sharded.snapshot();
  const auto has_counter = [&](const std::string& name) {
    return std::any_of(snap.counters.begin(), snap.counters.end(),
                       [&](const auto& c) { return c.name == name; });
  };
  EXPECT_TRUE(has_counter("coordinator.steals"));
  EXPECT_TRUE(has_counter("coordinator.reshards"));
  EXPECT_TRUE(has_counter("shard0.completed_runs"));
  EXPECT_TRUE(has_counter("shard1.completed_runs"));
}

}  // namespace
