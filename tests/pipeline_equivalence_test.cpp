// Differential suite for the staged-pipeline refactor: every entry point
// (check_module, check_module_sampled, scan_pool, compare_module_lists,
// IncrementalScanner::rescan) now drives the same CheckPipeline stages, and
// this suite proves the refactor changed *nothing observable*.
//
// Two oracles:
//   * a "legacy" reimplementation of the pre-refactor paper-faithful flow,
//     built directly from ModuleSearcher/ModuleParser/IntegrityChecker with
//     a fresh VMI session per VM (exactly what check_module did before the
//     stages existed) — check_module must be bit-identical to it;
//   * cross-entry-point consistency — the per-VM verdicts of scan_pool
//     must equal each VM's own check_module vote, a full-pool sample must
//     equal the unsampled check, the incremental scanner's first pass must
//     equal a fresh pool scan, and compare_module_lists must agree with a
//     direct Searcher walk.
//
// Attack corners reuse the paper's E1-E4 experiments (plus header tamper,
// which exercises the parse-failure path) so the equivalence holds where
// the control flow is gnarliest, not just on clean pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/incremental.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/report_json.hpp"
#include "modchecker/searcher.hpp"
#include "util/error.hpp"
#include "vmi/session.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

/// The paper's prototype configuration: sequential, fresh sessions, no
/// memo, no fast path — the mode the legacy oracle reproduces.
ModCheckerConfig faithful_config() {
  ModCheckerConfig cfg;
  cfg.pool_fastpath = false;
  cfg.digest_memo = false;
  cfg.reuse_sessions = false;
  return cfg;
}

// ---- legacy oracle ------------------------------------------------------------

struct LegacyCopy {
  bool found = false;
  bool parse_failed = false;
  ParsedModule parsed;
};

// The pre-refactor extraction flow, spelled out with the raw components.
// mc-lint: allow(pipeline-bypass) — this IS the legacy oracle.
LegacyCopy legacy_grab(cloud::CloudEnvironment& env, vmm::DomainId vm,
                       const std::string& module,
                       const ModCheckerConfig& cfg) {
  LegacyCopy copy;
  SimClock searcher_clock;
  std::optional<ModuleImage> image;
  {
    vmi::VmiSession session(env.hypervisor(), vm, searcher_clock,
                            cfg.vmi_costs);
    ModuleSearcher searcher(session);  // mc-lint: allow(pipeline-bypass)
    image = searcher.extract_module(module);
  }
  if (!image) {
    return copy;
  }
  copy.found = true;
  SimClock parser_clock;
  parser_clock.set_slowdown(env.hypervisor().dom0_slowdown());
  ModuleParser parser(cfg.host_costs);  // mc-lint: allow(pipeline-bypass)
  try {
    copy.parsed = parser.parse(*image, parser_clock);
  } catch (const FormatError&) {
    copy.parse_failed = true;
  }
  return copy;
}

/// check_module exactly as the pre-refactor orchestrator ran it:
/// sequential, one comparison per peer, majority n > (t-1)/2.
CheckReport legacy_check(cloud::CloudEnvironment& env, vmm::DomainId subject,
                         const std::string& module,
                         const std::vector<vmm::DomainId>& others) {
  const ModCheckerConfig cfg = faithful_config();
  IntegrityChecker checker(cfg.algorithm, cfg.host_costs, cfg.crc_prefilter);

  CheckReport report;
  report.module_name = module;
  report.subject = subject;

  const LegacyCopy subject_copy = legacy_grab(env, subject, module, cfg);
  if (!subject_copy.found) {
    throw NotFoundError("legacy oracle: subject copy missing");
  }

  std::set<std::string> flagged;
  if (subject_copy.parse_failed) {
    flagged.insert(ModChecker::kUnparseableItem);
  }
  for (const vmm::DomainId vm : others) {
    if (vm == subject) {
      continue;
    }
    const LegacyCopy other = legacy_grab(env, vm, module, cfg);
    if (!other.found) {
      report.missing_on.push_back(vm);
      continue;
    }
    ++report.total_comparisons;
    if (subject_copy.parse_failed || other.parse_failed) {
      if (other.parse_failed) {
        flagged.insert(ModChecker::kUnparseableItem);
      }
      PairComparison cmp;
      cmp.other_domain = vm;
      cmp.all_match = false;
      report.comparisons.push_back(std::move(cmp));
      continue;
    }
    SimClock checker_clock;
    checker_clock.set_slowdown(env.hypervisor().dom0_slowdown());
    PairComparison cmp =
        checker.compare(subject_copy.parsed, other.parsed, checker_clock);
    if (cmp.all_match) {
      ++report.successes;
    } else {
      for (const auto& item : cmp.items) {
        if (!item.match) {
          flagged.insert(item.item_name);
        }
      }
    }
    report.comparisons.push_back(std::move(cmp));
  }
  report.flagged_items.assign(flagged.begin(), flagged.end());
  report.subject_clean = report.total_comparisons > 0 &&
                         2 * report.successes > report.total_comparisons;
  return report;
}

void expect_same_check(const CheckReport& a, const CheckReport& b) {
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.total_comparisons, b.total_comparisons);
  EXPECT_EQ(a.subject_clean, b.subject_clean);
  EXPECT_EQ(a.flagged_items, b.flagged_items);
  EXPECT_EQ(a.missing_on, b.missing_on);
  ASSERT_EQ(a.comparisons.size(), b.comparisons.size());
  for (std::size_t i = 0; i < a.comparisons.size(); ++i) {
    const auto& ca = a.comparisons[i];
    const auto& cb = b.comparisons[i];
    EXPECT_EQ(ca.other_domain, cb.other_domain);
    EXPECT_EQ(ca.all_match, cb.all_match);
    ASSERT_EQ(ca.items.size(), cb.items.size());
    for (std::size_t k = 0; k < ca.items.size(); ++k) {
      EXPECT_EQ(ca.items[k].item_name, cb.items[k].item_name);
      EXPECT_EQ(ca.items[k].match, cb.items[k].match);
      EXPECT_EQ(ca.items[k].digest_subject.hex(),
                cb.items[k].digest_subject.hex());
      EXPECT_EQ(ca.items[k].digest_other.hex(),
                cb.items[k].digest_other.hex());
    }
  }
}

void expect_check_matches_legacy(cloud::CloudEnvironment& env,
                                 const std::string& module) {
  ModChecker checker(env.hypervisor(), faithful_config());
  const auto pipeline_report =
      checker.check_module(env.guests()[0], module, env.guests());
  const auto legacy_report =
      legacy_check(env, env.guests()[0], module, env.guests());
  expect_same_check(pipeline_report, legacy_report);
}

// ---- check_module vs the legacy oracle ----------------------------------------

TEST(PipelineVsLegacy, CleanPool) {
  auto env = make_env(6);
  for (const std::string module : {"hal.dll", "ntfs.sys", "http.sys"}) {
    expect_check_matches_legacy(*env, module);
  }
}

TEST(PipelineVsLegacy, E1_OpcodeReplace) {
  auto env = make_env(6);
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[2], "hal.dll");
  expect_check_matches_legacy(*env, "hal.dll");
}

TEST(PipelineVsLegacy, E2_InlineHook) {
  auto env = make_env(7);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[4], "hal.dll");
  expect_check_matches_legacy(*env, "hal.dll");
}

TEST(PipelineVsLegacy, E3_StubPatch) {
  auto env = make_env(5);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[1], "dummy.sys");
  expect_check_matches_legacy(*env, "dummy.sys");
}

TEST(PipelineVsLegacy, E4_DllImportInject) {
  auto env = make_env(5);
  attacks::DllImportInjectAttack{}.apply(*env, env->guests()[3], "dummy.sys");
  expect_check_matches_legacy(*env, "dummy.sys");
}

TEST(PipelineVsLegacy, InfectedSubjectParseFailure) {
  // Header tamper can corrupt the PE walk itself — the parse-failure
  // aggregation (kUnparseableItem, forced mismatches) must match too.
  auto env = make_env(6);
  attacks::HeaderTamperAttack{}.apply(*env, env->guests()[0], "ntfs.sys");
  expect_check_matches_legacy(*env, "ntfs.sys");
}

TEST(PipelineVsLegacy, SubjectMissingThrowsOnBothSides) {
  auto env = make_env(4);
  ModChecker checker(env->hypervisor(), faithful_config());
  EXPECT_THROW(checker.check_module(env->guests()[0], "nosuch.sys",
                                    env->guests()),
               NotFoundError);
  EXPECT_THROW(legacy_check(*env, env->guests()[0], "nosuch.sys",
                            env->guests()),
               NotFoundError);
}

// ---- cross-entry-point consistency --------------------------------------------

/// scan_pool gives every VM the subject role at once; its per-VM tallies
/// must equal what each VM's own check_module reports.
void expect_scan_matches_checks(cloud::CloudEnvironment& env,
                                const std::string& module,
                                const ModCheckerConfig& cfg) {
  ModChecker checker(env.hypervisor(), cfg);
  const auto scan = checker.scan_pool(module, env.guests());
  ASSERT_EQ(scan.verdicts.size(), env.guests().size());
  for (const auto& verdict : scan.verdicts) {
    if (verdict.total == 0) {
      continue;  // module missing on this VM — no check possible
    }
    const auto check = checker.check_module(verdict.vm, module, env.guests());
    EXPECT_EQ(verdict.successes, check.successes) << "vm " << verdict.vm;
    EXPECT_EQ(verdict.total, check.total_comparisons) << "vm " << verdict.vm;
    EXPECT_EQ(verdict.clean, check.subject_clean) << "vm " << verdict.vm;
  }
}

TEST(CrossEntryPoint, ScanPoolEqualsPerVmChecks_Faithful) {
  auto env = make_env(6);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");
  expect_scan_matches_checks(*env, "hal.dll", faithful_config());
}

TEST(CrossEntryPoint, ScanPoolEqualsPerVmChecks_FastDefaults) {
  auto env = make_env(6);
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[4], "hal.dll");
  expect_scan_matches_checks(*env, "hal.dll", ModCheckerConfig{});
}

TEST(CrossEntryPoint, FullSampleEqualsUnsampledCheck) {
  auto env = make_env(8);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[3], "hal.dll");
  ModChecker checker(env->hypervisor(), faithful_config());
  // sample_size >= t-1 must degenerate to the full check, seed-independent.
  const auto full = checker.check_module(env->guests()[0], "hal.dll");
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const auto sampled = checker.check_module_sampled(
        env->guests()[0], "hal.dll", env->guests().size(), seed);
    EXPECT_EQ(sampled.successes, full.successes);
    EXPECT_EQ(sampled.total_comparisons, full.total_comparisons);
    EXPECT_EQ(sampled.subject_clean, full.subject_clean);
    EXPECT_EQ(sampled.flagged_items, full.flagged_items);
  }
}

TEST(CrossEntryPoint, SampledDrawsComeFromTheOthersSet) {
  auto env = make_env(8);
  ModChecker checker(env->hypervisor(), faithful_config());
  const auto sampled =
      checker.check_module_sampled(env->guests()[0], "hal.dll", 3, 7);
  EXPECT_EQ(sampled.total_comparisons, 3u);
  for (const auto& cmp : sampled.comparisons) {
    EXPECT_NE(cmp.other_domain, env->guests()[0]);
  }
}

TEST(CrossEntryPoint, IncrementalFirstAndSecondPassEqualFreshScan) {
  auto env = make_env(6);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[1], "dummy.sys");
  IncrementalScanner incremental(env->hypervisor(), faithful_config());
  ModChecker fresh(env->hypervisor(), faithful_config());
  for (int pass = 0; pass < 2; ++pass) {
    const auto a = incremental.scan("dummy.sys", env->guests());
    const auto b = fresh.scan_pool("dummy.sys", env->guests());
    ASSERT_EQ(a.verdicts.size(), b.verdicts.size()) << "pass " << pass;
    for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
      EXPECT_EQ(a.verdicts[i].vm, b.verdicts[i].vm);
      EXPECT_EQ(a.verdicts[i].successes, b.verdicts[i].successes);
      EXPECT_EQ(a.verdicts[i].total, b.verdicts[i].total);
      EXPECT_EQ(a.verdicts[i].clean, b.verdicts[i].clean);
    }
  }
  // Pass 2 must have come from the cache, through the same pipeline stages.
  EXPECT_GT(incremental.stats().cache_reuses, 0u);
}

TEST(CrossEntryPoint, CompareListsMatchesDirectSearcherWalk) {
  auto env = make_env(5);
  // Hide a module from one guest so a real discrepancy exists.
  env->loader(env->guests()[2]).unload("ndis.sys");

  ModChecker checker(env->hypervisor(), faithful_config());
  const auto report = checker.compare_module_lists(env->guests());

  // Direct walk with the raw searcher (what the entry point used to do).
  std::set<std::string> all_modules;
  std::map<std::string, std::set<vmm::DomainId>> presence;
  for (const vmm::DomainId vm : env->guests()) {
    SimClock clock;
    vmi::VmiSession session(env->hypervisor(), vm, clock,
                            ModCheckerConfig{}.vmi_costs);
    ModuleSearcher searcher(session);  // mc-lint: allow(pipeline-bypass)
    for (const auto& info : searcher.list_modules()) {
      all_modules.insert(info.name);
      presence[info.name].insert(vm);
    }
  }
  EXPECT_EQ(report.modules_seen, all_modules.size());
  std::vector<std::string> expected_discrepancies;
  for (const auto& [name, on] : presence) {
    if (on.size() != env->guests().size()) {
      expected_discrepancies.push_back(name);
    }
  }
  ASSERT_EQ(report.discrepancies.size(), expected_discrepancies.size());
  for (std::size_t i = 0; i < report.discrepancies.size(); ++i) {
    EXPECT_EQ(report.discrepancies[i].module_name, expected_discrepancies[i]);
    const auto& on = presence[expected_discrepancies[i]];
    EXPECT_EQ(report.discrepancies[i].present_on.size(), on.size());
    for (const vmm::DomainId vm : report.discrepancies[i].missing_on) {
      EXPECT_EQ(on.count(vm), 0u);
    }
  }
}

// ---- stage-level invariants ---------------------------------------------------

TEST(PipelineStages, AcquireAndParseMatchesLegacyGrab) {
  auto env = make_env(4);
  attacks::HeaderTamperAttack{}.apply(*env, env->guests()[1], "ntfs.sys");
  ModChecker checker(env->hypervisor(), faithful_config());
  CheckPipeline& pipeline = checker.pipeline();
  for (const vmm::DomainId vm : env->guests()) {
    const Extraction ex = pipeline.acquire_and_parse(vm, "ntfs.sys");
    const LegacyCopy copy = legacy_grab(*env, vm, "ntfs.sys",
                                        faithful_config());
    ASSERT_EQ(ex.found, copy.found) << "vm " << vm;
    ASSERT_EQ(ex.parse_failed, copy.parse_failed) << "vm " << vm;
    if (ex.found && !ex.parse_failed) {
      ASSERT_EQ(ex.parsed.items.size(), copy.parsed.items.size());
      for (std::size_t i = 0; i < ex.parsed.items.size(); ++i) {
        EXPECT_EQ(ex.parsed.items[i].name, copy.parsed.items[i].name);
        // The pipeline's zero-copy Acquire keeps section data view-backed;
        // compare content, not storage mode.
        EXPECT_EQ(ex.parsed.items[i].content_copy(),
                  copy.parsed.items[i].content_copy());
      }
    }
  }
}

TEST(PipelineStages, NormalizeStandsDownWhenDisabled) {
  auto env = make_env(3);
  ModChecker faithful(env->hypervisor(), faithful_config());
  EXPECT_FALSE(faithful.pipeline().normalize().enabled());
  ModCheckerConfig crc = {};
  crc.crc_prefilter = true;  // CRC acceptance is digest-incompatible
  ModChecker prefiltered(env->hypervisor(), crc);
  EXPECT_FALSE(prefiltered.pipeline().normalize().enabled());
  ModChecker fast(env->hypervisor(), ModCheckerConfig{});
  EXPECT_TRUE(fast.pipeline().normalize().enabled());
}

// ---- fault-domain differential proof ------------------------------------------
//
// The fault refactor's zero-fault contract: on a pool where nothing
// faults, the retry policy, the injector's armed gate and the degraded-
// quorum bookkeeping must all be invisible — verdicts, simulated times
// and the serialized reports stay byte-identical whichever way the fault
// machinery is configured.

TEST(FaultDomainDifferential, ZeroFaultScanJsonIsByteIdentical) {
  auto env = make_env(6);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");

  ModCheckerConfig no_retry;  // fast defaults, but the pre-refactor shape:
  no_retry.retry.max_attempts = 1;  // one attempt, no backoff ever taken

  const std::string base = to_json(
      ModChecker(env->hypervisor()).scan_pool("hal.dll", env->guests()));
  const std::string single_attempt = to_json(
      ModChecker(env->hypervisor(), no_retry)
          .scan_pool("hal.dll", env->guests()));

  // Arm the injector with all-zero rates: the fast gate opens, the dice
  // roll on every read, nothing ever faults — and nothing may change.
  for (const vmm::DomainId vm : env->guests()) {
    env->hypervisor().fault_injector().arm(vm, vmm::FaultProfile{});
  }
  const std::string armed_zero = to_json(
      ModChecker(env->hypervisor()).scan_pool("hal.dll", env->guests()));
  env->hypervisor().fault_injector().disarm_all();

  EXPECT_EQ(base, single_attempt);
  EXPECT_EQ(base, armed_zero);
  EXPECT_EQ(base.find("\"faults\""), std::string::npos);
  EXPECT_EQ(base.find("\"quarantined\""), std::string::npos);
}

TEST(FaultDomainDifferential, ZeroFaultCheckJsonIsByteIdentical) {
  auto env = make_env(5);
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[3], "hal.dll");

  const std::string faithful_json =
      to_json(ModChecker(env->hypervisor(), faithful_config())
                  .check_module(env->guests()[0], "hal.dll"));

  for (const vmm::DomainId vm : env->guests()) {
    env->hypervisor().fault_injector().arm(vm, vmm::FaultProfile{});
  }
  const std::string armed_json =
      to_json(ModChecker(env->hypervisor(), faithful_config())
                  .check_module(env->guests()[0], "hal.dll"));
  env->hypervisor().fault_injector().disarm_all();

  EXPECT_EQ(faithful_json, armed_json);
  EXPECT_EQ(faithful_json.find("\"quorum_lost\""), std::string::npos);
}

TEST(PipelineStages, VoteMajorityRule) {
  EXPECT_FALSE(VoteStage::majority(0, 0));  // no evidence, no verdict
  EXPECT_TRUE(VoteStage::majority(1, 1));
  EXPECT_FALSE(VoteStage::majority(1, 2));  // tie is not a majority
  EXPECT_TRUE(VoteStage::majority(2, 3));
  EXPECT_FALSE(VoteStage::majority(2, 4));
  EXPECT_TRUE(VoteStage::majority(3, 4));
}

}  // namespace
