// Unit tests for mc_pe: header (de)serialization, builder output, mapping,
// relocations, imports/exports, Algorithm 1 item extraction.
#include <gtest/gtest.h>

#include "crypto/md5.hpp"
#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "pe/exports.hpp"
#include "pe/imports.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/reloc.hpp"
#include "pe/structs.hpp"
#include "util/rng.hpp"

namespace {

using namespace mc;
using namespace mc::pe;

// ---- structs -------------------------------------------------------------------
TEST(PeStructs, DosHeaderRoundTrip) {
  DosHeader h;
  h.e_lfanew = 0x80;
  h.e_csum = 0x1234;
  Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), kDosHeaderSize);
  const DosHeader parsed = DosHeader::parse(out);
  EXPECT_EQ(parsed.e_magic, kDosMagic);
  EXPECT_EQ(parsed.e_lfanew, 0x80u);
  EXPECT_EQ(parsed.e_csum, 0x1234u);
}

TEST(PeStructs, FileHeaderRoundTrip) {
  FileHeader h;
  h.NumberOfSections = 6;
  h.TimeDateStamp = 0xCAFEBABE;
  h.Characteristics = kFileExecutableImage | kFileDll;
  Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), kFileHeaderSize);
  const FileHeader parsed = FileHeader::parse(out, 0);
  EXPECT_EQ(parsed.NumberOfSections, 6);
  EXPECT_EQ(parsed.TimeDateStamp, 0xCAFEBABEu);
  EXPECT_EQ(parsed.Characteristics, kFileExecutableImage | kFileDll);
}

TEST(PeStructs, OptionalHeaderRoundTrip) {
  OptionalHeader32 h;
  h.ImageBase = 0x00400000;
  h.AddressOfEntryPoint = 0x1234;
  h.SizeOfImage = 0x8000;
  h.DataDirectories[kDirImport] = {0x3000, 0x64};
  Bytes out;
  h.serialize(out);
  ASSERT_EQ(out.size(), kOptionalHeader32Size);
  const OptionalHeader32 parsed = OptionalHeader32::parse(out, 0);
  EXPECT_EQ(parsed.ImageBase, 0x00400000u);
  EXPECT_EQ(parsed.AddressOfEntryPoint, 0x1234u);
  EXPECT_EQ(parsed.DataDirectories[kDirImport].VirtualAddress, 0x3000u);
  EXPECT_EQ(parsed.DataDirectories[kDirImport].Size, 0x64u);
}

TEST(PeStructs, OptionalHeaderRejectsWrongMagic) {
  OptionalHeader32 h;
  Bytes out;
  h.serialize(out);
  store_le16(out, 0, 0x020B);  // PE32+ magic
  EXPECT_THROW(OptionalHeader32::parse(out, 0), FormatError);
}

TEST(PeStructs, SectionHeaderNameHandling) {
  SectionHeader h;
  h.set_name(".text");
  EXPECT_EQ(h.name(), ".text");
  h.set_name("12345678");  // exactly 8, no NUL
  EXPECT_EQ(h.name(), "12345678");
  EXPECT_THROW(h.set_name("123456789"), InvalidArgument);
}

TEST(PeStructs, SectionHeaderFlags) {
  SectionHeader h;
  h.Characteristics = kScnCntCode | kScnMemExecute | kScnMemRead;
  EXPECT_TRUE(h.is_code());
  EXPECT_FALSE(h.is_writable());
  h.Characteristics = kScnCntInitializedData | kScnMemRead | kScnMemWrite;
  EXPECT_FALSE(h.is_code());
  EXPECT_TRUE(h.is_writable());
  h.Characteristics |= kScnMemDiscardable;
  EXPECT_TRUE(h.is_discardable());
}

TEST(PeStructs, DosStubContainsMessage) {
  const Bytes stub = make_dos_stub();
  const std::string text(stub.begin(), stub.end());
  EXPECT_NE(text.find("This program cannot be run in DOS mode."),
            std::string::npos);
  EXPECT_EQ((kDosHeaderSize + stub.size()) % 8, 0u);
}

// ---- relocations -----------------------------------------------------------------
TEST(PeReloc, EncodeParseRoundTrip) {
  const std::vector<std::uint32_t> rvas = {0x1004, 0x1010, 0x2FFC, 0x3000,
                                           0x100C};
  const Bytes encoded = encode_base_relocations(rvas);
  const auto decoded = parse_base_relocations(encoded);
  std::vector<std::uint32_t> expected = rvas;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(decoded, expected);
}

TEST(PeReloc, BlocksArePerPageAndPadded) {
  // One entry on page 0x1000, two on 0x2000 -> two blocks; the odd-count
  // block is padded to keep 4-byte block sizes.
  const Bytes encoded =
      encode_base_relocations({0x1008, 0x2004, 0x2008});
  ASSERT_GE(encoded.size(), 16u);
  EXPECT_EQ(load_le32(encoded, 0), 0x1000u);
  const std::uint32_t block1_size = load_le32(encoded, 4);
  EXPECT_EQ(block1_size % 4, 0u);
  EXPECT_EQ(load_le32(encoded, block1_size), 0x2000u);
}

TEST(PeReloc, DeduplicatesFixups) {
  const Bytes encoded = encode_base_relocations({0x1004, 0x1004, 0x1004});
  EXPECT_EQ(parse_base_relocations(encoded).size(), 1u);
}

TEST(PeReloc, ApplyAddsDelta) {
  Bytes image(0x2000, 0);
  store_le32(image, 0x1004, 0x00011000);
  apply_relocations(image, {0x1004}, 0x00500000);
  EXPECT_EQ(load_le32(image, 0x1004), 0x00511000u);
}

TEST(PeReloc, ApplyNegativeDeltaWraps) {
  Bytes image(0x2000, 0);
  store_le32(image, 0x1000, 0x00411000);
  apply_relocations(image, {0x1000}, 0u - 0x00400000u);
  EXPECT_EQ(load_le32(image, 0x1000), 0x00011000u);
}

TEST(PeReloc, ApplyOutOfBoundsThrows) {
  Bytes image(0x10, 0);
  EXPECT_THROW(apply_relocations(image, {0x0E}, 1), FormatError);
}

TEST(PeReloc, ParseRejectsGarbage) {
  Bytes bad = {1, 2, 3, 4, 5, 6, 7, 8};  // block_size = garbage
  EXPECT_THROW(parse_base_relocations(bad), FormatError);
}

// Property: for random fixup sets, apply(delta) then apply(-delta) is
// identity, and encode/parse is lossless.
class RelocProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelocProperty, RoundTripAndInverse) {
  Xoshiro256 rng(GetParam());
  Bytes image(0x10000);
  for (auto& b : image) {
    b = static_cast<std::uint8_t>(rng.next());
  }
  std::vector<std::uint32_t> rvas;
  for (int i = 0; i < 200; ++i) {
    rvas.push_back(static_cast<std::uint32_t>(rng.below(image.size() - 4)));
  }
  const auto parsed = parse_base_relocations(encode_base_relocations(rvas));
  // Parsed set == deduplicated sorted input.
  std::vector<std::uint32_t> expected = rvas;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  ASSERT_EQ(parsed, expected);

  const Bytes original = image;
  const std::uint32_t delta = static_cast<std::uint32_t>(rng.next());
  apply_relocations(image, parsed, delta);
  // Overlapping fixups make inversion order-dependent; with distinct,
  // possibly-overlapping rvas the inverse still holds because addition is
  // applied per-fixup in the same order.
  apply_relocations(image, parsed, 0u - delta);
  // Overlap caveat: if two fixups overlap byte ranges, add/sub do not
  // commute; filter to non-overlapping for the strict identity check.
  bool overlapping = false;
  for (std::size_t i = 1; i < parsed.size(); ++i) {
    overlapping = overlapping || parsed[i] - parsed[i - 1] < 4;
  }
  if (!overlapping) {
    EXPECT_EQ(image, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelocProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- imports ----------------------------------------------------------------------
TEST(PeImports, BuildParseRoundTrip) {
  const std::vector<ImportDll> dlls = {
      {"ntoskrnl.exe", {"ExAllocatePoolWithTag", "KeBugCheckEx"}},
      {"hal.dll", {"HalInitSystem"}},
  };
  const std::uint32_t rva = 0x4000;
  const ImportLayout layout = build_import_section(dlls, rva);
  ASSERT_EQ(layout.iat_offsets.size(), 2u);
  EXPECT_EQ(layout.iat_offsets[0].size(), 2u);
  EXPECT_EQ(layout.descriptors_size, 3 * 20u);

  // Place the section into a fake mapped image at its RVA and parse back.
  Bytes image(rva + layout.data.size(), 0);
  std::copy(layout.data.begin(), layout.data.end(), image.begin() + rva);
  const auto parsed = parse_import_directory(image, rva);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].dll_name, "ntoskrnl.exe");
  EXPECT_EQ(parsed[0].function_names,
            (std::vector<std::string>{"ExAllocatePoolWithTag",
                                      "KeBugCheckEx"}));
  EXPECT_EQ(parsed[1].dll_name, "hal.dll");
  EXPECT_EQ(parsed[0].iat_rvas[0], rva + layout.iat_offsets[0][0]);
  EXPECT_EQ(parsed[1].name_rva != 0, true);
}

TEST(PeImports, EmptyFunctionListStillTerminates) {
  const std::vector<ImportDll> dlls = {{"empty.dll", {}}};
  const ImportLayout layout = build_import_section(dlls, 0x1000);
  Bytes image(0x1000 + layout.data.size(), 0);
  std::copy(layout.data.begin(), layout.data.end(), image.begin() + 0x1000);
  const auto parsed = parse_import_directory(image, 0x1000);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].function_names.empty());
}

// ---- exports ----------------------------------------------------------------------
TEST(PeExports, BuildParseRoundTrip) {
  std::vector<ExportedSymbol> symbols = {
      {"Zeta", 0x1100}, {"Alpha", 0x1200}, {"Mid", 0x1300}};
  const std::uint32_t rva = 0x5000;
  const Bytes data = build_export_section("hal.dll", symbols, rva);
  Bytes image(rva + data.size(), 0);
  std::copy(data.begin(), data.end(), image.begin() + rva);

  const auto parsed = parse_export_directory(image, rva);
  ASSERT_EQ(parsed.size(), 3u);
  // Name table is sorted.
  EXPECT_EQ(parsed[0].name, "Alpha");
  EXPECT_EQ(parsed[0].rva, 0x1200u);
  EXPECT_EQ(parsed[1].name, "Mid");
  EXPECT_EQ(parsed[2].name, "Zeta");
  EXPECT_EQ(parsed[2].rva, 0x1100u);
}

// ---- builder + mapper ----------------------------------------------------------------
Bytes build_test_image() {
  PeBuilder builder("test.sys");
  builder.set_image_base(0x00010000);
  Bytes text(0x600, 0x90);
  store_le32(text, 0x100, 0x00012000);  // fake absolute address -> fixup
  builder.add_section(".text", std::move(text),
                      kScnCntCode | kScnMemExecute | kScnMemRead, {0x100});
  builder.add_section(".data", Bytes(0x300, 0xDD),
                      kScnCntInitializedData | kScnMemRead | kScnMemWrite);
  builder.add_export_section({{"TestFn", 0x1000}});
  builder.add_reloc_section();
  builder.set_entry_point(0x1000);
  return builder.build();
}

TEST(PeBuilder, ProducesValidImage) {
  const Bytes file = build_test_image();
  EXPECT_EQ(load_le16(file, 0), kDosMagic);
  const DosHeader dos = DosHeader::parse(file);
  EXPECT_EQ(load_le32(file, dos.e_lfanew), kNtSignature);

  const FileHeader fh = FileHeader::parse(file, dos.e_lfanew + 4);
  EXPECT_EQ(fh.NumberOfSections, 4);  // .text .data .edata .reloc
  EXPECT_EQ(fh.Machine, kMachineI386);

  const OptionalHeader32 opt =
      OptionalHeader32::parse(file, dos.e_lfanew + kNtHeadersPrefixSize);
  EXPECT_EQ(opt.ImageBase, 0x00010000u);
  EXPECT_EQ(opt.AddressOfEntryPoint, 0x1000u);
  EXPECT_EQ(opt.SizeOfImage % kDefaultSectionAlignment, 0u);
  EXPECT_EQ(opt.BaseOfCode, 0x1000u);
  EXPECT_NE(opt.DataDirectories[kDirExport].VirtualAddress, 0u);
  EXPECT_NE(opt.DataDirectories[kDirBaseReloc].VirtualAddress, 0u);
}

TEST(PeBuilder, ChecksumIsValid) {
  const Bytes file = build_test_image();
  const DosHeader dos = DosHeader::parse(file);
  const std::size_t checksum_offset =
      dos.e_lfanew + kNtHeadersPrefixSize + 64;
  const std::uint32_t stored = load_le32(file, checksum_offset);
  EXPECT_EQ(stored, compute_pe_checksum(file, checksum_offset));
  EXPECT_NE(stored, 0u);
}

TEST(PeBuilder, SectionLayoutIsAlignedAndOrdered) {
  const Bytes file = build_test_image();
  const ParsedImage parsed(map_image(file));
  std::uint32_t prev_end = 0;
  for (const auto& sh : parsed.sections()) {
    EXPECT_EQ(sh.VirtualAddress % kDefaultSectionAlignment, 0u);
    EXPECT_GE(sh.VirtualAddress, prev_end);
    prev_end = sh.VirtualAddress + sh.VirtualSize;
    if (sh.SizeOfRawData != 0) {
      EXPECT_EQ(sh.PointerToRawData % kDefaultFileAlignment, 0u);
    }
  }
}

TEST(PeBuilder, NextSectionRvaPredictsLayout) {
  PeBuilder builder("x.sys");
  EXPECT_EQ(builder.next_section_rva(), 0x1000u);
  builder.add_section(".text", Bytes(0x1234, 0x90),
                      kScnCntCode | kScnMemExecute | kScnMemRead);
  EXPECT_EQ(builder.next_section_rva(), 0x3000u);  // 0x1000 + 0x2000
}

TEST(PeMapper, MapPlacesSectionsAtVirtualAddresses) {
  const Bytes file = build_test_image();
  const Bytes mapped = map_image(file);
  const ParsedImage parsed(mapped);
  EXPECT_EQ(mapped.size(), parsed.optional_header().SizeOfImage);

  const SectionHeader* text = parsed.find_section(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(mapped[text->VirtualAddress], 0x90);
  const SectionHeader* data = parsed.find_section(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(mapped[data->VirtualAddress], 0xDD);
  // Gap between raw end and next section start is zero-filled.
  EXPECT_EQ(mapped[text->VirtualAddress + 0x700], 0);
}

TEST(PeMapper, ReadHelpers) {
  const Bytes file = build_test_image();
  EXPECT_EQ(read_image_base(file), 0x00010000u);
  EXPECT_EQ(read_size_of_image(file) % kDefaultSectionAlignment, 0u);
}

TEST(PeMapper, RejectsTruncatedImage) {
  const Bytes file = build_test_image();
  const Bytes truncated(file.begin(), file.begin() + 32);
  EXPECT_THROW(map_image(truncated), FormatError);
}

// ---- parser / Algorithm 1 ---------------------------------------------------------------
TEST(PeParser, RejectsBadMagics) {
  Bytes junk(0x1000, 0);
  EXPECT_THROW(ParsedImage{junk}, FormatError);
  Bytes mz = junk;
  store_le16(mz, 0, kDosMagic);
  store_le32(mz, 0x3C, 0x80);  // e_lfanew -> no PE signature there
  EXPECT_THROW(ParsedImage{mz}, FormatError);
}

TEST(PeParser, ExtractItemsCoversHeadersAndRoSections) {
  const Bytes mapped = map_image(build_test_image());
  const ParsedImage parsed(mapped);
  const auto items = parsed.extract_items(mapped);

  std::vector<std::string> names;
  for (const auto& item : items) {
    names.push_back(item.name);
  }
  // Headers: DOS, NT, OPTIONAL + 4 section headers; data: .text and .edata
  // (read-only).  .data is writable and .reloc discardable: both excluded.
  EXPECT_EQ(items.size(), 3 + 4 + 2u);
  EXPECT_EQ(names[0], "IMAGE_DOS_HEADER");
  EXPECT_EQ(names[1], "IMAGE_NT_HEADER");
  EXPECT_EQ(names[2], "IMAGE_OPTIONAL_HEADER");
  EXPECT_NE(std::find(names.begin(), names.end(), "SECTION_HEADER[.data]"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), ".text"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), ".data"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), ".reloc"), names.end());
}

TEST(PeParser, OnlyCodeSectionsAreRvaSensitive) {
  const Bytes mapped = map_image(build_test_image());
  const auto items = ParsedImage(mapped).extract_items(mapped);
  for (const auto& item : items) {
    if (item.name == ".text") {
      EXPECT_TRUE(item.rva_sensitive);
    } else {
      EXPECT_FALSE(item.rva_sensitive) << item.name;
    }
  }
}

TEST(PeParser, ItemBytesMatchImageContent) {
  const Bytes mapped = map_image(build_test_image());
  const ParsedImage parsed(mapped);
  for (const auto& item : parsed.extract_items(mapped)) {
    ASSERT_LE(item.rva + item.bytes.size(), mapped.size());
    EXPECT_TRUE(std::equal(item.bytes.begin(), item.bytes.end(),
                           mapped.begin() + item.rva))
        << item.name;
  }
}

TEST(PeParser, DosHeaderItemCoversStub) {
  const Bytes mapped = map_image(build_test_image());
  const ParsedImage parsed(mapped);
  const auto items = parsed.extract_items(mapped);
  EXPECT_EQ(items[0].bytes.size(), parsed.e_lfanew());
  const std::string text(items[0].bytes.begin(), items[0].bytes.end());
  EXPECT_NE(text.find("DOS mode"), std::string::npos);
}

TEST(PeParser, IntegrityCheckedSectionPredicate) {
  SectionHeader code;
  code.Characteristics = kScnCntCode | kScnMemExecute | kScnMemRead;
  EXPECT_TRUE(is_integrity_checked_section(code));

  SectionHeader rw_data;
  rw_data.Characteristics =
      kScnCntInitializedData | kScnMemRead | kScnMemWrite;
  EXPECT_FALSE(is_integrity_checked_section(rw_data));

  SectionHeader ro_data;
  ro_data.Characteristics = kScnCntInitializedData | kScnMemRead;
  EXPECT_TRUE(is_integrity_checked_section(ro_data));

  SectionHeader reloc;
  reloc.Characteristics =
      kScnCntInitializedData | kScnMemRead | kScnMemDiscardable;
  EXPECT_FALSE(is_integrity_checked_section(reloc));
}

}  // namespace
