// WriteWatch semantics: registration / dirty / drain / rearm, edge-
// triggered bitmaps, per-domain write generations, bulk invalidation on
// snapshot restore (copy_state_from), the version-floor interplay with the
// raw frame stamps, subscriber notification edges, and a TSan-targeted
// stress — one writer thread per domain racing query, registration-churn
// and subscribe/unsubscribe threads.  Runs under the tsan ctest label.
//
// This suite deliberately polls frame_version()/write_counter() to pin the
// raw stamp semantics the watch layer is built on; the mc_analyze gate
// carves it out (--allow=watch-bypass:write_watch_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "vmm/hypervisor.hpp"
#include "vmm/phys_mem.hpp"
#include "vmm/write_watch.hpp"

namespace {

using namespace mc;
using namespace mc::vmm;

constexpr std::uint64_t kGuestMem = 1 << 20;

std::vector<std::uint32_t> frame_range(std::uint32_t first, std::uint32_t n) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(first + i);
  }
  return out;
}

void poke(Hypervisor& hv, DomainId d, std::uint64_t pa,
          std::uint8_t value = 0xAB) {
  const Bytes b = {value};
  hv.domain(d).memory().write(pa, ByteView(b));
}

TEST(WriteWatch, WriteMarksExactIndices) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();

  const auto id = watch.register_watch(d, frame_range(4, 3));  // frames 4..6
  EXPECT_NE(id, WriteWatch::kNoWatch);
  EXPECT_FALSE(watch.dirty(id));
  EXPECT_EQ(watch.generation(id), 1u);
  EXPECT_EQ(watch.watched_frames(id), frame_range(4, 3));

  poke(hv, d, 5 * kFrameSize + 100);  // frame 5 == index 1
  EXPECT_TRUE(watch.dirty(id));
  EXPECT_EQ(watch.dirty_indices(id), std::vector<std::uint32_t>{1});
  EXPECT_TRUE(watch.domain_has_dirty_watch(d));

  // drain = atomic fetch-and-clear: hands back the indices, rearms, bumps
  // the generation.
  EXPECT_EQ(watch.drain(id), std::vector<std::uint32_t>{1});
  EXPECT_FALSE(watch.dirty(id));
  EXPECT_FALSE(watch.domain_has_dirty_watch(d));
  EXPECT_EQ(watch.generation(id), 2u);
}

TEST(WriteWatch, EdgeTriggeredUntilRearm) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto id = watch.register_watch(d, frame_range(4, 2));

  poke(hv, d, 4 * kFrameSize);
  poke(hv, d, 4 * kFrameSize + 8);  // same frame: still one dirty index
  EXPECT_EQ(watch.dirty_indices(id), std::vector<std::uint32_t>{0});

  watch.rearm(id);
  EXPECT_FALSE(watch.dirty(id));
  EXPECT_EQ(watch.generation(id), 2u);
  poke(hv, d, 4 * kFrameSize);  // re-marks after rearm
  EXPECT_TRUE(watch.dirty(id));
}

TEST(WriteWatch, CrossFrameWriteMarksEveryTouchedIndex) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto id = watch.register_watch(d, frame_range(4, 3));

  const Bytes span(64, 0xCD);
  hv.domain(d).memory().write(5 * kFrameSize - 16, ByteView(span));
  EXPECT_EQ(watch.dirty_indices(id), (std::vector<std::uint32_t>{0, 1}));
}

TEST(WriteWatch, UnwatchedWritesAdvanceDomainGenerationOnly) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto id = watch.register_watch(d, frame_range(4, 2));

  const std::uint64_t gen0 = watch.domain_write_generation(d);
  poke(hv, d, 40 * kFrameSize);  // far from the watch
  EXPECT_GT(watch.domain_write_generation(d), gen0);
  EXPECT_FALSE(watch.dirty(id));  // the watch itself stays clean
}

TEST(WriteWatch, SnapshotRestoreBulkInvalidates) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();

  poke(hv, d, 4 * kFrameSize, 0x11);
  const DomainSnapshot snap = hv.snapshot(d);
  const auto id = watch.register_watch(d, frame_range(4, 3));
  const std::uint64_t gen0 = watch.domain_write_generation(d);

  // restore -> copy_state_from -> PhysicalMemory::restore_from: the
  // frame<->content association the watch was registered under is gone, so
  // EVERY index goes dirty and the domain generation advances.
  hv.restore(snap);
  EXPECT_TRUE(watch.dirty(id));
  EXPECT_EQ(watch.dirty_indices(id).size(), 3u);
  EXPECT_GT(watch.domain_write_generation(d), gen0);
}

TEST(WriteWatch, VersionFloorKeepsStampsMonotonicAcrossRestore) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  PhysicalMemory& mem = hv.domain(d).memory();

  poke(hv, d, 4 * kFrameSize, 0x22);
  const std::uint64_t stamped = mem.frame_version(4);
  EXPECT_GT(stamped, 0u);

  const DomainSnapshot snap = hv.snapshot(d);
  hv.restore(snap);
  // The raw stamp surface the watch layer is built on: after a restore the
  // version floor rises above every pre-restore stamp, so even frames the
  // restore never touched read as "newer than anything seen before" — a
  // borrowed frame_view from before the restore must be considered stale.
  EXPECT_GT(mem.frame_version(4), stamped);
  EXPECT_GT(mem.frame_version(200), stamped);  // untouched frame: floor
  EXPECT_GE(mem.write_counter(), mem.frame_version(4));
}

TEST(WriteWatch, DropDomainExpiresItsWatches) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto id = watch.register_watch(d, frame_range(4, 2));
  poke(hv, d, 4 * kFrameSize);
  ASSERT_TRUE(watch.dirty(id));

  hv.destroy_domain(d);
  EXPECT_FALSE(watch.dirty(id));  // expired ids answer clean/empty
  EXPECT_TRUE(watch.dirty_indices(id).empty());
  EXPECT_TRUE(watch.watched_frames(id).empty());
  EXPECT_FALSE(watch.domain_has_dirty_watch(d));
  EXPECT_EQ(watch.domain_write_generation(d), 0u);
  watch.unregister(id);  // double-teardown is a no-op, not an error
}

namespace {
struct Recorder : WriteWatch::Subscriber {
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> edges{0};
  void on_domain_write(DomainId) override { ++writes; }
  void on_watch_dirty(DomainId, WriteWatch::WatchId) override { ++edges; }
};
}  // namespace

TEST(WriteWatch, SubscriberSeesEveryWriteButOnlyDirtyEdges) {
  Hypervisor hv;
  const DomainId d = hv.create_domain("d", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto id = watch.register_watch(d, frame_range(4, 2));

  Recorder rec;
  watch.subscribe(&rec);
  poke(hv, d, 4 * kFrameSize);
  poke(hv, d, 4 * kFrameSize);  // already dirty: write fires, edge does not
  EXPECT_EQ(rec.writes.load(), 2u);
  EXPECT_EQ(rec.edges.load(), 1u);

  watch.drain(id);
  poke(hv, d, 4 * kFrameSize);  // clean->dirty again
  EXPECT_EQ(rec.edges.load(), 2u);

  watch.unsubscribe(&rec);
  poke(hv, d, 4 * kFrameSize);
  EXPECT_EQ(rec.writes.load(), 3u);  // no further callbacks
}

TEST(WriteWatch, ConcurrentWritersQueriesAndChurnAreRaceFree) {
  Hypervisor hv;
  const DomainId d1 = hv.create_domain("d1", kGuestMem);
  const DomainId d2 = hv.create_domain("d2", kGuestMem);
  WriteWatch& watch = hv.write_watch();
  const auto w1 = watch.register_watch(d1, frame_range(4, 8));
  const auto w2 = watch.register_watch(d2, frame_range(4, 8));

  constexpr int kWrites = 2000;
  Recorder rec;
  std::atomic<bool> stop{false};

  // PhysicalMemory is not internally thread-safe, so exactly one writer
  // thread per domain; every cross-thread interaction goes through the
  // WriteWatch, whose lock TSan then exercises.
  std::thread writer1([&] {
    for (int i = 0; i < kWrites; ++i) {
      poke(hv, d1, (4 + static_cast<std::uint64_t>(i % 8)) * kFrameSize);
    }
  });
  std::thread writer2([&] {
    for (int i = 0; i < kWrites; ++i) {
      poke(hv, d2, (4 + static_cast<std::uint64_t>(i % 8)) * kFrameSize);
    }
  });
  std::thread querier([&] {
    while (!stop.load()) {
      watch.dirty(w1);
      watch.dirty_indices(w2);
      watch.domain_write_generation(d1);
      watch.drain(w2);
    }
  });
  std::thread churner([&] {
    while (!stop.load()) {
      const auto tmp = watch.register_watch(d1, frame_range(12, 2));
      watch.subscribe(&rec);
      watch.dirty(tmp);
      watch.unsubscribe(&rec);
      watch.unregister(tmp);
    }
  });

  writer1.join();
  writer2.join();
  stop.store(true);
  querier.join();
  churner.join();

  // Every write was observed: the domain generation counts them exactly.
  EXPECT_EQ(watch.domain_write_generation(d1),
            static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(watch.domain_write_generation(d2),
            static_cast<std::uint64_t>(kWrites));
  // And the watch still works after the churn.
  watch.drain(w1);
  poke(hv, d1, 4 * kFrameSize);
  EXPECT_TRUE(watch.dirty(w1));
}

}  // namespace
