// Event-driven sweeps: the differential gate (watch-driven incremental
// verdicts and report JSON byte-identical to a full ModChecker::scan_pool
// in every state — clean pools at every paper pool size, E1-E4 attacks
// landing between ticks on PE and ELF guests, and fuzzed write-weather),
// plus FleetService dirty-scheduling: clean cadence ticks are skipped via
// the WriteWatch generation check and re-emit the previous results, an
// attack between ticks un-skips exactly the dirty tick, and event/full
// sweeps over the same pool stay report-identical.
//
// Timing fields (wall_ns / cpu_ns) and the fastpath pair counters are
// zeroed before comparing JSON: the incremental scanner deliberately pays
// a different simulated cost (that asymmetry is the whole point) and
// comparisons of cached parses bypass the fastpath counters; everything
// the operator alerts on — verdicts, quorum, module identity — must match
// byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "attacks/byte_patch.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "cloud/linux.hpp"
#include "elf/parser.hpp"
#include "guestos/kernel.hpp"
#include "guestos/ko_loader.hpp"
#include "modchecker/incremental.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report_json.hpp"
#include "service/fleet.hpp"
#include "util/bytes.hpp"

namespace {

using namespace mc;
using namespace mc::core;
using mc::service::FleetService;
using mc::service::RingSink;
using mc::service::SweepReport;
using mc::service::SweepSpec;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

std::unique_ptr<cloud::LinuxEnvironment> make_linux_env(std::size_t guests) {
  cloud::LinuxCloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::LinuxEnvironment>(cfg);
}

/// Serializes a pool scan with the non-semantic fields zeroed: simulated
/// timing differs by design (the incremental path is the cheaper one) and
/// cached comparisons bypass the fastpath/fallback counters.  Everything
/// else — verdicts, quorum, module — must be byte-identical.
std::string normalized_json(PoolScanReport report) {
  report.wall_time = 0;
  report.cpu_times = ComponentTimes{};
  report.fastpath_pairs = 0;
  report.fallback_pairs = 0;
  return to_json(report);
}

/// One differential tick: the event-driven scanner against a fresh full
/// scan, compared as normalized report JSON.
void expect_tick_identical(IncrementalScanner& incremental, ModChecker& fresh,
                           const std::string& module,
                           const std::vector<vmm::DomainId>& pool,
                           const std::string& context) {
  const std::string event = normalized_json(incremental.scan(module, pool));
  const std::string full = normalized_json(fresh.scan_pool(module, pool));
  EXPECT_EQ(event, full) << context;
}

// ---- Differential gate: clean pools -------------------------------------------

class EventDrivenCleanPool : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EventDrivenCleanPool, ReportIdenticalAcrossTicks) {
  auto env = make_env(GetParam());
  IncrementalScanner incremental(env->hypervisor());
  ModChecker fresh(env->hypervisor());
  for (int tick = 0; tick < 3; ++tick) {
    for (const std::string module : {"hal.dll", "ntfs.sys"}) {
      expect_tick_identical(incremental, fresh, module, env->guests(),
                            module + " tick " + std::to_string(tick));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, EventDrivenCleanPool,
                         ::testing::Values(2, 3, 5, 8, 15));

// ---- Differential gate: E1-E4 between ticks (PE) ------------------------------

TEST(EventDrivenDifferential, AttacksBetweenTicksPe) {
  auto env = make_env(6);
  IncrementalScanner incremental(env->hypervisor());
  ModChecker fresh(env->hypervisor());
  const std::string module = "hal.dll";

  // Tick 0: clean baseline (both scanners warm up their state).
  expect_tick_identical(incremental, fresh, module, env->guests(), "tick 0");

  // E1-E4 land between ticks, each on a different victim; after every
  // attack the event-driven report must still match a fresh scan exactly.
  attacks::OpcodeReplaceAttack e1;
  attacks::InlineHookAttack e2;
  attacks::StubPatchAttack e3;
  attacks::DllImportInjectAttack e4;
  attacks::Attack* scenarios[] = {&e1, &e2, &e3, &e4};
  for (std::size_t i = 0; i < 4; ++i) {
    const vmm::DomainId victim = env->guests()[i + 1];
    scenarios[i]->apply(*env, victim, module);
    expect_tick_identical(incremental, fresh, module, env->guests(),
                          "after E" + std::to_string(i + 1));
  }

  // Final quiescent tick, served from the cache — which must not launder
  // a stale clean verdict.  With four differently-infected guests out of
  // six, every pairwise comparison except (0,5) disagrees, so even the two
  // untouched guests fall below the cross-comparison quorum: all six are
  // flagged, exactly as a fresh scanner concludes (checked above).
  const auto report = incremental.scan(module, env->guests());
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    EXPECT_FALSE(report.verdicts[i].clean) << "vm " << report.verdicts[i].vm;
  }
}

// ---- Differential gate: E1-E4 analogues between ticks (ELF) -------------------

/// Guest VA of `section` inside the module's mapped image (the synthetic
/// .ko layout has sh_addr == sh_offset).
std::uint32_t section_va(cloud::LinuxEnvironment& env, vmm::DomainId vm,
                         const std::string& module,
                         const std::string& section) {
  const guestos::LoadedKo* ko = env.loader(vm).find(module);
  EXPECT_NE(ko, nullptr);
  const elf::ElfImage image{ByteView(env.golden_file(module))};
  const elf::Elf64Shdr* sh = image.find_section(section);
  EXPECT_NE(sh, nullptr);
  return ko->base + static_cast<std::uint32_t>(sh->sh_offset);
}

TEST(EventDrivenDifferential, AttacksBetweenTicksElf) {
  auto env = make_linux_env(6);
  IncrementalScanner incremental(env->hypervisor());
  ModChecker fresh(env->hypervisor());
  const std::string module = "scsi_mod";

  expect_tick_identical(incremental, fresh, module, env->guests(), "tick 0");

  // The elf_pool_test E1-E4 analogues, replayed between cadence ticks:
  // .text byte patch, fixup-slot redirection, .rela tampering, header
  // corruption — each on its own victim, each followed by a differential
  // tick.
  const struct {
    const char* section;
    std::uint32_t offset;
  } scenarios[] = {
      {".text", 3},        // E1: pure content change before the first fixup
      {".text", 16},       // E2 analogue: early code byte hooked
      {".rela.text", 8},   // E3 analogue: relocation table tampered
      {".rodata", 2},      // E4 analogue: modinfo banner tampered
  };
  for (std::size_t i = 0; i < 4; ++i) {
    const vmm::DomainId victim = env->guests()[i + 1];
    const std::uint32_t va =
        section_va(*env, victim, module, scenarios[i].section) +
        scenarios[i].offset;
    const Bytes patch = {0xCC};
    env->kernel(victim).address_space().write_virtual(va, ByteView(patch));
    expect_tick_identical(incremental, fresh, module, env->guests(),
                          std::string("after ELF E") + std::to_string(i + 1));
  }
}

// ---- Differential gate: fuzzed write-weather ----------------------------------

TEST(EventDrivenDifferential, FuzzedWriteWeather) {
  // Random single-byte patches rain on random guests between ticks; every
  // tick the event-driven report must match a fresh scan byte for byte.
  // Seeded mt19937 keeps the weather reproducible.
  for (const std::uint32_t seed : {7u, 21u, 1234u}) {
    auto env = make_env(5);
    IncrementalScanner incremental(env->hypervisor());
    ModChecker fresh(env->hypervisor());
    const std::string module = "ntfs.sys";
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick_guest(0, 4);
    std::uniform_int_distribution<std::uint32_t> pick_rva(0x400, 0x2800);
    std::uniform_int_distribution<int> pick_mask(0, 255);
    std::uniform_int_distribution<int> coin(0, 99);

    for (int tick = 1; tick <= 12; ++tick) {
      // ~40% of ticks see one patch, ~10% see a burst of three.
      const int weather = coin(rng);
      const int patches = weather < 40 ? 1 : (weather < 50 ? 3 : 0);
      for (int p = 0; p < patches; ++p) {
        attacks::BytePatchAttack(
            pick_rva(rng), static_cast<std::uint8_t>(pick_mask(rng)))
            .apply(*env, env->guests()[pick_guest(rng)], module);
      }
      expect_tick_identical(incremental, fresh, module, env->guests(),
                            "seed " + std::to_string(seed) + " tick " +
                                std::to_string(tick));
    }
  }
}

// ---- FleetService dirty scheduling --------------------------------------------

SweepSpec event_spec(std::string name, std::size_t pool,
                     std::vector<std::string> modules, std::size_t repeat,
                     bool event_driven = true) {
  SweepSpec s;
  s.name = std::move(name);
  s.pool_index = pool;
  s.modules = std::move(modules);
  s.repeat = repeat;
  s.cadence = sim_ms(10);
  s.event_driven = event_driven;
  return s;
}

TEST(FleetEventDriven, CleanTicksAreSkippedAndReemitPreviousResults) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.start();
  fleet.submit(event_spec("nightly", pool, {"hal.dll"}, /*repeat=*/5));
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_FALSE(reports[0].skipped_clean);  // first run always scans
  ASSERT_EQ(reports[0].scans.size(), 1u);
  for (std::size_t r = 1; r < reports.size(); ++r) {
    EXPECT_TRUE(reports[r].skipped_clean) << "run " << r;
    // The skipped tick re-emits the previous results verbatim.
    ASSERT_EQ(reports[r].scans.size(), 1u);
    EXPECT_EQ(normalized_json(reports[r].scans[0]),
              normalized_json(reports[0].scans[0]));
    EXPECT_EQ(reports[r].wall_time, 0);  // nothing was scanned
    // And says so on the JSON line.
    EXPECT_NE(to_json(reports[r]).find("\"skipped_clean\":true"),
              std::string::npos);
  }
  EXPECT_EQ(fleet.stats().sweeps_skipped_clean, 4u);
  EXPECT_EQ(fleet.stats().event_runs, 1u);
}

TEST(FleetEventDriven, AttackBetweenTicksUnskipsExactlyTheDirtyTick) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  // A skipped event tick never reaches the module hook (nothing runs), so
  // the "between ticks" writer is a second, full sweep on its own pool:
  // its hook — on the worker, under that pool's mutex, with no other run
  // in flight (single worker) — applies the attack after event run 1 and
  // before event run 2.
  const std::size_t trigger_pool = fleet.add_pool(
      env->hypervisor(), {env->guests()[0], env->guests()[1]});
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  std::atomic<service::SweepId> trigger_id{0};
  std::atomic<bool> attacked{false};
  fleet.set_module_hook(
      [&](service::SweepId id, std::size_t run_index, const std::string&) {
        // With one worker the runs serialize FIFO: e0 t0 e1 t1 e2 ... —
        // attacking in trigger run 1 lands between event ticks 1 and 2.
        if (id == trigger_id.load() && run_index == 1 &&
            !attacked.exchange(true)) {
          attacks::InlineHookAttack{}.apply(*env, env->guests()[1],
                                            "hal.dll");
        }
      });
  fleet.start();
  const auto event_id =
      fleet.submit(event_spec("nightly", pool, {"hal.dll"}, /*repeat=*/5));
  trigger_id.store(fleet.submit(event_spec(
      "trigger", trigger_pool, {"http.sys"}, 5, /*event_driven=*/false)));
  ASSERT_NE(event_id, 0u);
  ASSERT_NE(trigger_id.load(), 0u);
  fleet.drain();

  const auto all = ring->snapshot();
  std::vector<const SweepReport*> reports(5, nullptr);
  for (const auto& report : all) {
    if (report.id == event_id) {
      reports[report.run_index] = &report;
    }
  }
  for (std::size_t r = 0; r < 5; ++r) {
    ASSERT_NE(reports[r], nullptr) << "run " << r;
  }
  EXPECT_FALSE(reports[0]->skipped_clean);  // first run scans
  EXPECT_TRUE(reports[1]->skipped_clean);   // clean tick skipped
  EXPECT_TRUE(reports[1]->findings.empty());
  EXPECT_FALSE(reports[2]->skipped_clean);  // the attack un-skips this tick
  ASSERT_FALSE(reports[2]->findings.empty());
  EXPECT_EQ(reports[2]->findings[0].vm, env->guests()[1]);
  for (std::size_t r = 3; r < 5; ++r) {
    // Quiescent again — but the re-emitted results still carry the
    // finding: skipping must never launder a detection.
    EXPECT_TRUE(reports[r]->skipped_clean) << "run " << r;
    ASSERT_FALSE(reports[r]->findings.empty()) << "run " << r;
    EXPECT_EQ(reports[r]->findings[0].vm, env->guests()[1]);
  }
  EXPECT_EQ(fleet.stats().event_runs, 2u);
  EXPECT_EQ(fleet.stats().sweeps_skipped_clean, 3u);
}

TEST(FleetEventDriven, EventAndFullSweepsStayReportIdentical) {
  auto env = make_env(5);
  FleetService fleet({/*workers=*/1});
  // Two pools over the same guests: one swept event-driven, one full —
  // plus a two-VM trigger pool whose full sweep applies the attack from
  // its module hook (event ticks that skip never reach the hook).
  const std::size_t event_pool =
      fleet.add_pool(env->hypervisor(), env->guests());
  const std::size_t full_pool =
      fleet.add_pool(env->hypervisor(), env->guests());
  const std::size_t trigger_pool = fleet.add_pool(
      env->hypervisor(), {env->guests()[0], env->guests()[1]});
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  std::atomic<service::SweepId> trigger_id{0};
  std::atomic<bool> attacked{false};
  fleet.set_module_hook(
      [&](service::SweepId id, std::size_t run_index, const std::string&) {
        // Trigger run 0 executes after event/full run 0 (FIFO, one
        // worker): the attack lands between tick 0 and tick 1.
        if (id == trigger_id.load() && run_index == 0 &&
            !attacked.exchange(true)) {
          attacks::BytePatchAttack(0x1100, 0x01)
              .apply(*env, env->guests()[2], "ntfs.sys");
        }
      });
  fleet.start();
  const auto event_id =
      fleet.submit(event_spec("event", event_pool, {"ntfs.sys"}, 3));
  const auto full_id = fleet.submit(
      event_spec("full", full_pool, {"ntfs.sys"}, 3, /*event_driven=*/false));
  trigger_id.store(fleet.submit(
      event_spec("trigger", trigger_pool, {"http.sys"}, 3,
                 /*event_driven=*/false)));
  ASSERT_NE(event_id, 0u);
  ASSERT_NE(full_id, 0u);
  ASSERT_NE(trigger_id.load(), 0u);
  fleet.drain();

  const auto reports = ring->snapshot();
  std::vector<const SweepReport*> event_runs(3), full_runs(3);
  for (const auto& report : reports) {
    if (report.id == event_id) {
      event_runs[report.run_index] = &report;
    } else if (report.id == full_id) {
      full_runs[report.run_index] = &report;
    }
  }
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_NE(event_runs[r], nullptr);
    ASSERT_NE(full_runs[r], nullptr);
    ASSERT_EQ(event_runs[r]->scans.size(), 1u);
    ASSERT_EQ(full_runs[r]->scans.size(), 1u);
    // The differential gate: event-driven (scanned or skipped-and-
    // re-emitted) and full-sweep reports agree byte for byte once the
    // timing/fastpath diagnostics are zeroed.
    EXPECT_EQ(normalized_json(event_runs[r]->scans[0]),
              normalized_json(full_runs[r]->scans[0]))
        << "run " << r;
  }
  // Runs 1 and 2 carry the detection on both paths (run 2's event tick is
  // a skip that re-emits it).
  for (std::size_t r = 1; r < 3; ++r) {
    ASSERT_FALSE(full_runs[r]->findings.empty());
    ASSERT_FALSE(event_runs[r]->findings.empty());
    EXPECT_EQ(event_runs[r]->findings[0].vm, env->guests()[2]);
  }
  EXPECT_TRUE(event_runs[2]->skipped_clean);
}

TEST(FleetEventDriven, ConcurrentEventSweepsAcrossPoolsAreRaceFree) {
  // Two pools on one hypervisor swept event-driven by two workers while
  // the dirty tracker subscribes/unsubscribes around them: the tsan leg
  // exercises the WriteWatch lock against the fleet's own mutexes.
  auto env = make_env(6);
  const std::vector<vmm::DomainId> front(env->guests().begin(),
                                         env->guests().begin() + 3);
  const std::vector<vmm::DomainId> back(env->guests().begin() + 3,
                                        env->guests().end());
  FleetService fleet({/*workers=*/2});
  const std::size_t p0 = fleet.add_pool(env->hypervisor(), front);
  const std::size_t p1 = fleet.add_pool(env->hypervisor(), back);
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.start();
  fleet.submit(event_spec("front", p0, {"hal.dll"}, /*repeat=*/4));
  fleet.submit(event_spec("back", p1, {"hal.dll"}, /*repeat=*/4));
  fleet.drain();

  ASSERT_EQ(ring->snapshot().size(), 8u);
  for (const auto& report : ring->snapshot()) {
    EXPECT_TRUE(report.findings.empty());
    for (const auto& scan : report.scans) {
      for (const auto& verdict : scan.verdicts) {
        EXPECT_TRUE(verdict.clean);
      }
    }
  }
  // Each sweep scanned once and skipped its three clean recurrences.
  EXPECT_EQ(fleet.stats().sweeps_skipped_clean, 6u);
  EXPECT_EQ(fleet.stats().event_runs, 2u);
}

TEST(FleetEventDriven, DirtierPoolScansFirstAtEqualPriority) {
  // Two identically built environments, so their boot-time write
  // generations match; the extra writes below make one pool strictly
  // dirtier.  Rewriting the byte that is already there advances the watch
  // generations without changing guest state — dirtier, but still clean.
  auto quiet_env = make_env(3);
  auto busy_env = make_env(3);
  for (const vmm::DomainId d : busy_env->guests()) {
    std::array<std::uint8_t, 1> b{};
    busy_env->hypervisor().domain(d).memory().read(0, MutableByteView(b));
    busy_env->hypervisor().domain(d).memory().write(0, ByteView(b));
  }

  FleetService fleet({/*workers=*/1});
  const std::size_t quiet =
      fleet.add_pool(quiet_env->hypervisor(), quiet_env->guests());
  const std::size_t busy =
      fleet.add_pool(busy_env->hypervisor(), busy_env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);

  // Submitted quiet-first: FIFO alone would scan the quiet pool first.
  // Equal priority and due, so the dirty hint stamped at submission must
  // reorder the queue — detection latency follows the writes.
  const auto quiet_id =
      fleet.submit(event_spec("quiet", quiet, {"hal.dll"}, /*repeat=*/1));
  const auto busy_id =
      fleet.submit(event_spec("busy", busy, {"hal.dll"}, /*repeat=*/1));
  ASSERT_NE(quiet_id, 0u);
  ASSERT_NE(busy_id, 0u);
  fleet.start();
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].id, busy_id);
  EXPECT_EQ(reports[1].id, quiet_id);
  // The same-value rewrites must not have manufactured findings.
  for (const auto& report : reports) {
    EXPECT_TRUE(report.findings.empty());
  }
}

}  // namespace
