// Fault-injection suite (ctest label: faultinj) — the fault-domain
// refactor's behavioural contract under an actively misbehaving guest:
//
//   * the injector itself is deterministic (same profile + seed → the
//     same fault points), so every scenario here is reproducible;
//   * transient faults are retried and recovered from (the verdict is
//     unchanged, the FaultRecords are kept as evidence);
//   * a guest that never answers is quarantined — the sweep completes,
//     the healthy majority still votes, and the quarantine is visible in
//     the text, JSON and FleetService surfaces;
//   * when too few peers answer, verdicts carry quorum_lost instead of
//     pretending the paper's majority rule still holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/dll_import_inject.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report.hpp"
#include "modchecker/report_json.hpp"
#include "service/fleet.hpp"
#include "vmi/session.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

vmm::FaultProfile always_fault() {
  vmm::FaultProfile p;
  p.read_fault_rate = 1.0;
  return p;
}

// ---- FaultInjector unit -------------------------------------------------------

TEST(FaultInjector, DeterministicAcrossInstances) {
  vmm::FaultProfile p;
  p.read_fault_rate = 0.25;
  p.translation_fault_rate = 0.1;
  p.seed = 42;

  vmm::FaultInjector a;
  vmm::FaultInjector b;
  a.arm(3, p);
  b.arm(3, p);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_fault_read(3), b.should_fault_read(3)) << "call " << i;
    EXPECT_EQ(a.should_fault_translation(3), b.should_fault_translation(3));
  }
}

TEST(FaultInjector, CounterTriggersAreExact) {
  vmm::FaultInjector injector;
  vmm::FaultProfile first3;
  first3.fail_first_reads = 3;
  injector.arm(1, first3);
  vmm::FaultProfile after5;
  after5.fail_after_reads = 5;
  injector.arm(2, after5);

  for (int call = 1; call <= 10; ++call) {
    EXPECT_EQ(injector.should_fault_read(1), call <= 3) << "call " << call;
    EXPECT_EQ(injector.should_fault_read(2), call > 5) << "call " << call;
  }
  EXPECT_EQ(injector.stats().injected_read_faults, 3u + 5u);
}

TEST(FaultInjector, ArmedGateTracksProfiles) {
  vmm::FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  injector.arm(1, always_fault());
  injector.arm(2, always_fault());
  EXPECT_TRUE(injector.armed());
  injector.disarm(1);
  EXPECT_TRUE(injector.armed());  // Dom2 still armed
  injector.disarm(2);
  EXPECT_FALSE(injector.armed());  // map empty — hot path gate re-closes
  injector.arm(1, always_fault());
  injector.disarm_all();
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjector, UnarmedDomainNeverFaults) {
  vmm::FaultInjector injector;
  injector.arm(7, always_fault());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_fault_read(8));
  }
}

// ---- VmiSession fault surface -------------------------------------------------

TEST(SessionFaults, TryReadSurfacesRecordAndLegacyThrows) {
  auto env = make_env(2);
  env->hypervisor().fault_injector().arm(env->guests()[0], always_fault());

  SimClock clock;
  vmi::VmiSession session(env->hypervisor(), env->guests()[0], clock);
  const auto r = session.try_read_region(0x80000000u, 16);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().code, FaultCode::kReadFault);
  EXPECT_EQ(r.fault().domain, env->guests()[0]);
  EXPECT_EQ(r.fault().va, 0x80000000u);
  EXPECT_GT(session.stats().faults_observed, 0u);

  // The legacy wrapper raises GuestFaultError, which still IS a VmiError.
  try {
    (void)session.read_region(0x80000000u, 16);
    FAIL() << "read_region on a 100%-faulting domain must throw";
  } catch (const GuestFaultError& e) {
    EXPECT_EQ(e.record().code, FaultCode::kReadFault);
  }
  EXPECT_THROW((void)session.read_region(0x80000000u, 16), VmiError);
}

// ---- retry / recovery ---------------------------------------------------------

TEST(Retry, TransientFaultRecoversWithoutQuarantine) {
  auto env = make_env(4);
  vmm::FaultProfile transient;
  transient.fail_first_reads = 1;  // first read call faults, then recovers
  env->hypervisor().fault_injector().arm(env->guests()[1], transient);

  ModChecker checker(env->hypervisor());
  const auto scan = checker.scan_pool("hal.dll", env->guests());
  ASSERT_EQ(scan.verdicts.size(), 4u);
  for (const auto& v : scan.verdicts) {
    EXPECT_TRUE(v.clean) << "Dom" << v.vm;
    EXPECT_FALSE(v.quarantined) << "Dom" << v.vm;
    EXPECT_FALSE(v.quorum_lost) << "Dom" << v.vm;
  }
  EXPECT_TRUE(scan.quarantined.empty());
  // The recovered fault is kept as evidence: attempt 1, Acquire stage.
  ASSERT_FALSE(scan.faults.empty());
  EXPECT_EQ(scan.faults[0].domain, env->guests()[1]);
  EXPECT_EQ(scan.faults[0].attempt, 1u);
  EXPECT_EQ(scan.faults[0].stage, CheckStage::kAcquire);
}

TEST(Retry, BackoffScheduleIsBoundedAndDeterministic) {
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_base = sim_us(50);
  retry.backoff = RetryPolicy::Backoff::kExponential;
  EXPECT_EQ(retry.delay_before(2), sim_us(50));
  EXPECT_EQ(retry.delay_before(3), 2 * sim_us(50));
  EXPECT_EQ(retry.delay_before(4), 4 * sim_us(50));
  retry.backoff = RetryPolicy::Backoff::kFixed;
  EXPECT_EQ(retry.delay_before(4), sim_us(50));
}

TEST(Retry, AttemptCountRespectsPolicy) {
  auto env = make_env(3);
  env->hypervisor().fault_injector().arm(env->guests()[2], always_fault());

  ModCheckerConfig cfg;
  cfg.retry.max_attempts = 5;
  ModChecker checker(env->hypervisor(), cfg);
  const auto scan = checker.scan_pool("hal.dll", env->guests());

  std::size_t faults_on_victim = 0;
  std::uint32_t max_attempt = 0;
  for (const auto& f : scan.faults) {
    if (f.domain == env->guests()[2]) {
      ++faults_on_victim;
      max_attempt = std::max(max_attempt, f.attempt);
    }
  }
  EXPECT_EQ(faults_on_victim, 5u);
  EXPECT_EQ(max_attempt, 5u);
}

// ---- the acceptance-criteria degradation proof --------------------------------

/// t=5, one domain 100% read-faulting: the sweep completes, the faulty
/// domain is quarantined with FaultRecords in the JSON, and the four
/// healthy VMs still get correct verdicts — clean pool and E1-E4 variants.
class DegradationProof : public ::testing::Test {
 protected:
  void run(const std::string& module,
           const std::function<void(cloud::CloudEnvironment&)>& infect,
           vmm::DomainId infected) {
    auto env = make_env(5);
    const vmm::DomainId faulty = env->guests()[3];
    env->hypervisor().fault_injector().arm(faulty, always_fault());
    if (infect) {
      infect(*env);
    }

    ModChecker checker(env->hypervisor());
    const auto scan = checker.scan_pool(module, env->guests());

    ASSERT_EQ(scan.verdicts.size(), 5u);
    ASSERT_EQ(scan.quarantined.size(), 1u);
    EXPECT_EQ(scan.quarantined[0], faulty);
    EXPECT_TRUE(scan.degraded());
    EXPECT_FALSE(scan.faults.empty());

    for (const auto& v : scan.verdicts) {
      if (v.vm == faulty) {
        EXPECT_TRUE(v.quarantined);
        EXPECT_EQ(v.total, 0u);
        EXPECT_FALSE(v.quorum_lost);  // no verdict to degrade
        continue;
      }
      EXPECT_FALSE(v.quarantined);
      // 3 answering peers of 4 — the majority rule still has quorum.
      EXPECT_EQ(v.peers_total, 4u);
      EXPECT_EQ(v.peers_answered, 3u);
      EXPECT_FALSE(v.quorum_lost);
      EXPECT_EQ(v.clean, v.vm != infected) << "Dom" << v.vm;
    }

    // The quarantine and its evidence reach the JSON surface.
    const std::string json = to_json(scan);
    EXPECT_NE(json.find("\"quarantined\""), std::string::npos);
    EXPECT_NE(json.find("\"faults\""), std::string::npos);
    EXPECT_NE(json.find("\"read-fault\""), std::string::npos);
    // ... and the operator-facing text report.
    const std::string text = format_pool_report(scan);
    EXPECT_NE(text.find("QUARANTINED"), std::string::npos);
  }
};

TEST_F(DegradationProof, CleanPool) { run("hal.dll", nullptr, 0); }

TEST_F(DegradationProof, E1_OpcodeReplace) {
  run("hal.dll",
      [](cloud::CloudEnvironment& env) {
        attacks::OpcodeReplaceAttack{}.apply(env, env.guests()[1], "hal.dll");
      },
      2);
}

TEST_F(DegradationProof, E2_InlineHook) {
  run("hal.dll",
      [](cloud::CloudEnvironment& env) {
        attacks::InlineHookAttack{}.apply(env, env.guests()[1], "hal.dll");
      },
      2);
}

TEST_F(DegradationProof, E3_StubPatch) {
  run("dummy.sys",
      [](cloud::CloudEnvironment& env) {
        attacks::StubPatchAttack{}.apply(env, env.guests()[1], "dummy.sys");
      },
      2);
}

TEST_F(DegradationProof, E4_DllImportInject) {
  run("dummy.sys",
      [](cloud::CloudEnvironment& env) {
        attacks::DllImportInjectAttack{}.apply(env, env.guests()[1],
                                               "dummy.sys");
      },
      2);
}

// ---- degraded quorum ----------------------------------------------------------

TEST(DegradedQuorum, RulePredicate) {
  EXPECT_FALSE(VoteStage::quorum_lost(0, 0));  // single-VM pool: no peers
  EXPECT_FALSE(VoteStage::quorum_lost(3, 4));
  EXPECT_FALSE(VoteStage::quorum_lost(3, 5));  // 2*3 > 5
  EXPECT_TRUE(VoteStage::quorum_lost(2, 4));   // tie is not a quorum
  EXPECT_TRUE(VoteStage::quorum_lost(2, 5));
  EXPECT_TRUE(VoteStage::quorum_lost(0, 4));
}

TEST(DegradedQuorum, CheckModuleFlagsQuorumLoss) {
  auto env = make_env(5);
  // 3 of the subject's 4 peers never answer: 1 <= (5-1)/2 voters left.
  for (const std::size_t i : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    env->hypervisor().fault_injector().arm(env->guests()[i], always_fault());
  }
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_EQ(report.peers_total, 4u);
  EXPECT_EQ(report.peers_answered, 1u);
  EXPECT_TRUE(report.quorum_lost);
  EXPECT_FALSE(report.subject_unavailable);
  EXPECT_EQ(report.unavailable_on.size(), 3u);
  // The lone remaining comparison still votes clean — the flag tells the
  // operator how little that vote now means.
  EXPECT_TRUE(report.subject_clean);
  const std::string text = format_report(report);
  EXPECT_NE(text.find("QUORUM LOST"), std::string::npos);
}

TEST(DegradedQuorum, UnavailableSubjectHasNoVerdict) {
  auto env = make_env(4);
  env->hypervisor().fault_injector().arm(env->guests()[0], always_fault());
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_TRUE(report.subject_unavailable);
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.total_comparisons, 0u);
  EXPECT_TRUE(report.quorum_lost);  // zero voters
  EXPECT_FALSE(report.faults.empty());
  const std::string text = format_report(report);
  EXPECT_NE(text.find("UNAVAILABLE"), std::string::npos);
}

// ---- JSON conditional emission ------------------------------------------------

TEST(FaultJson, HealthyReportsCarryNoFaultFields) {
  auto env = make_env(4);
  ModChecker checker(env->hypervisor());
  const auto scan = checker.scan_pool("hal.dll", env->guests());
  EXPECT_FALSE(scan.degraded());
  const std::string json = to_json(scan);
  EXPECT_EQ(json.find("\"quarantined\""), std::string::npos);
  EXPECT_EQ(json.find("\"faults\""), std::string::npos);
  EXPECT_EQ(json.find("\"quorum_lost\""), std::string::npos);

  const auto check = checker.check_module(env->guests()[0], "hal.dll");
  const std::string check_json = to_json(check);
  EXPECT_EQ(check_json.find("\"faults\""), std::string::npos);
  EXPECT_EQ(check_json.find("\"subject_unavailable\""), std::string::npos);
}

TEST(FaultJson, FaultRecordSchema) {
  FaultRecord fault;
  fault.code = FaultCode::kTranslationFault;
  fault.domain = 3;
  fault.va = 0x1000;
  fault.attempt = 2;
  fault.stage = CheckStage::kAcquire;
  fault.detail = "x";
  const std::string json = to_json(fault);
  EXPECT_NE(json.find("\"code\":\"translation-fault\""), std::string::npos);
  EXPECT_NE(json.find("\"domain\":3"), std::string::npos);
  EXPECT_NE(json.find("\"attempt\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"acquire\""), std::string::npos);
}

// ---- FleetService quarantine surface ------------------------------------------

TEST(FleetFaults, QuarantineSurfacesAndRecurrenceRetries) {
  auto env = make_env(4);
  const vmm::DomainId faulty = env->guests()[2];
  env->hypervisor().fault_injector().arm(faulty, always_fault());

  service::FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<service::RingSink>();
  fleet.add_sink(ring);

  service::SweepSpec spec;
  spec.name = "faulty-pool";
  spec.pool_index = pool;
  spec.modules = {"hal.dll", "ntfs.sys"};
  spec.repeat = 2;  // the recurrence must restart from the *full* pool
  spec.cadence = sim_ms(500);
  fleet.start();
  ASSERT_NE(fleet.submit(spec), 0u);
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    // Quarantined on the first module, then sat out the second: exactly
    // one quarantine event per run, and both modules still scanned (3
    // healthy VMs remain).
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0], faulty);
    EXPECT_FALSE(report.pool_exhausted);
    ASSERT_EQ(report.scans.size(), 2u);
    EXPECT_EQ(report.scans[0].quarantined.size(), 1u);
    EXPECT_TRUE(report.scans[1].quarantined.empty());  // already excluded
    const std::string json = service::to_json(report);
    EXPECT_NE(json.find("\"quarantined\""), std::string::npos);
  }
  EXPECT_EQ(fleet.stats().quarantine_events, 2u);
  EXPECT_EQ(fleet.stats().exhausted_runs, 0u);
}

}  // namespace
