// Integration tests for the ModChecker orchestrator: pool checks, majority
// voting, parallel mode equivalence, timing invariants.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "workload/heavyload.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- clean pools of every size the paper used (property sweep) -----------------
class CleanPoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CleanPoolSweep, AllModulesAllVmsClean) {
  auto env = make_env(GetParam());
  ModChecker checker(env->hypervisor());
  for (const auto& module : env->config().load_order) {
    const auto report = checker.check_module(env->guests()[0], module);
    EXPECT_TRUE(report.subject_clean) << module;
    EXPECT_EQ(report.successes, GetParam() - 1) << module;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, CleanPoolSweep,
                         ::testing::Values(2, 3, 5, 8, 15));

// ---- orchestrator behaviour -------------------------------------------------------
TEST(ModCheckerOrch, MissingModuleOnSubjectThrows) {
  auto env = make_env(3);
  ModChecker checker(env->hypervisor());
  EXPECT_THROW(checker.check_module(env->guests()[0], "ghost.sys"),
               NotFoundError);
}

TEST(ModCheckerOrch, MissingModuleOnPeerIsReportedNotFatal) {
  auto env = make_env(4);
  // inject.dll loaded only on Dom2.
  env->loader(env->guests()[1])
      .load("inject.dll", env->golden().file("inject.dll"));
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[1], "inject.dll");
  EXPECT_EQ(report.total_comparisons, 0u);
  EXPECT_EQ(report.missing_on.size(), 3u);
  EXPECT_FALSE(report.subject_clean);  // nothing to corroborate against
}

TEST(ModCheckerOrch, ExplicitPoolSubsetIsRespected) {
  auto env = make_env(6);
  ModChecker checker(env->hypervisor());
  const std::vector<vmm::DomainId> subset = {env->guests()[2],
                                             env->guests()[4]};
  const auto report =
      checker.check_module(env->guests()[0], "hal.dll", subset);
  EXPECT_EQ(report.total_comparisons, 2u);
  ASSERT_EQ(report.comparisons.size(), 2u);
  EXPECT_EQ(report.comparisons[0].other_domain, env->guests()[2]);
  EXPECT_EQ(report.comparisons[1].other_domain, env->guests()[4]);
}

TEST(ModCheckerOrch, MajorityVoteBoundaries) {
  // t = 4 VMs: subject + 3 comparisons; clean needs n > 3/2 -> n >= 2.
  auto env = make_env(4);
  const attacks::InlineHookAttack attack;

  // One infected peer: subject still clean (2/3).
  attack.apply(*env, env->guests()[1], "hal.dll");
  ModChecker checker(env->hypervisor());
  auto report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_EQ(report.successes, 2u);
  EXPECT_TRUE(report.subject_clean);

  // Two infected peers: subject at 1/3 -> flagged (paper: vote needs the
  // uninfected majority).
  attack.apply(*env, env->guests()[2], "hal.dll");
  report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_EQ(report.successes, 1u);
  EXPECT_FALSE(report.subject_clean);
}

TEST(ModCheckerOrch, FlaggedItemsAreUnionAcrossComparisons) {
  auto env = make_env(4);
  // Different infections on two peers -> subject's flagged set must union
  // the item names seen mismatching anywhere.
  attacks::BytePatchAttack(0x1080, 0x01).apply(*env, env->guests()[1],
                                               "ntfs.sys");
  attacks::BytePatchAttack(0x0002, 0x01).apply(*env, env->guests()[2],
                                               "ntfs.sys");  // DOS header
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "ntfs.sys");
  // Subject matches only the one remaining clean peer: 1/3 < majority.
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.successes, 1u);
  ASSERT_EQ(report.flagged_items.size(), 2u);
  EXPECT_EQ(report.flagged_items[0], ".text");
  EXPECT_EQ(report.flagged_items[1], "IMAGE_DOS_HEADER");
}

// ---- parallel mode -------------------------------------------------------------------
TEST(ModCheckerParallel, VerdictsMatchSequential) {
  auto env = make_env(8);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[3], "hal.dll");

  ModCheckerConfig seq;
  seq.parallel = false;
  ModCheckerConfig par;
  par.parallel = true;
  par.worker_threads = 4;

  ModChecker sequential(env->hypervisor(), seq);
  ModChecker parallel(env->hypervisor(), par);

  for (const auto subject : env->guests()) {
    const auto a = sequential.check_module(subject, "hal.dll");
    const auto b = parallel.check_module(subject, "hal.dll");
    EXPECT_EQ(a.subject_clean, b.subject_clean) << "Dom" << subject;
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.flagged_items, b.flagged_items);
    EXPECT_EQ(a.cpu_times.total(), b.cpu_times.total());
  }
}

TEST(ModCheckerParallel, WallTimeBelowCpuTime) {
  auto env = make_env(10);
  ModCheckerConfig par;
  par.parallel = true;
  par.worker_threads = 8;
  ModChecker checker(env->hypervisor(), par);
  const auto report = checker.check_module(env->guests()[0], "http.sys");
  EXPECT_LT(report.wall_time, report.cpu_times.total());
  EXPECT_GT(report.wall_time, 0u);
}

TEST(ModCheckerParallel, SequentialWallEqualsCpu) {
  auto env = make_env(5);
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "http.sys");
  EXPECT_EQ(report.wall_time, report.cpu_times.total());
}

TEST(ModCheckerParallel, MoreWorkersNoSlowerWall) {
  auto env = make_env(12);
  ModCheckerConfig two;
  two.parallel = true;
  two.worker_threads = 2;
  ModCheckerConfig eight;
  eight.parallel = true;
  eight.worker_threads = 8;
  const auto slow =
      ModChecker(env->hypervisor(), two).check_module(env->guests()[0],
                                                      "http.sys");
  const auto fast =
      ModChecker(env->hypervisor(), eight).check_module(env->guests()[0],
                                                        "http.sys");
  EXPECT_LE(fast.wall_time, slow.wall_time);
}

// ---- pool scan --------------------------------------------------------------------------
TEST(PoolScan, LocalizesSingleInfectedVm) {
  auto env = make_env(7);
  const vmm::DomainId victim = env->guests()[4];
  attacks::InlineHookAttack{}.apply(*env, victim, "hal.dll");

  ModChecker checker(env->hypervisor());
  const auto report = checker.scan_pool("hal.dll", env->guests());
  ASSERT_EQ(report.verdicts.size(), 7u);
  for (const auto& v : report.verdicts) {
    if (v.vm == victim) {
      EXPECT_FALSE(v.clean);
      EXPECT_EQ(v.successes, 0u);
    } else {
      EXPECT_TRUE(v.clean);
      EXPECT_EQ(v.successes, 5u);  // matches all clean peers
      EXPECT_EQ(v.total, 6u);
    }
  }
}

TEST(PoolScan, SymmetricCleanPool) {
  auto env = make_env(5);
  ModChecker checker(env->hypervisor());
  const auto report = checker.scan_pool("tcpip.sys", env->guests());
  for (const auto& v : report.verdicts) {
    EXPECT_TRUE(v.clean);
    EXPECT_EQ(v.successes, v.total);
  }
  EXPECT_GT(report.wall_time, 0u);
}

TEST(PoolScan, ParallelMatchesSequentialVerdicts) {
  auto env = make_env(6);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");
  ModCheckerConfig par;
  par.parallel = true;
  const auto seq =
      ModChecker(env->hypervisor()).scan_pool("hal.dll", env->guests());
  const auto parl = ModChecker(env->hypervisor(), par)
                        .scan_pool("hal.dll", env->guests());
  ASSERT_EQ(seq.verdicts.size(), parl.verdicts.size());
  for (std::size_t i = 0; i < seq.verdicts.size(); ++i) {
    EXPECT_EQ(seq.verdicts[i].clean, parl.verdicts[i].clean);
    EXPECT_EQ(seq.verdicts[i].successes, parl.verdicts[i].successes);
  }
}

// ---- timing invariants --------------------------------------------------------------------
TEST(Timing, SearcherDominatesEveryModule) {
  auto env = make_env(5);
  // Searcher dominance (paper Fig. 7) is a property of a *cold* scan: pin
  // attach-per-check so pooled warm sessions don't mask the page-wise
  // extraction cost across the loop's later modules.
  ModCheckerConfig cfg;
  cfg.reuse_sessions = false;
  ModChecker checker(env->hypervisor(), cfg);
  for (const auto& module : env->config().load_order) {
    const auto report = checker.check_module(env->guests()[0], module);
    EXPECT_GT(report.cpu_times.searcher, report.cpu_times.parser) << module;
    EXPECT_GT(report.cpu_times.searcher, report.cpu_times.checker) << module;
  }
}

TEST(Timing, RuntimeGrowsWithPoolSize) {
  auto env = make_env(10);
  ModChecker checker(env->hypervisor());
  SimNanos prev = 0;
  for (std::size_t n = 2; n <= 10; n += 2) {
    std::vector<vmm::DomainId> others(env->guests().begin() + 1,
                                      env->guests().begin() +
                                          static_cast<std::ptrdiff_t>(n));
    const auto report =
        checker.check_module(env->guests()[0], "http.sys", others);
    EXPECT_GT(report.cpu_times.total(), prev);
    prev = report.cpu_times.total();
  }
}

TEST(Timing, HeavyLoadInflatesRuntime) {
  auto env = make_env(10);
  // Contention inflation must compare equal work: pin attach-per-check so
  // the loaded run isn't quietly cheaper from warm pooled sessions.
  ModCheckerConfig cfg;
  cfg.reuse_sessions = false;
  ModChecker checker(env->hypervisor(), cfg);
  const auto idle = checker.check_module(env->guests()[0], "http.sys");

  workload::HeavyLoad heavyload(*env);
  heavyload.stress_guests(10);
  const auto loaded = checker.check_module(env->guests()[0], "http.sys");
  EXPECT_GT(loaded.cpu_times.total(), idle.cpu_times.total());

  // Past the 8-core knee: more than the sub-knee inflation factor.
  EXPECT_GT(static_cast<double>(loaded.cpu_times.total()),
            1.4 * static_cast<double>(idle.cpu_times.total()));
}

TEST(Timing, LargerModuleCostsMore) {
  auto env = make_env(3);
  ModChecker checker(env->hypervisor());
  const auto big = checker.check_module(env->guests()[0], "http.sys");
  const auto small = checker.check_module(env->guests()[0], "dummy.sys");
  EXPECT_GT(big.cpu_times.total(), small.cpu_times.total());
}

TEST(Timing, DeterministicAcrossRuns) {
  auto env1 = make_env(5);
  auto env2 = make_env(5);
  const auto r1 =
      ModChecker(env1->hypervisor()).check_module(env1->guests()[0],
                                                  "hal.dll");
  const auto r2 =
      ModChecker(env2->hypervisor()).check_module(env2->guests()[0],
                                                  "hal.dll");
  EXPECT_EQ(r1.cpu_times.searcher, r2.cpu_times.searcher);
  EXPECT_EQ(r1.cpu_times.parser, r2.cpu_times.parser);
  EXPECT_EQ(r1.cpu_times.checker, r2.cpu_times.checker);
}

}  // namespace
