// Differential suite for the vectorized hot path: every word-wise kernel
// (SWAR / AVX2 mismatch scan, Algorithm 2's diff-and-resolve loop, the
// span-streaming item digests) must be *bit-identical* to the forced-scalar
// implementation — same rewritten bytes, same counters, same verdicts.
//
// Coverage: the raw mismatch kernel across sizes/alignments/diff positions,
// adjust_rvas at every dispatch level, relocation candidates straddling a
// page boundary inside a scatter-gather GuestView, view-backed vs owned
// item content (hash/CRC/equality), and whole-pool scans of the paper's
// E1-E4 attacks with vectorization on vs. forced off.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/header_tamper.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "crypto/crc32.hpp"
#include "crypto/hasher.hpp"
#include "modchecker/item_content.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/rva_adjust.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"
#include "util/simd.hpp"
#include "vmi/guest_view.hpp"

namespace {

using namespace mc;
using namespace mc::core;

/// Deterministic filler (no global RNG: runs must replay bit-identically).
Bytes patterned(std::size_t n, std::uint32_t seed) {
  Bytes out(n);
  std::uint32_t state = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    out[i] = static_cast<std::uint8_t>(state >> 24);
  }
  return out;
}

/// Reference implementation the kernels are checked against.
std::size_t scalar_mismatch(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n, std::size_t from) {
  for (std::size_t i = from; i < n; ++i) {
    if (a[i] != b[i]) {
      return i;
    }
  }
  return n;
}

// ---- raw kernels --------------------------------------------------------------

TEST(SimdKernels, MismatchMatchesScalarAcrossSizesOffsetsAndDiffs) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{31},
                              std::size_t{32}, std::size_t{33}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{255}, std::size_t{4096}}) {
    const Bytes a = patterned(n, 7);
    for (const std::size_t diff :
         {std::size_t{0}, n / 3, n / 2, n - 1, n}) {  // n = no difference
      Bytes b = a;
      if (diff < n) {
        b[diff] ^= 0x5A;
      }
      for (const std::size_t from :
           {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
            std::size_t{13}, std::size_t{64}}) {
        if (from > n) {
          continue;
        }
        const std::size_t want = scalar_mismatch(a.data(), b.data(), n, from);
        EXPECT_EQ(simd::mismatch(a.data(), b.data(), n, from), want)
            << "n=" << n << " diff=" << diff << " from=" << from << " level="
            << simd::level_name(simd::active_level());
        EXPECT_EQ(simd::mismatch(a.data(), b.data(), n, from,
                                 simd::Policy::kScalar),
                  want);
      }
    }
  }
}

TEST(SimdKernels, MismatchHandlesUnalignedBasePointers) {
  const Bytes backing_a = patterned(512 + 1, 11);
  Bytes backing_b = backing_a;
  backing_b[300] ^= 0xFF;
  // Shift both streams off word alignment by one byte.
  const std::uint8_t* a = backing_a.data() + 1;
  const std::uint8_t* b = backing_b.data() + 1;
  const std::size_t n = 512;
  const std::size_t want = scalar_mismatch(a, b, n, 0);
  EXPECT_EQ(simd::mismatch(a, b, n, 0), want);
  EXPECT_EQ(simd::mismatch(a, b, n, 0, simd::Policy::kScalar), want);
}

TEST(SimdKernels, EqualAgreesWithByteComparison) {
  const Bytes a = patterned(1000, 3);
  Bytes b = a;
  EXPECT_TRUE(simd::equal(a, b));
  EXPECT_TRUE(simd::equal(a, b, simd::Policy::kScalar));
  b[999] ^= 1;
  EXPECT_FALSE(simd::equal(a, b));
  EXPECT_FALSE(simd::equal(a, b, simd::Policy::kScalar));
  EXPECT_FALSE(simd::equal(a, ByteView(a.data(), 999)));  // size mismatch
}

TEST(SimdKernels, ForceScalarPinsTheDispatchLevel) {
  const bool saved = simd::force_scalar();
  simd::set_force_scalar(true);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(simd::Policy::kScalar), simd::Level::kScalar);
  simd::set_force_scalar(false);
  // Whatever the auto level is on this host, an explicit kScalar call
  // stays scalar.
  EXPECT_EQ(simd::active_level(simd::Policy::kScalar), simd::Level::kScalar);
  simd::set_force_scalar(saved);
}

// ---- Algorithm 2 across dispatch levels ---------------------------------------

/// Builds a synthetic "loaded section": patterned content with 4-byte
/// absolute addresses (base + rva) planted at the given offsets.
Bytes loaded_section(std::size_t n, std::uint32_t base,
                     const std::vector<std::size_t>& reloc_offsets) {
  Bytes s = patterned(n, 42);
  for (const std::size_t off : reloc_offsets) {
    store_le32(MutableByteView(s), off,
               base + 0x1000u + static_cast<std::uint32_t>(off));
  }
  return s;
}

struct AdjustRun {
  Bytes a;
  Bytes b;
  RvaAdjustResult result;
};

AdjustRun run_adjust(const Bytes& a0, std::uint32_t base1, const Bytes& b0,
                     std::uint32_t base2, simd::Policy policy) {
  AdjustRun run;
  run.a = a0;
  run.b = b0;
  run.result = adjust_rvas(MutableByteView(run.a), base1,
                           MutableByteView(run.b), base2, policy);
  return run;
}

TEST(SimdRva, AdjustRvasBitIdenticalAtEveryDispatchLevel) {
  const std::uint32_t base1 = 0xF820CC00u;
  const std::uint32_t base2 = 0x7090CC00u;  // shares the low bytes (offset 3)
  // Relocations at aligned, unaligned and buffer-edge offsets.
  const std::vector<std::size_t> relocs = {0, 5, 64, 121, 1000, 2043, 4091};
  const Bytes a = loaded_section(4096, base1, relocs);
  Bytes b = loaded_section(4096, base2, relocs);
  b[512] ^= 0x40;  // one genuine divergence the algorithm must NOT resolve

  const AdjustRun vec = run_adjust(a, base1, b, base2, simd::Policy::kAuto);
  const AdjustRun sca = run_adjust(a, base1, b, base2, simd::Policy::kScalar);

  EXPECT_EQ(vec.result.adjusted, sca.result.adjusted);
  EXPECT_EQ(vec.result.unresolved_diffs, sca.result.unresolved_diffs);
  EXPECT_EQ(vec.a, sca.a);
  EXPECT_EQ(vec.b, sca.b);

  EXPECT_EQ(sca.result.adjusted, relocs.size());
  EXPECT_GE(sca.result.unresolved_diffs, 1u);
}

TEST(SimdRva, LengthMismatchTailsCountIdentically) {
  const std::uint32_t base1 = 0x10000000u;
  const std::uint32_t base2 = 0x20000000u;
  const Bytes a = loaded_section(1003, base1, {8, 500});
  const Bytes b = loaded_section(900, base2, {8, 500});
  const AdjustRun vec = run_adjust(a, base1, b, base2, simd::Policy::kAuto);
  const AdjustRun sca = run_adjust(a, base1, b, base2, simd::Policy::kScalar);
  EXPECT_EQ(vec.result.adjusted, sca.result.adjusted);
  EXPECT_EQ(vec.result.unresolved_diffs, sca.result.unresolved_diffs);
  EXPECT_EQ(vec.a, sca.a);
  EXPECT_EQ(vec.b, sca.b);
}

TEST(SimdRva, RelocationStraddlingPageBoundaryInGuestView) {
  // Two simulated 4KiB frames, with a relocation window that starts 2
  // bytes before the frame boundary — the regression this guards: the
  // 4-byte candidate load must see the logically contiguous image even
  // though the view's segments are separate host allocations.
  constexpr std::size_t kPage = 4096;
  const std::uint32_t base1 = 0x00CC20F8u;
  const std::uint32_t base2 = 0x00CC9070u;
  Bytes image1 = loaded_section(2 * kPage, base1, {100, kPage - 2, 6000});
  const Bytes image2 = loaded_section(2 * kPage, base2, {100, kPage - 2, 6000});

  // Frame-split copies backing the view (separate buffers on purpose).
  const Bytes frame_lo(image1.begin(), image1.begin() + kPage);
  const Bytes frame_hi(image1.begin() + kPage, image1.end());
  vmi::GuestView view;
  view.append(ByteView(frame_lo));
  view.append(ByteView(frame_hi));
  ASSERT_FALSE(view.contiguous());
  ASSERT_EQ(view.size(), image1.size());

  core::IntegrityItem item;
  item.name = ".text";
  item.rva_sensitive = true;
  item.view = view;

  ArenaScope scope(scratch_arena());
  MutableByteView sub = arena_content_copy(scratch_arena(), item);
  Bytes ref = image2;
  for (const simd::Policy policy :
       {simd::Policy::kAuto, simd::Policy::kScalar}) {
    Bytes sub_copy(sub.begin(), sub.end());
    Bytes ref_copy = ref;
    const RvaAdjustResult adj =
        adjust_rvas(MutableByteView(sub_copy), base1,
                    MutableByteView(ref_copy), base2, policy);
    EXPECT_EQ(adj.adjusted, 3u);
    EXPECT_EQ(adj.unresolved_diffs, 0u);
    EXPECT_EQ(sub_copy, ref_copy);  // fully normalized
  }
}

// ---- view-backed item content -------------------------------------------------

TEST(SimdItems, ViewBackedContentHashesAndCrcsMatchOwned) {
  const Bytes content = patterned(10000, 99);
  core::IntegrityItem owned;
  owned.name = ".rodata";
  owned.bytes = content;

  // Same logical content scattered over three separate segments.
  const Bytes seg1(content.begin(), content.begin() + 4096);
  const Bytes seg2(content.begin() + 4096, content.begin() + 8192);
  const Bytes seg3(content.begin() + 8192, content.end());
  core::IntegrityItem viewed;
  viewed.name = ".rodata";
  viewed.view.append(ByteView(seg1));
  viewed.view.append(ByteView(seg2));
  viewed.view.append(ByteView(seg3));
  ASSERT_TRUE(viewed.view_backed());
  ASSERT_FALSE(viewed.view.contiguous());

  for (const crypto::HashAlgorithm alg :
       {crypto::HashAlgorithm::kMd5, crypto::HashAlgorithm::kSha1,
        crypto::HashAlgorithm::kSha256}) {
    EXPECT_EQ(hash_item_content(alg, owned), hash_item_content(alg, viewed));
    EXPECT_EQ(hash_item_content(alg, owned),
              crypto::hash_bytes(alg, content));
  }
  EXPECT_EQ(crc_item_content(viewed), crypto::crc32(content));
  EXPECT_EQ(crc_item_content(owned), crypto::crc32(content));

  EXPECT_TRUE(item_content_equal(owned, viewed));
  EXPECT_TRUE(item_content_equal(owned, viewed, simd::Policy::kScalar));
  EXPECT_TRUE(item_content_equal(viewed, viewed));

  // A single-byte flip in any segment must be seen at every level.
  Bytes seg2_bad = seg2;
  seg2_bad[17] ^= 0x80;
  core::IntegrityItem tampered;
  tampered.view.append(ByteView(seg1));
  tampered.view.append(ByteView(seg2_bad));
  tampered.view.append(ByteView(seg3));
  EXPECT_FALSE(item_content_equal(owned, tampered));
  EXPECT_FALSE(item_content_equal(owned, tampered, simd::Policy::kScalar));
  EXPECT_NE(hash_item_content(crypto::HashAlgorithm::kMd5, owned),
            hash_item_content(crypto::HashAlgorithm::kMd5, tampered));
}

// ---- whole-pool differential: vectorized vs forced scalar ---------------------

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

void expect_same_reports(const PoolScanReport& a, const PoolScanReport& b) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].vm, b.verdicts[i].vm);
    EXPECT_EQ(a.verdicts[i].successes, b.verdicts[i].successes)
        << "vm " << a.verdicts[i].vm;
    EXPECT_EQ(a.verdicts[i].total, b.verdicts[i].total);
    EXPECT_EQ(a.verdicts[i].clean, b.verdicts[i].clean)
        << "vm " << a.verdicts[i].vm;
  }
  EXPECT_EQ(a.fastpath_pairs, b.fastpath_pairs);
  EXPECT_EQ(a.fallback_pairs, b.fallback_pairs);
  EXPECT_EQ(a.cpu_times.total(), b.cpu_times.total())
      << "dispatch level perturbed simulated cost";
}

/// Scans with vectorization on (config default) and forced off; both
/// reports must be bit-identical, including simulated times.
void scan_both_dispatch_levels(cloud::CloudEnvironment& env,
                               const std::string& module) {
  ModCheckerConfig vec_cfg;
  ModCheckerConfig sca_cfg;
  sca_cfg.force_scalar = true;
  ModChecker vectorized(env.hypervisor(), vec_cfg);
  ModChecker scalar(env.hypervisor(), sca_cfg);
  const auto a = vectorized.scan_pool(module, env.guests());
  const auto b = scalar.scan_pool(module, env.guests());
  expect_same_reports(a, b);
}

TEST(SimdPool, CleanPoolVerdictsIdentical) {
  auto env = make_env(6);
  scan_both_dispatch_levels(*env, "hal.dll");
  scan_both_dispatch_levels(*env, "http.sys");
}

TEST(SimdPool, E1OpcodeReplaceVerdictsIdentical) {
  auto env = make_env(6);
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[2], "hal.dll");
  scan_both_dispatch_levels(*env, "hal.dll");
}

TEST(SimdPool, E2InlineHookVerdictsIdentical) {
  auto env = make_env(7);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[4], "hal.dll");
  scan_both_dispatch_levels(*env, "hal.dll");
}

TEST(SimdPool, E3StubPatchVerdictsIdentical) {
  auto env = make_env(5);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[1], "ntfs.sys");
  scan_both_dispatch_levels(*env, "ntfs.sys");
}

TEST(SimdPool, E4HeaderTamperVerdictsIdentical) {
  auto env = make_env(5);
  attacks::HeaderTamperAttack{}.apply(*env, env->guests()[3], "ntfs.sys");
  scan_both_dispatch_levels(*env, "ntfs.sys");
}

TEST(SimdPool, ProcessWideForceScalarMatchesConfigFlag) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[1], "hal.dll");

  ModCheckerConfig cfg;
  ModChecker a(env->hypervisor(), cfg);
  const auto vec_report = a.scan_pool("hal.dll", env->guests());

  const bool saved = simd::force_scalar();
  simd::set_force_scalar(true);
  ModChecker b(env->hypervisor(), cfg);  // kAuto policy, but process pinned
  const auto sca_report = b.scan_pool("hal.dll", env->guests());
  simd::set_force_scalar(saved);

  expect_same_reports(vec_report, sca_report);
}

}  // namespace
