// Tests for the cloud environment: golden image determinism, catalog
// consistency, guest provisioning, disks, snapshots.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cloud/catalog.hpp"
#include "cloud/environment.hpp"
#include "cloud/golden.hpp"
#include "crypto/md5.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"

namespace {

using namespace mc;
using namespace mc::cloud;

// ---- catalog -----------------------------------------------------------------------
TEST(Catalog, ImportsOnlyReferenceEarlierEntriesWithMatchingExports) {
  const auto catalog = default_catalog();
  std::map<std::string, std::set<std::string>> exports_so_far;
  for (const auto& spec : catalog) {
    for (const auto& dll : spec.imports) {
      const auto it = exports_so_far.find(dll.dll_name);
      ASSERT_NE(it, exports_so_far.end())
          << spec.name << " imports from not-yet-listed " << dll.dll_name;
      for (const auto& fn : dll.function_names) {
        EXPECT_TRUE(it->second.count(fn))
            << spec.name << " imports missing export " << dll.dll_name
            << "!" << fn;
      }
    }
    exports_so_far[spec.name] = std::set<std::string>(spec.exports.begin(),
                                                      spec.exports.end());
  }
}

TEST(Catalog, LoadOrderCoversPaperModules) {
  const auto order = default_load_order();
  const std::set<std::string> names(order.begin(), order.end());
  // The modules the paper's experiments use.
  EXPECT_TRUE(names.count("hal.dll"));    // E1, E2
  EXPECT_TRUE(names.count("dummy.sys"));  // E3, E4
  EXPECT_TRUE(names.count("http.sys"));   // Figs. 7-8
  EXPECT_TRUE(names.count("ntfs.sys"));   // Rustock.B example
}

TEST(Catalog, UniqueSeedsAndNames) {
  const auto catalog = default_catalog();
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& spec : catalog) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    EXPECT_TRUE(seeds.insert(spec.seed).second) << spec.name;
  }
}

// ---- golden images --------------------------------------------------------------------
TEST(Golden, BuildIsDeterministic) {
  const auto catalog = default_catalog();
  const GoldenImages a(catalog);
  const GoldenImages b(catalog);
  for (const auto& spec : catalog) {
    EXPECT_EQ(crypto::Md5::hash(a.file(spec.name)),
              crypto::Md5::hash(b.file(spec.name)))
        << spec.name;
  }
}

TEST(Golden, EveryImageIsWellFormed) {
  const GoldenImages golden(default_catalog());
  for (const auto& [name, file] : golden.all()) {
    const Bytes mapped = pe::map_image(file);
    const pe::ParsedImage parsed(mapped);
    EXPECT_GE(parsed.sections().size(), 4u) << name;
    EXPECT_NE(parsed.find_section(".text"), nullptr) << name;
    EXPECT_NE(parsed.find_section(".reloc"), nullptr) << name;
    EXPECT_GT(parsed.optional_header().AddressOfEntryPoint, 0u) << name;
  }
}

TEST(Golden, HttpSysIsTheLargestDriver) {
  // Keeps the Fig. 7/8 workload meaningful.
  const GoldenImages golden(default_catalog());
  const std::size_t http = golden.file("http.sys").size();
  for (const auto& name : {"hal.dll", "ndis.sys", "tcpip.sys", "ntfs.sys",
                           "dummy.sys", "inject.dll"}) {
    EXPECT_GT(http, golden.file(name).size()) << name;
  }
}

TEST(Golden, UnknownFileThrows) {
  const GoldenImages golden(default_catalog());
  EXPECT_THROW(golden.file("nope.sys"), NotFoundError);
  EXPECT_FALSE(golden.has("nope.sys"));
}

// ---- environment ------------------------------------------------------------------------
TEST(Environment, ProvisionsRequestedGuests) {
  CloudConfig cfg;
  cfg.guest_count = 4;
  CloudEnvironment env(cfg);
  EXPECT_EQ(env.guests().size(), 4u);
  for (const auto id : env.guests()) {
    EXPECT_EQ(env.loader(id).loaded().size(), cfg.load_order.size());
  }
}

TEST(Environment, GuestsShareFilesButNotBases) {
  CloudConfig cfg;
  cfg.guest_count = 4;
  CloudEnvironment env(cfg);
  std::set<std::uint32_t> bases;
  for (const auto id : env.guests()) {
    const auto* m = env.loader(id).find("http.sys");
    ASSERT_NE(m, nullptr);
    bases.insert(m->base);
    EXPECT_EQ(env.disk_file(id, "http.sys"), env.golden().file("http.sys"));
  }
  EXPECT_EQ(bases.size(), 4u);  // all different
}

TEST(Environment, DifferentBaseSeedDifferentBases) {
  CloudConfig a;
  a.guest_count = 1;
  CloudConfig b;
  b.guest_count = 1;
  b.base_seed = 777;
  CloudEnvironment env_a(a);
  CloudEnvironment env_b(b);
  EXPECT_NE(env_a.loader(env_a.guests()[0]).find("hal.dll")->base,
            env_b.loader(env_b.guests()[0]).find("hal.dll")->base);
}

TEST(Environment, DiskWriteAndRead) {
  CloudConfig cfg;
  cfg.guest_count = 2;
  CloudEnvironment env(cfg);
  EXPECT_FALSE(env.disk_has(env.guests()[0], "evil.sys"));
  env.write_disk_file(env.guests()[0], "evil.sys", Bytes{1, 2});
  EXPECT_TRUE(env.disk_has(env.guests()[0], "evil.sys"));
  EXPECT_FALSE(env.disk_has(env.guests()[1], "evil.sys"));  // per-VM disks
  EXPECT_THROW(env.disk_file(env.guests()[1], "evil.sys"), NotFoundError);
}

TEST(Environment, SnapshotRevertRestoresMemoryAndDisk) {
  CloudConfig cfg;
  cfg.guest_count = 2;
  CloudEnvironment env(cfg);
  env.snapshot_all();

  const auto vm = env.guests()[0];
  const Bytes original_disk = env.disk_file(vm, "hal.dll");
  env.write_disk_file(vm, "hal.dll", Bytes{9, 9, 9});
  env.kernel(vm).address_space().write_virtual(
      env.loader(vm).find("hal.dll")->base + 0x1000, Bytes{1, 2, 3});

  env.revert(vm);
  EXPECT_EQ(env.disk_file(vm, "hal.dll"), original_disk);
  Bytes probe(3, 0);
  env.kernel(vm).address_space().read_virtual(
      env.loader(vm).find("hal.dll")->base + 0x1000, probe);
  EXPECT_NE(probe, (Bytes{1, 2, 3}));
}

TEST(Environment, RevertWithoutSnapshotThrows) {
  CloudConfig cfg;
  cfg.guest_count = 1;
  CloudEnvironment env(cfg);
  EXPECT_THROW(env.revert(env.guests()[0]), NotFoundError);
}

TEST(Environment, SetBusyGuests) {
  CloudConfig cfg;
  cfg.guest_count = 4;
  CloudEnvironment env(cfg);
  env.set_busy_guests(2);
  EXPECT_DOUBLE_EQ(env.hypervisor().total_busy_load(), 2.0);
  env.set_busy_guests(0);
  EXPECT_DOUBLE_EQ(env.hypervisor().total_busy_load(), 0.0);
  EXPECT_THROW(env.set_busy_guests(5), InvalidArgument);
}

TEST(Environment, UnknownGuestAccessorsThrow) {
  CloudConfig cfg;
  cfg.guest_count = 1;
  CloudEnvironment env(cfg);
  EXPECT_THROW(env.kernel(42), NotFoundError);
  EXPECT_THROW(env.loader(42), NotFoundError);
}

}  // namespace
