// Tests for the PE consistency validator.
#include <gtest/gtest.h>

#include "cloud/catalog.hpp"
#include "cloud/golden.hpp"
#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "pe/structs.hpp"
#include "pe/validate.hpp"

namespace {

using namespace mc;
using namespace mc::pe;

const Bytes& sample_file() {
  static const cloud::GoldenImages golden(cloud::default_catalog());
  return golden.file("hal.dll");
}

bool has_rule(const ValidationReport& report, const std::string& rule) {
  for (const auto& f : report.findings) {
    if (f.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(Validate, GoldenImagesAreClean) {
  const cloud::GoldenImages golden(cloud::default_catalog());
  for (const auto& [name, file] : golden.all()) {
    const auto report = validate_image_file(file);
    EXPECT_TRUE(report.ok()) << name << "\n"
                             << format_validation_report(report);
    EXPECT_EQ(report.error_count(), 0u) << name;
  }
}

TEST(Validate, DetectsBrokenDosMagic) {
  Bytes file = sample_file();
  file[0] = 'X';
  const auto report = validate_image_file(file);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "dos-magic"));
}

TEST(Validate, DetectsBrokenPeSignature) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  file[dos.e_lfanew] = 0;
  const auto report = validate_image_file(file);
  EXPECT_TRUE(has_rule(report, "pe-signature"));
}

TEST(Validate, DetectsTruncation) {
  Bytes file = sample_file();
  file.resize(48);
  EXPECT_TRUE(has_rule(validate_image_file(file), "truncated"));
}

TEST(Validate, DetectsBadChecksum) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  const std::size_t checksum_offset = dos.e_lfanew + kNtHeadersPrefixSize + 64;
  store_le32(file, checksum_offset, 0x12345678);
  const auto report = validate_image_file(file);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "checksum"));
}

TEST(Validate, ZeroChecksumIsOnlyAWarning) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  store_le32(file, dos.e_lfanew + kNtHeadersPrefixSize + 64, 0);
  const auto report = validate_image_file(file);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_TRUE(has_rule(report, "checksum"));
  EXPECT_GE(report.warning_count(), 1u);
}

TEST(Validate, DetectsSectionOverlap) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  const FileHeader fh = FileHeader::parse(file, dos.e_lfanew + 4);
  const std::size_t sec_off =
      dos.e_lfanew + kNtHeadersPrefixSize + fh.SizeOfOptionalHeader;
  // Make section 1 start where section 0 starts.
  const std::uint32_t s0_rva = load_le32(file, sec_off + 12);
  store_le32(file, sec_off + kSectionHeaderSize + 12, s0_rva);
  // Fix the checksum so only the overlap fires.
  const std::size_t checksum_offset = dos.e_lfanew + kNtHeadersPrefixSize + 64;
  store_le32(file, checksum_offset, 0);
  store_le32(file, checksum_offset,
             compute_pe_checksum(file, checksum_offset));
  const auto report = validate_image_file(file);
  EXPECT_TRUE(has_rule(report, "section-overlap"));
}

TEST(Validate, DetectsEntryPointOutsideSections) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  const std::size_t opt_off = dos.e_lfanew + kNtHeadersPrefixSize;
  store_le32(file, opt_off + 16, 0x00F00000);  // way outside
  const auto report = validate_image_file(file);
  EXPECT_TRUE(has_rule(report, "entry-point"));
}

TEST(Validate, DetectsDirectoryOutOfBounds) {
  Bytes file = sample_file();
  const DosHeader dos = DosHeader::parse(file);
  const std::size_t opt_off = dos.e_lfanew + kNtHeadersPrefixSize;
  store_le32(file, opt_off + 96 + 8 * kDirImport, 0x00F00000);
  store_le32(file, opt_off + 100 + 8 * kDirImport, 0x1000);
  const auto report = validate_image_file(file);
  EXPECT_TRUE(has_rule(report, "directory-bounds"));
}

TEST(Validate, ReportFormatting) {
  Bytes file = sample_file();
  file[0] = 'X';
  const std::string text =
      format_validation_report(validate_image_file(file));
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("dos-magic"), std::string::npos);
}

}  // namespace
