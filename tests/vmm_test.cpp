// Unit tests for mc_vmm: sparse physical memory, x86 page tables, domains,
// hypervisor lifecycle, snapshots, and the contention model.
#include <gtest/gtest.h>

#include "vmm/address_space.hpp"
#include "vmm/contention.hpp"
#include "vmm/domain.hpp"
#include "vmm/hypervisor.hpp"
#include "vmm/phys_mem.hpp"

namespace {

using namespace mc;
using namespace mc::vmm;

// ---- PhysicalMemory -----------------------------------------------------------
TEST(PhysMem, RoundsSizeUpToFrames) {
  PhysicalMemory mem(kFrameSize + 1);
  EXPECT_EQ(mem.size(), 2u * kFrameSize);
  EXPECT_EQ(mem.frame_count(), 2u);
}

TEST(PhysMem, UntouchedFramesReadZero) {
  PhysicalMemory mem(1 << 20);
  Bytes buf(64, 0xFF);
  mem.read(0x5000, buf);
  EXPECT_EQ(buf, Bytes(64, 0));
  EXPECT_EQ(mem.resident_frames(), 0u);
}

TEST(PhysMem, WriteReadRoundTrip) {
  PhysicalMemory mem(1 << 20);
  const Bytes data = {1, 2, 3, 4, 5};
  mem.write(0x1234, data);
  Bytes out(5, 0);
  mem.read(0x1234, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(mem.resident_frames(), 1u);
}

TEST(PhysMem, CrossFrameAccess) {
  PhysicalMemory mem(1 << 20);
  Bytes data(kFrameSize, 0xAB);
  mem.write(kFrameSize - 100, data);  // spans two frames
  EXPECT_EQ(mem.resident_frames(), 2u);
  Bytes out(kFrameSize, 0);
  mem.read(kFrameSize - 100, out);
  EXPECT_EQ(out, data);
}

TEST(PhysMem, U32Helpers) {
  PhysicalMemory mem(1 << 20);
  mem.write_u32(0x2000, 0xDEADBEEF);
  EXPECT_EQ(mem.read_u32(0x2000), 0xDEADBEEFu);
  EXPECT_EQ(mem.read_u8(0x2000), 0xEF);
}

TEST(PhysMem, OutOfRangeThrows) {
  PhysicalMemory mem(2 * kFrameSize);
  Bytes buf(16, 0);
  EXPECT_THROW(mem.read(2 * kFrameSize - 8, buf), MemoryError);
  EXPECT_THROW(mem.write(2 * kFrameSize, Bytes{1}), MemoryError);
}

TEST(PhysMem, FrameZeroIsReserved) {
  PhysicalMemory mem(1 << 20);
  EXPECT_EQ(mem.alloc_frame(), 1u);  // frame 0 never handed out
}

TEST(PhysMem, ContiguousAllocation) {
  PhysicalMemory mem(1 << 20);
  const std::uint32_t first = mem.alloc_frames(4);
  const std::uint32_t next = mem.alloc_frame();
  EXPECT_EQ(next, first + 4);
}

TEST(PhysMem, ExhaustionThrows) {
  PhysicalMemory mem(4 * kFrameSize);
  mem.alloc_frames(3);  // 1..3 (0 reserved)
  EXPECT_THROW(mem.alloc_frame(), MemoryError);
}

TEST(PhysMem, CloneIsIndependent) {
  PhysicalMemory mem(1 << 20);
  mem.write_u32(0x3000, 111);
  PhysicalMemory copy = mem.clone();
  copy.write_u32(0x3000, 222);
  EXPECT_EQ(mem.read_u32(0x3000), 111u);
  EXPECT_EQ(copy.read_u32(0x3000), 222u);
}

TEST(PhysMem, RestoreFromSnapshot) {
  PhysicalMemory mem(1 << 20);
  mem.write_u32(0x3000, 111);
  const PhysicalMemory snap = mem.clone();
  mem.write_u32(0x3000, 999);
  mem.write_u32(0x9000, 5);
  mem.restore_from(snap);
  EXPECT_EQ(mem.read_u32(0x3000), 111u);
  EXPECT_EQ(mem.read_u32(0x9000), 0u);  // extra frame dropped
}

// ---- AddressSpace ---------------------------------------------------------------
TEST(AddressSpace, MapAndTranslate) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  const std::uint64_t pa = std::uint64_t{mem.alloc_frame()} << kFrameShift;
  aspace.map_page(0x80000000, pa, true);

  const auto got = aspace.translate(0x80000123);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, pa + 0x123);
}

TEST(AddressSpace, UnmappedTranslatesToNothing) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  EXPECT_FALSE(aspace.translate(0x80000000).has_value());
  aspace.map_region(0x80000000, kFrameSize, true);
  EXPECT_TRUE(aspace.translate(0x80000000).has_value());
  EXPECT_FALSE(aspace.translate(0x80001000).has_value());  // next page
}

TEST(AddressSpace, VirtualReadWriteCrossPage) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  aspace.map_region(0x80000000, 2 * kFrameSize, true);

  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  aspace.write_virtual(0x80000F80, data);  // spans the page boundary
  Bytes out(300, 0);
  aspace.read_virtual(0x80000F80, out);
  EXPECT_EQ(out, data);
}

TEST(AddressSpace, PhysicalPagesNeedNotBeContiguous) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  aspace.map_region(0x80000000, kFrameSize, true);
  mem.alloc_frames(3);  // make a hole
  aspace.map_region(0x80001000, kFrameSize, true);

  const auto pa0 = aspace.translate(0x80000000);
  const auto pa1 = aspace.translate(0x80001000);
  ASSERT_TRUE(pa0 && pa1);
  EXPECT_NE(*pa1, *pa0 + kFrameSize);
  // Virtual contiguity still works.
  Bytes data(kFrameSize + 16, 0x7E);
  aspace.write_virtual(0x80000000, data);
  Bytes out(data.size(), 0);
  aspace.read_virtual(0x80000000, out);
  EXPECT_EQ(out, data);
}

TEST(AddressSpace, UnmappedAccessThrows) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  Bytes buf(4, 0);
  EXPECT_THROW(aspace.read_virtual(0x80000000, buf), MemoryError);
  EXPECT_THROW(aspace.write_virtual(0x80000000, buf), MemoryError);
}

TEST(AddressSpace, AlignmentPreconditions) {
  PhysicalMemory mem(4 << 20);
  AddressSpace aspace(mem);
  EXPECT_THROW(aspace.map_page(0x80000001, 0x1000, true), InvalidArgument);
  EXPECT_THROW(aspace.map_page(0x80000000, 0x1001, true), InvalidArgument);
}

TEST(AddressSpace, WrapExistingCr3) {
  PhysicalMemory mem(4 << 20);
  AddressSpace original(mem);
  original.map_region(0x80000000, kFrameSize, true);
  original.write_virtual(0x80000000, Bytes{9, 8, 7});

  AddressSpace view(mem, original.cr3());
  Bytes out(3, 0);
  view.read_virtual(0x80000000, out);
  EXPECT_EQ(out, (Bytes{9, 8, 7}));
}

// ---- Domain / Hypervisor -----------------------------------------------------------
TEST(Hypervisor, DomainLifecycle) {
  Hypervisor hv;
  const DomainId a = hv.create_domain("Dom1", 8 << 20);
  const DomainId b = hv.create_domain("Dom2", 8 << 20);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(hv.domain_count(), 2u);
  EXPECT_EQ(hv.domain(a).name(), "Dom1");
  hv.destroy_domain(a);
  EXPECT_FALSE(hv.has_domain(a));
  EXPECT_THROW(hv.domain(a), NotFoundError);
  EXPECT_THROW(hv.destroy_domain(a), NotFoundError);
}

TEST(Hypervisor, CloneCopiesMemoryAndState) {
  Hypervisor hv;
  const DomainId src = hv.create_domain("src", 8 << 20);
  hv.domain(src).memory().write_u32(0x4000, 42);
  hv.domain(src).set_cr3(0x1000);

  const DomainId dst = hv.clone_domain(src, "dst");
  EXPECT_EQ(hv.domain(dst).memory().read_u32(0x4000), 42u);
  EXPECT_EQ(hv.domain(dst).cr3(), 0x1000u);
  // Independent after clone.
  hv.domain(dst).memory().write_u32(0x4000, 7);
  EXPECT_EQ(hv.domain(src).memory().read_u32(0x4000), 42u);
}

TEST(Hypervisor, SnapshotRestore) {
  Hypervisor hv;
  const DomainId id = hv.create_domain("d", 8 << 20);
  hv.domain(id).memory().write_u32(0x4000, 1);
  const DomainSnapshot snap = hv.snapshot(id);
  hv.domain(id).memory().write_u32(0x4000, 2);
  hv.restore(snap);
  EXPECT_EQ(hv.domain(id).memory().read_u32(0x4000), 1u);
}

TEST(Hypervisor, BusyLoadAggregation) {
  Hypervisor hv;
  const DomainId a = hv.create_domain("a", 8 << 20);
  const DomainId b = hv.create_domain("b", 8 << 20);
  hv.domain(a).set_load_level(1.0);
  hv.domain(b).set_load_level(0.5);
  EXPECT_DOUBLE_EQ(hv.total_busy_load(), 1.5);
  EXPECT_GT(hv.dom0_slowdown(), 1.0);
}

TEST(Domain, LoadLevelValidation) {
  Domain d(1, "x", 8 << 20);
  EXPECT_THROW(d.set_load_level(-0.1), InvalidArgument);
  EXPECT_THROW(d.set_load_level(1.5), InvalidArgument);
  d.set_load_level(0.7);
  EXPECT_DOUBLE_EQ(d.load_level(), 0.7);
}

TEST(HardwareConfig, VirtualCores) {
  HardwareConfig hw;
  EXPECT_EQ(hw.virtual_cores(), 8u);  // paper testbed: quad core + HT
  hw.hyperthreading = false;
  EXPECT_EQ(hw.virtual_cores(), 4u);
}

// ---- ContentionModel ------------------------------------------------------------------
TEST(Contention, IdleMeansNoSlowdown) {
  ContentionModel model;
  EXPECT_DOUBLE_EQ(model.dom0_slowdown(0), 1.0);
}

TEST(Contention, MonotonicInBusyLoad) {
  ContentionModel model;
  double prev = 0;
  for (int b = 0; b <= 20; ++b) {
    const double f = model.dom0_slowdown(b);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Contention, LinearBelowCoreCount) {
  ContentionParams p;
  ContentionModel model(p);
  const double step_low =
      model.dom0_slowdown(4) - model.dom0_slowdown(3);
  const double step_low2 =
      model.dom0_slowdown(7) - model.dom0_slowdown(6);
  EXPECT_NEAR(step_low, step_low2, 1e-12);
}

TEST(Contention, KneeAtCoreCount) {
  ContentionParams p;
  ContentionModel model(p);
  const double step_before =
      model.dom0_slowdown(8) - model.dom0_slowdown(7);
  const double step_after =
      model.dom0_slowdown(12) - model.dom0_slowdown(11);
  EXPECT_GT(step_after, 4 * step_before);  // superlinear past the knee
}

// Parameterized: the knee must track the configured core count.
class ContentionKnee : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ContentionKnee, KneeFollowsCoreCount) {
  ContentionParams p;
  p.virtual_cores = GetParam();
  ContentionModel model(p);
  const double v = p.virtual_cores;
  // Marginal slowdown just below vs just above the knee.
  const double below = model.dom0_slowdown(v) - model.dom0_slowdown(v - 1);
  const double above =
      model.dom0_slowdown(v + 2) - model.dom0_slowdown(v + 1);
  EXPECT_GT(above, below);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, ContentionKnee,
                         ::testing::Values(2, 4, 8, 16));

TEST(Contention, NegativeLoadClamped) {
  ContentionModel model;
  EXPECT_DOUBLE_EQ(model.dom0_slowdown(-3.0), 1.0);
}

}  // namespace
