// Multi-threaded stress tests — the suite a ThreadSanitizer build must
// keep clean (`ctest -L tsan`).
//
// The paper's §V-C.1 extension runs per-VM extraction in parallel; in a
// production deployment many checker instances additionally share one
// hypervisor's read-only introspection surface.  These tests drive that
// sharing hard: N subject VMs checked concurrently through ThreadPool,
// concurrent ScanSchedulers over the same pool, and ModChecker's internal
// parallel mode racing against itself from several threads.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mc;

constexpr std::size_t kGuests = 6;
constexpr std::size_t kWorkers = 4;

std::unique_ptr<cloud::CloudEnvironment> make_env() {
  cloud::CloudConfig config;
  config.guest_count = kGuests;
  return std::make_unique<cloud::CloudEnvironment>(config);
}

TEST(ConcurrencyStress, ThreadPoolManyProducersManyTasks) {
  ThreadPool pool(kWorkers);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  std::vector<std::future<int>> futures[3];  // one slot per producer
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 64; ++i) {
        futures[p].push_back(pool.submit([&sum, i] {
          sum.fetch_add(1, std::memory_order_relaxed);
          return i;
        }));
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  int total = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      total += f.get();
    }
  }
  EXPECT_EQ(total, 3 * (63 * 64 / 2));
  EXPECT_EQ(sum.load(), 3 * 64);
}

// Every guest takes the subject role at once, each on its own checker but
// all reading the same hypervisor.  All verdicts must come back clean.
TEST(ConcurrencyStress, NVmsCheckedConcurrentlyThroughThreadPool) {
  auto env = make_env();
  const vmm::Hypervisor& hv = env->hypervisor();
  ThreadPool pool(kWorkers);

  std::vector<std::future<core::CheckReport>> futures;
  futures.reserve(env->guests().size());
  for (const vmm::DomainId subject : env->guests()) {
    futures.push_back(pool.submit([&hv, subject] {
      core::ModChecker checker(hv);
      return checker.check_module(subject, "hal.dll");
    }));
  }
  for (auto& f : futures) {
    const auto report = f.get();
    EXPECT_TRUE(report.subject_clean);
    EXPECT_EQ(report.total_comparisons, kGuests - 1);
  }
}

// An infected guest must be flagged even when every check runs in
// parallel with checks of the clean guests.
TEST(ConcurrencyStress, InfectedVmFlaggedUnderConcurrentChecks) {
  auto env = make_env();
  attacks::InlineHookAttack attack;
  const vmm::DomainId infected = env->guests()[2];
  attack.apply(*env, infected, "hal.dll");

  const vmm::Hypervisor& hv = env->hypervisor();
  ThreadPool pool(kWorkers);
  std::vector<vmm::DomainId> subjects(env->guests());
  std::vector<std::future<core::CheckReport>> futures;
  futures.reserve(subjects.size());
  for (const vmm::DomainId subject : subjects) {
    futures.push_back(pool.submit([&hv, subject] {
      core::ModChecker checker(hv);
      return checker.check_module(subject, "hal.dll");
    }));
  }
  for (std::size_t i = 0; i < subjects.size(); ++i) {
    const auto report = futures[i].get();
    EXPECT_EQ(report.subject_clean, subjects[i] != infected)
        << "subject Dom" << subjects[i];
  }
}

// ModChecker's own parallel mode (internal pool) exercised from multiple
// threads simultaneously — pools within pools.
TEST(ConcurrencyStress, ParallelModeCheckersRaceEachOther) {
  auto env = make_env();
  const vmm::Hypervisor& hv = env->hypervisor();

  core::ModCheckerConfig config;
  config.parallel = true;
  config.worker_threads = 3;

  std::vector<std::thread> threads;
  std::atomic<int> clean{0};
  for (std::size_t t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      core::ModChecker checker(hv, config);
      const auto subject = env->guests()[t % kGuests];
      const auto report = checker.check_module(subject, "hal.dll");
      if (report.subject_clean) {
        clean.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(clean.load(), static_cast<int>(kWorkers));
}

// Concurrent continuous-monitoring schedulers over one shared pool: each
// thread owns its scheduler (they are single-threaded objects) but all of
// them introspect the same guests at once.
TEST(ConcurrencyStress, SchedulersScanSharedPoolConcurrently) {
  auto env = make_env();
  const vmm::Hypervisor& hv = env->hypervisor();

  ThreadPool pool(kWorkers);
  std::vector<std::future<core::ScheduleReport>> futures;
  for (std::size_t t = 0; t < kWorkers; ++t) {
    futures.push_back(pool.submit([&hv, &env] {
      core::ScanScheduler scheduler(hv, env->guests());
      scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
      scheduler.add_policy({"http.sys", sim_ms(2500), sim_ms(100)});
      return scheduler.run_until(sim_ms(5000));
    }));
  }
  for (auto& f : futures) {
    const auto report = f.get();
    EXPECT_GT(report.scans.size(), 0u);
    EXPECT_TRUE(report.alerts.empty());
  }
}

}  // namespace
