// Differential suite: the canonical-RVA fast path and the digest memo must
// be *verdict-identical* to the paper-faithful pairwise implementation.
//
// Every test runs the same pool through a fast checker (pool_fastpath +
// digest_memo + reuse_sessions) and a faithful one (everything off) and
// demands bit-equal verdicts, flagged items and vote counts — across clean
// pools of every size the paper used, the E1-E4 infections, and the
// fallback corners (reference infected, unresolvable diffs, shape
// mismatches).  CanonicalPool's eligibility rules get direct synthetic
// coverage at the bottom.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attacks/byte_patch.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/canonical.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

ModCheckerConfig fast_config() {
  ModCheckerConfig cfg;  // fast path, memo and session reuse are defaults
  EXPECT_TRUE(cfg.pool_fastpath);
  EXPECT_TRUE(cfg.digest_memo);
  EXPECT_TRUE(cfg.reuse_sessions);
  return cfg;
}

ModCheckerConfig faithful_config() {
  ModCheckerConfig cfg;
  cfg.pool_fastpath = false;
  cfg.digest_memo = false;
  cfg.reuse_sessions = false;
  return cfg;
}

void expect_same_verdicts(const PoolScanReport& a, const PoolScanReport& b) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].vm, b.verdicts[i].vm);
    EXPECT_EQ(a.verdicts[i].successes, b.verdicts[i].successes)
        << "vm " << a.verdicts[i].vm;
    EXPECT_EQ(a.verdicts[i].total, b.verdicts[i].total);
    EXPECT_EQ(a.verdicts[i].clean, b.verdicts[i].clean)
        << "vm " << a.verdicts[i].vm;
  }
}

/// Scans the same env with both configs and requires identical verdicts.
/// Returns the fast report for extra assertions.
PoolScanReport scan_both_ways(cloud::CloudEnvironment& env,
                              const std::string& module) {
  ModChecker fast(env.hypervisor(), fast_config());
  ModChecker faithful(env.hypervisor(), faithful_config());
  const auto a = fast.scan_pool(module, env.guests());
  const auto b = faithful.scan_pool(module, env.guests());
  expect_same_verdicts(a, b);
  EXPECT_EQ(b.fastpath_pairs, 0u);  // the faithful config never fast-paths
  return a;
}

// ---- clean pools --------------------------------------------------------------

class CleanPoolFastpath : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CleanPoolFastpath, VerdictsMatchAndEveryPairIsFast) {
  auto env = make_env(GetParam());
  for (const std::string module : {"hal.dll", "http.sys"}) {
    const auto report = scan_both_ways(*env, module);
    const std::size_t t = GetParam();
    EXPECT_EQ(report.fastpath_pairs, t * (t - 1) / 2) << module;
    EXPECT_EQ(report.fallback_pairs, 0u) << module;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, CleanPoolFastpath,
                         ::testing::Values(2, 3, 5, 8, 15));

// ---- the paper's experiments E1-E4 -------------------------------------------

TEST(FastpathEquivalence, E1_OpcodeReplace) {
  auto env = make_env(6);
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[2], "hal.dll");
  const auto report = scan_both_ways(*env, "hal.dll");
  // The infected copy cannot reduce to the clean canonical: its 5 pairs
  // (and only those) run the exact fallback.
  EXPECT_EQ(report.fallback_pairs, 5u);
  EXPECT_EQ(report.fastpath_pairs, 10u);
}

TEST(FastpathEquivalence, E2_InlineHook) {
  auto env = make_env(7);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[4], "hal.dll");
  scan_both_ways(*env, "hal.dll");
}

TEST(FastpathEquivalence, E3_StubPatch) {
  auto env = make_env(5);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[1], "dummy.sys");
  const auto report = scan_both_ways(*env, "dummy.sys");
  // The DOS stub is not rva-sensitive: the infected copy stays *eligible*
  // and is outvoted purely on digest-vector inequality — no fallback.
  EXPECT_EQ(report.fallback_pairs, 0u);
  EXPECT_EQ(report.fastpath_pairs, 10u);
}

TEST(FastpathEquivalence, E4_DllImportInject) {
  auto env = make_env(5);
  attacks::DllImportInjectAttack{}.apply(*env, env->guests()[3], "dummy.sys");
  scan_both_ways(*env, "dummy.sys");
}

TEST(FastpathEquivalence, HeaderTamper) {
  auto env = make_env(6);
  attacks::HeaderTamperAttack{}.apply(*env, env->guests()[2], "ntfs.sys");
  scan_both_ways(*env, "ntfs.sys");
}

TEST(FastpathEquivalence, InfectedReferenceStillLocalized) {
  // The *first* pool VM seeds the canonical form.  Infecting it must not
  // poison the majority: clean copies fail to reduce against the infected
  // reference (or reduce to a canonical the majority contradicts) and the
  // fallback reproduces the exact verdicts.
  auto env = make_env(6);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  const auto report = scan_both_ways(*env, "hal.dll");
  std::size_t dirty = 0;
  for (const auto& v : report.verdicts) {
    if (!v.clean) {
      ++dirty;
      EXPECT_EQ(v.vm, env->guests()[0]);
    }
  }
  EXPECT_EQ(dirty, 1u);
}

TEST(FastpathEquivalence, TwoInfectedVmsIncludingReference) {
  auto env = make_env(8);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[5], "hal.dll");
  scan_both_ways(*env, "hal.dll");
}

TEST(FastpathEquivalence, BytePatchDropsOnlyVictimPairsToFallback) {
  auto env = make_env(6);
  attacks::BytePatchAttack(0x1080, 0x5A).apply(*env, env->guests()[3],
                                               "ntfs.sys");
  const auto report = scan_both_ways(*env, "ntfs.sys");
  EXPECT_EQ(report.fallback_pairs, 5u);    // victim vs 5 clean peers
  EXPECT_EQ(report.fastpath_pairs, 10u);   // clean C(5,2)
}

// ---- check_module digest memo -------------------------------------------------

void expect_same_check(const CheckReport& a, const CheckReport& b) {
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.total_comparisons, b.total_comparisons);
  EXPECT_EQ(a.subject_clean, b.subject_clean);
  EXPECT_EQ(a.flagged_items, b.flagged_items);
  ASSERT_EQ(a.comparisons.size(), b.comparisons.size());
  for (std::size_t i = 0; i < a.comparisons.size(); ++i) {
    const auto& ca = a.comparisons[i];
    const auto& cb = b.comparisons[i];
    EXPECT_EQ(ca.other_domain, cb.other_domain);
    EXPECT_EQ(ca.all_match, cb.all_match);
    ASSERT_EQ(ca.items.size(), cb.items.size());
    for (std::size_t k = 0; k < ca.items.size(); ++k) {
      EXPECT_EQ(ca.items[k].item_name, cb.items[k].item_name);
      EXPECT_EQ(ca.items[k].match, cb.items[k].match);
      EXPECT_EQ(ca.items[k].digest_subject.hex(),
                cb.items[k].digest_subject.hex());
      EXPECT_EQ(ca.items[k].digest_other.hex(),
                cb.items[k].digest_other.hex());
    }
  }
}

TEST(DigestMemo, CheckModuleBitIdenticalCleanAndInfected) {
  auto env = make_env(6);
  attacks::HeaderTamperAttack{}.apply(*env, env->guests()[2], "ntfs.sys");
  ModChecker fast(env->hypervisor(), fast_config());
  ModChecker faithful(env->hypervisor(), faithful_config());
  for (const std::string module : {"hal.dll", "ntfs.sys"}) {
    expect_same_check(fast.check_module(env->guests()[0], module),
                      faithful.check_module(env->guests()[0], module));
  }
}

TEST(DigestMemo, CrcPrefilterDecisionsUnchanged) {
  auto env = make_env(5);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[1], "dummy.sys");
  ModCheckerConfig fast = fast_config();
  fast.crc_prefilter = true;
  ModCheckerConfig faithful = faithful_config();
  faithful.crc_prefilter = true;
  ModChecker a(env->hypervisor(), fast);
  ModChecker b(env->hypervisor(), faithful);
  for (const std::string module : {"dummy.sys", "tcpip.sys"}) {
    expect_same_check(a.check_module(env->guests()[0], module),
                      b.check_module(env->guests()[0], module));
  }
}

TEST(DigestMemo, CrcPrefilterDisablesPoolFastpath) {
  auto env = make_env(4);
  ModCheckerConfig cfg = fast_config();
  cfg.crc_prefilter = true;
  const auto report =
      ModChecker(env->hypervisor(), cfg).scan_pool("hal.dll", env->guests());
  EXPECT_EQ(report.fastpath_pairs, 0u);
  EXPECT_EQ(report.fallback_pairs, 6u);
}

// ---- parallel fallback accounting (the wall-time fix) --------------------------

TEST(FastpathEquivalence, ParallelFallbackWallBelowCpu) {
  auto env = make_env(8);
  ModCheckerConfig cfg = faithful_config();  // every pair falls back
  cfg.parallel = true;
  cfg.worker_threads = 8;
  const auto report =
      ModChecker(env->hypervisor(), cfg).scan_pool("http.sys", env->guests());
  // 28 comparison tasks on 8 workers: the charged wall time must now be
  // the makespan, strictly below the summed CPU time.
  EXPECT_LT(report.wall_time, report.cpu_times.total());
  // And verdicts still match the sequential faithful scan.
  const auto seq = ModChecker(env->hypervisor(), faithful_config())
                       .scan_pool("http.sys", env->guests());
  expect_same_verdicts(report, seq);
}

// ---- CanonicalPool synthetic eligibility corners -------------------------------

ParsedModule synth_module(vmm::DomainId dom, std::uint32_t base,
                          Bytes text_bytes) {
  ParsedModule m;
  m.domain = dom;
  m.name = "synth.sys";
  m.base = base;
  core::IntegrityItem header;
  header.kind = core::ItemKind::kDosHeader;
  header.name = "IMAGE_DOS_HEADER";
  header.bytes = {0x4D, 0x5A, 0x00, 0x01};
  header.rva_sensitive = false;
  m.items.push_back(std::move(header));
  core::IntegrityItem text;
  text.kind = core::ItemKind::kSectionData;
  text.name = ".text";
  text.bytes = std::move(text_bytes);
  text.rva_sensitive = true;
  m.items.push_back(std::move(text));
  return m;
}

/// 16 bytes of "code" with one absolute-address operand at offset 4
/// pointing at RVA `rva` for a module loaded at `base`.
Bytes text_with_reloc(std::uint32_t base, std::uint32_t rva) {
  Bytes b = {0x55, 0x8B, 0xEC, 0xA1, 0, 0, 0, 0,
             0x90, 0x90, 0x90, 0x90, 0xC3, 0xCC, 0xCC, 0xCC};
  store_le32(b, 4, base + rva);
  return b;
}

TEST(CanonicalPoolUnit, HonestRelocationsShareOneCanonical) {
  const auto ref = synth_module(1, 0x00010000, text_with_reloc(0x00010000, 0x42));
  const auto same = synth_module(2, 0x00010000, text_with_reloc(0x00010000, 0x42));
  const auto moved = synth_module(3, 0x00230000, text_with_reloc(0x00230000, 0x42));
  const auto moved2 = synth_module(4, 0x00570000, text_with_reloc(0x00570000, 0x42));

  CanonicalPool pool(crypto::HashAlgorithm::kMd5, vmi::HostCostModel{});
  SimClock clock;
  pool.add(ref, clock);
  pool.add(same, clock);
  pool.add(moved, clock);
  pool.add(moved2, clock);
  pool.finalize(clock);

  EXPECT_TRUE(pool.eligible(1));
  EXPECT_TRUE(pool.eligible(2));
  EXPECT_TRUE(pool.eligible(3));
  EXPECT_TRUE(pool.eligible(4));
  EXPECT_EQ(pool.stats().canonicals_established, 1u);
  // All four reduce to the same digest vector — including the same-base
  // copy, whose digest must be the *canonical* one, not the raw one.
  EXPECT_EQ(pool.digests(1), pool.digests(2));
  EXPECT_EQ(pool.digests(1), pool.digests(3));
  EXPECT_EQ(pool.digests(1), pool.digests(4));
  EXPECT_GT(clock.now(), 0u);
}

TEST(CanonicalPoolUnit, SameBaseContentDivergenceIsIneligible) {
  const auto ref = synth_module(1, 0x00010000, text_with_reloc(0x00010000, 0x42));
  auto evil_bytes = text_with_reloc(0x00010000, 0x42);
  evil_bytes[9] ^= 0xFF;  // same base, one patched byte
  const auto evil = synth_module(2, 0x00010000, std::move(evil_bytes));

  CanonicalPool pool(crypto::HashAlgorithm::kMd5, vmi::HostCostModel{});
  SimClock clock;
  pool.add(ref, clock);
  pool.add(evil, clock);
  pool.finalize(clock);
  EXPECT_TRUE(pool.eligible(1));
  EXPECT_FALSE(pool.eligible(2));
}

TEST(CanonicalPoolUnit, UnresolvedDiffIsIneligible) {
  const auto ref = synth_module(1, 0x00010000, text_with_reloc(0x00010000, 0x42));
  // Differing base, but the operand decodes to a different RVA: Algorithm 2
  // must refuse to normalize it (rva1 != rva2).
  const auto evil =
      synth_module(2, 0x00230000, text_with_reloc(0x00230000, 0x1099));

  CanonicalPool pool(crypto::HashAlgorithm::kMd5, vmi::HostCostModel{});
  SimClock clock;
  pool.add(ref, clock);
  pool.add(evil, clock);
  pool.finalize(clock);
  EXPECT_FALSE(pool.eligible(2));
}

TEST(CanonicalPoolUnit, DivergentCanonicalIsRejected) {
  // Two reloc sites A (offset 4) and B (offset 12).  Partner 2 relocates
  // only A (B matches the reference bytes), establishing canonical
  // "A->rva, B untouched".  Partner 3 relocates only B: it fully resolves
  // against the reference too, but to a *different* canonical — the pool
  // must refuse to treat 2 and 3 as equivalent (pairwise, 2 vs 3 would
  // mismatch).
  const std::uint32_t ref_base = 0x00010000;
  auto make_text = [&](std::uint32_t a_word, std::uint32_t b_word) {
    Bytes b(16, 0x90);
    store_le32(b, 4, a_word);
    store_le32(b, 12, b_word);
    return b;
  };
  const std::uint32_t rva_a = 0x111, rva_b = 0x222;
  const auto ref =
      synth_module(1, ref_base, make_text(ref_base + rva_a, ref_base + rva_b));
  const std::uint32_t base2 = 0x00230000;
  const auto m2 =
      synth_module(2, base2, make_text(base2 + rva_a, ref_base + rva_b));
  const std::uint32_t base3 = 0x00570000;
  const auto m3 =
      synth_module(3, base3, make_text(ref_base + rva_a, base3 + rva_b));

  CanonicalPool pool(crypto::HashAlgorithm::kMd5, vmi::HostCostModel{});
  SimClock clock;
  pool.add(ref, clock);
  pool.add(m2, clock);
  pool.add(m3, clock);
  pool.finalize(clock);
  EXPECT_TRUE(pool.eligible(2));   // established the canonical
  EXPECT_FALSE(pool.eligible(3));  // resolves, but to a different canonical
}

TEST(CanonicalPoolUnit, ShapeMismatchIsIneligible) {
  const auto ref = synth_module(1, 0x00010000, text_with_reloc(0x00010000, 0x42));
  auto odd = synth_module(2, 0x00230000, text_with_reloc(0x00230000, 0x42));
  odd.items[0].name = "IMAGE_DOS_HEADER_EX";  // renamed item
  CanonicalPool pool(crypto::HashAlgorithm::kMd5, vmi::HostCostModel{});
  SimClock clock;
  pool.add(ref, clock);
  pool.add(odd, clock);
  pool.finalize(clock);
  EXPECT_FALSE(pool.eligible(2));
  EXPECT_EQ(pool.stats().ineligible, 1u);
}

}  // namespace
