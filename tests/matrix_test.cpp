// Attack x pool-size detection matrix — the closing property suite: every
// attack in the toolkit is detected (or evades, per its contract) at every
// realistic pool size, and the report formatters surface the findings.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "attacks/dll_import_inject.hpp"
#include "attacks/eat_hook.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/hollowing.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "attacks/version_spoof.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report.hpp"

namespace {

using namespace mc;
using namespace mc::core;

struct MatrixCase {
  const char* attack_name;
  const char* module;
  std::size_t pool_size;
  std::function<std::unique_ptr<attacks::Attack>()> make;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << c.attack_name << "x" << c.pool_size;
}

class AttackMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(AttackMatrix, DetectedAtEveryPoolSize) {
  const MatrixCase& c = GetParam();
  cloud::CloudConfig cfg;
  cfg.guest_count = c.pool_size;
  cloud::CloudEnvironment env(cfg);

  const auto attack = c.make();
  const auto result = attack->apply(env, env.guests()[0], c.module);

  ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], c.module);

  if (result.detectable_by_modchecker) {
    EXPECT_FALSE(report.subject_clean) << format_report(report);
    EXPECT_EQ(report.successes, 0u);
    // Expected items all present.
    for (const auto& item : result.expected_flagged) {
      EXPECT_NE(std::find(report.flagged_items.begin(),
                          report.flagged_items.end(), item),
                report.flagged_items.end())
          << item;
    }
    // Formatter surfaces the verdict and the items.
    const std::string text = format_report(report);
    EXPECT_NE(text.find("FLAGGED"), std::string::npos);
    for (const auto& item : result.expected_flagged) {
      EXPECT_NE(text.find(item), std::string::npos) << item;
    }
  } else {
    EXPECT_TRUE(report.subject_clean);
  }
}

std::vector<MatrixCase> all_cases() {
  struct AttackSpec {
    const char* name;
    const char* module;
    std::function<std::unique_ptr<attacks::Attack>()> make;
  };
  const std::vector<AttackSpec> attack_specs = {
      {"opcode", "hal.dll",
       [] { return std::make_unique<attacks::OpcodeReplaceAttack>(); }},
      {"inlinehook", "hal.dll",
       [] { return std::make_unique<attacks::InlineHookAttack>(); }},
      {"stub", "dummy.sys",
       [] { return std::make_unique<attacks::StubPatchAttack>(); }},
      {"dllinject", "dummy.sys",
       [] { return std::make_unique<attacks::DllImportInjectAttack>(); }},
      {"headertamper", "ntfs.sys",
       [] { return std::make_unique<attacks::HeaderTamperAttack>(); }},
      {"iathook", "http.sys",
       [] { return std::make_unique<attacks::IatHookAttack>(); }},
      {"eathook", "hal.dll",
       [] { return std::make_unique<attacks::EatHookAttack>(); }},
      {"versionspoof", "tcpip.sys",
       [] { return std::make_unique<attacks::VersionSpoofAttack>(); }},
      {"hollowing", "ntfs.sys",
       [] { return std::make_unique<attacks::HollowingAttack>(); }},
  };
  std::vector<MatrixCase> cases;
  for (const auto& spec : attack_specs) {
    // 4 VMs is the smallest pool where a clean peer majority is robust
    // (see the A4 boundary analysis); 15 is the paper's testbed.
    for (const std::size_t pool : {std::size_t{4}, std::size_t{8},
                                   std::size_t{15}}) {
      cases.push_back({spec.name, spec.module, pool, spec.make});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(info.param.attack_name) + "_" +
         std::to_string(info.param.pool_size);
}

INSTANTIATE_TEST_SUITE_P(AllAttacksAllSizes, AttackMatrix,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---- report formatting -------------------------------------------------------------
TEST(ReportFormat, CleanReportShape) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cloud::CloudEnvironment env(cfg);
  ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "hal.dll");
  const std::string text = format_report(report);
  EXPECT_NE(text.find("verdict: CLEAN"), std::string::npos);
  EXPECT_NE(text.find("matches 2/2"), std::string::npos);
  EXPECT_NE(text.find("searcher="), std::string::npos);
  EXPECT_NE(text.find("vs Dom2: match"), std::string::npos);
}

TEST(ReportFormat, PoolReportShape) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 4;
  cloud::CloudEnvironment env(cfg);
  attacks::InlineHookAttack{}.apply(env, env.guests()[2], "hal.dll");
  ModChecker checker(env.hypervisor());
  const std::string text =
      format_pool_report(checker.scan_pool("hal.dll", env.guests()));
  EXPECT_NE(text.find("Dom3: FLAGGED"), std::string::npos);
  EXPECT_NE(text.find("Dom1: clean"), std::string::npos);
}

TEST(ReportFormat, MissingModulesListed) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cloud::CloudEnvironment env(cfg);
  env.loader(env.guests()[0])
      .load("inject.dll", env.golden().file("inject.dll"));
  env.loader(env.guests()[1])
      .load("inject.dll", env.golden().file("inject.dll"));
  ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "inject.dll");
  const std::string text = format_report(report);
  EXPECT_NE(text.find("module missing on: Dom3"), std::string::npos);
}

}  // namespace
