// Robustness fuzzing: randomly corrupted module images must never crash
// the parser, validator or checker — every malformed input either parses
// or raises mc::FormatError (no UB, no other exception types, no hangs).
//
// This is the adversarial contract of an introspection tool: the guest is
// untrusted, so anything read from it may be hostile.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/catalog.hpp"
#include "cloud/golden.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/validate.hpp"
#include "util/rng.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;

const Bytes& golden_file() {
  static const cloud::GoldenImages golden(cloud::default_catalog());
  return golden.file("tcpip.sys");
}

/// Applies `n` random byte mutations.
Bytes mutate(ByteView original, std::uint64_t seed, int n) {
  Xoshiro256 rng(seed);
  Bytes out(original.begin(), original.end());
  for (int i = 0; i < n; ++i) {
    const auto pos = rng.below(out.size());
    out[pos] = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, ValidatorNeverCrashes) {
  for (const int mutations : {1, 4, 16, 64, 256}) {
    const Bytes file = mutate(golden_file(), GetParam() * 131 + 7,
                              mutations);
    // Must return a report or throw FormatError — nothing else.
    try {
      const auto report = pe::validate_image_file(file);
      (void)report.ok();
    } catch (const FormatError&) {
    }
  }
}

TEST_P(FuzzSeeds, MapperAndParserNeverCrash) {
  for (const int mutations : {1, 8, 64}) {
    const Bytes file = mutate(golden_file(), GetParam() * 977 + 3,
                              mutations);
    try {
      const Bytes mapped = pe::map_image(file);
      const pe::ParsedImage parsed(mapped);
      const auto items = parsed.extract_items(mapped);
      (void)items.size();
    } catch (const FormatError&) {
    } catch (const InvalidArgument&) {
      // Bounds guards in byte helpers may fire first on wild offsets.
    }
  }
}

TEST_P(FuzzSeeds, HeaderCorruptionInGuestNeverCrashesChecker) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cloud::CloudEnvironment env(cfg);
  Xoshiro256 rng(GetParam());

  // Corrupt 8 random bytes of the headers region of a loaded module.
  for (int i = 0; i < 8; ++i) {
    const auto rva = static_cast<std::uint32_t>(rng.below(0x400));
    const auto mask = static_cast<std::uint8_t>(rng.range(1, 255));
    attacks::BytePatchAttack(rva, mask).apply(env, env.guests()[0],
                                              "tcpip.sys");
  }

  core::ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "tcpip.sys");
  // Whatever the corruption did, it must be *flagged*, not ignored and
  // not fatal.
  EXPECT_FALSE(report.subject_clean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 16));

// ---- randomized fault profiles x the paper's attacks --------------------------
//
// Detection must survive an unreliable cloud: whatever transient faults
// the guests throw, an infected VM that still answers its acquire is
// flagged whenever the vote has quorum behind it — faults may erode the
// electorate, never the verdict of the voters that remain.

struct FaultyAttackCase {
  const char* module;
  int attack;  // 0..3 = E1..E4
};

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, InfectedAnsweringVmsAreFlaggedWheneverQuorumHolds) {
  Xoshiro256 rng(GetParam() * 6151 + 11);
  static const FaultyAttackCase kCases[] = {
      {"hal.dll", 0}, {"hal.dll", 1}, {"dummy.sys", 2}, {"dummy.sys", 3}};
  const FaultyAttackCase& c = kCases[rng.below(4)];

  cloud::CloudConfig cfg;
  cfg.guest_count = 6;
  cloud::CloudEnvironment env(cfg);
  const auto& guests = env.guests();
  const vmm::DomainId victim = guests[rng.below(guests.size())];

  switch (c.attack) {
    case 0: attacks::OpcodeReplaceAttack{}.apply(env, victim, c.module); break;
    case 1: attacks::InlineHookAttack{}.apply(env, victim, c.module); break;
    case 2: attacks::StubPatchAttack{}.apply(env, victim, c.module); break;
    default: attacks::DllImportInjectAttack{}.apply(env, victim, c.module);
  }

  // Random fault weather: each guest independently gets a random (possibly
  // zero) read-fault rate with its own RNG stream.
  static const double kRates[] = {0.0, 0.002, 0.005, 0.01};
  for (const vmm::DomainId vm : guests) {
    vmm::FaultProfile profile;
    profile.read_fault_rate = kRates[rng.below(4)];
    profile.seed = rng.next();
    env.hypervisor().fault_injector().arm(vm, profile);
  }

  core::ModChecker checker(env.hypervisor());
  const auto scan = checker.scan_pool(c.module, guests);
  ASSERT_EQ(scan.verdicts.size(), guests.size());
  for (const auto& v : scan.verdicts) {
    if (v.quarantined || v.quorum_lost) {
      continue;  // no (trustworthy) verdict to hold to account
    }
    EXPECT_EQ(v.clean, v.vm != victim)
        << "Dom" << v.vm << " module " << c.module << " attack E"
        << (c.attack + 1) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(FaultWeather, FaultFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(FuzzTruncation, EveryPrefixLengthIsHandled) {
  const Bytes& file = golden_file();
  // Sweep a logarithmic set of truncation points.
  for (std::size_t len = 1; len < file.size(); len = len * 2 + 13) {
    const Bytes prefix(file.begin(),
                       file.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)pe::map_image(prefix);
    } catch (const FormatError&) {
    } catch (const InvalidArgument&) {
    }
    try {
      (void)pe::validate_image_file(prefix);
    } catch (const FormatError&) {
    }
  }
}

}  // namespace
