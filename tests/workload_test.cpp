// Tests for the workload layer: HeavyLoad and the in-guest resource
// monitor / perturbation analysis behind Fig. 9.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/environment.hpp"
#include "workload/heavyload.hpp"
#include "workload/monitor.hpp"

namespace {

using namespace mc;
using namespace mc::workload;

// ---- HeavyLoad --------------------------------------------------------------------
TEST(HeavyLoadTest, StressesRequestedGuests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 5;
  cloud::CloudEnvironment env(cfg);
  HeavyLoad heavyload(env);

  heavyload.stress_guests(3);
  EXPECT_DOUBLE_EQ(heavyload.total_load(), 3.0);
  EXPECT_DOUBLE_EQ(env.hypervisor().domain(env.guests()[0]).load_level(), 1.0);
  EXPECT_DOUBLE_EQ(env.hypervisor().domain(env.guests()[4]).load_level(), 0.0);

  heavyload.stress_guests(5, 0.5);
  EXPECT_DOUBLE_EQ(heavyload.total_load(), 2.5);

  heavyload.stop_all();
  EXPECT_DOUBLE_EQ(heavyload.total_load(), 0.0);
}

TEST(HeavyLoadTest, RejectsOverCount) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 2;
  cloud::CloudEnvironment env(cfg);
  HeavyLoad heavyload(env);
  EXPECT_THROW(heavyload.stress_guests(3), InvalidArgument);
}

// ---- ResourceMonitor ----------------------------------------------------------------
MonitorConfig idle_config(std::uint64_t seed = 1) {
  MonitorConfig cfg;
  cfg.seed = seed;
  cfg.load_level = 0.0;
  return cfg;
}

TEST(Monitor, SampleCountMatchesDurationAndRate) {
  ResourceMonitor monitor(idle_config());
  EXPECT_EQ(monitor.record(120.0, {}).size(), 120u);

  MonitorConfig cfg = idle_config();
  cfg.sample_hz = 4.0;
  EXPECT_EQ(ResourceMonitor(cfg).record(30.0, {}).size(), 120u);
}

TEST(Monitor, WindowsAreMarked) {
  ResourceMonitor monitor(idle_config());
  const auto samples = monitor.record(60.0, {{10, 20}, {40, 45}});
  std::size_t marked = 0;
  for (const auto& s : samples) {
    if (s.in_access_window) {
      ++marked;
      EXPECT_TRUE((s.t >= 10 && s.t < 20) || (s.t >= 40 && s.t < 45));
    }
  }
  EXPECT_EQ(marked, 15u);
}

TEST(Monitor, DeterministicBySeed) {
  const auto a = ResourceMonitor(idle_config(5)).record(60.0, {});
  const auto b = ResourceMonitor(idle_config(5)).record(60.0, {});
  const auto c = ResourceMonitor(idle_config(6)).record(60.0, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cpu_idle_pct, b[i].cpu_idle_pct);
  }
  EXPECT_NE(a[10].cpu_idle_pct, c[10].cpu_idle_pct);
}

TEST(Monitor, IdleGuestLooksIdle) {
  const auto samples = ResourceMonitor(idle_config()).record(300.0, {});
  double idle_sum = 0;
  for (const auto& s : samples) {
    idle_sum += s.cpu_idle_pct;
    EXPECT_GE(s.cpu_idle_pct, 0.0);
    EXPECT_LE(s.cpu_idle_pct, 100.0);
    EXPECT_GE(s.page_faults_per_s, 0.0);
  }
  EXPECT_GT(idle_sum / static_cast<double>(samples.size()), 90.0);
}

TEST(Monitor, LoadedGuestLooksLoaded) {
  MonitorConfig cfg = idle_config();
  cfg.load_level = 1.0;
  const auto samples = ResourceMonitor(cfg).record(300.0, {});
  double idle_sum = 0;
  double faults_sum = 0;
  for (const auto& s : samples) {
    idle_sum += s.cpu_idle_pct;
    faults_sum += s.page_faults_per_s;
  }
  EXPECT_LT(idle_sum / static_cast<double>(samples.size()), 20.0);
  EXPECT_GT(faults_sum / static_cast<double>(samples.size()), 300.0);
}

// ---- perturbation analysis ------------------------------------------------------------
TEST(Analysis, NoEffectMeansNoSignificance) {
  MonitorConfig cfg = idle_config(9);
  cfg.access_effect_pct = 0.0;  // literally zero guest-visible effect
  const auto samples =
      ResourceMonitor(cfg).record(600.0, {{60, 120}, {300, 360}});
  const auto stats = analyze_metric(samples, [](const ResourceSample& s) {
    return s.cpu_privileged_pct;
  });
  EXPECT_GT(stats.n_in, 0u);
  EXPECT_GT(stats.n_out, 0u);
  EXPECT_FALSE(stats.significant());
}

TEST(Analysis, LargeForcedEffectIsDetected) {
  // Sanity: the statistic is actually capable of detecting a real
  // perturbation (an in-guest agent, say, costing 3 CPU points).
  MonitorConfig cfg = idle_config(10);
  cfg.access_effect_pct = 3.0;
  const auto samples =
      ResourceMonitor(cfg).record(600.0, {{60, 180}, {300, 420}});
  const auto stats = analyze_metric(samples, [](const ResourceSample& s) {
    return s.cpu_privileged_pct;
  });
  EXPECT_TRUE(stats.significant());
  EXPECT_GT(stats.mean_in, stats.mean_out);
}

TEST(Analysis, DefaultAgentlessEffectStaysBelowNoise) {
  // The Fig. 9 reproduction: the default (realistic, tiny) effect must not
  // reach significance on any metric.
  const auto samples = ResourceMonitor(idle_config(7))
                           .record(240.0, {{30, 50}, {90, 110}, {150, 170},
                                           {210, 230}});
  const auto metrics = {
      +[](const ResourceSample& s) { return s.cpu_idle_pct; },
      +[](const ResourceSample& s) { return s.cpu_user_pct; },
      +[](const ResourceSample& s) { return s.cpu_privileged_pct; },
      +[](const ResourceSample& s) { return s.mem_free_pct; },
      +[](const ResourceSample& s) { return s.page_faults_per_s; },
  };
  for (const auto metric : metrics) {
    EXPECT_FALSE(analyze_metric(samples, metric).significant());
  }
}

TEST(Analysis, HandlesDegenerateWindowSets) {
  const auto samples = ResourceMonitor(idle_config()).record(60.0, {});
  const auto stats = analyze_metric(
      samples, [](const ResourceSample& s) { return s.cpu_idle_pct; });
  EXPECT_EQ(stats.n_in, 0u);
  EXPECT_FALSE(stats.significant());
}

TEST(Analysis, AutocorrelationIsMeasured) {
  const auto samples = ResourceMonitor(idle_config(3)).record(300.0, {{10, 60}});
  const auto stats = analyze_metric(
      samples, [](const ResourceSample& s) { return s.cpu_user_pct; });
  // The AR(1) generator uses rho=0.7; the estimate should land nearby.
  EXPECT_GT(stats.lag1_autocorr, 0.3);
  EXPECT_LT(stats.lag1_autocorr, 0.95);
}

}  // namespace
