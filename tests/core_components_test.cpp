// Unit tests for the ModChecker pipeline components: Module-Searcher,
// Module-Parser, Integrity-Checker (paper Fig. 1).
#include <gtest/gtest.h>

#include <memory>

#include "cloud/environment.hpp"
#include "modchecker/checker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;
using namespace mc::core;

class CoreComponentsTest : public ::testing::Test {
 protected:
  CoreComponentsTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 3;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  vmi::VmiSession session(std::size_t guest_index) {
    return vmi::VmiSession(env_->hypervisor(),
                           env_->guests()[guest_index], clock_);
  }

  std::unique_ptr<cloud::CloudEnvironment> env_;
  SimClock clock_;
};

// ---- Module-Searcher -------------------------------------------------------------
TEST_F(CoreComponentsTest, ListModulesMatchesLoaderState) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  const auto modules = searcher.list_modules();
  const auto& expected = env_->loader(env_->guests()[0]).loaded();
  ASSERT_EQ(modules.size(), expected.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    EXPECT_EQ(modules[i].name, expected[i].name);
    EXPECT_EQ(modules[i].base, expected[i].base);
    EXPECT_EQ(modules[i].size_of_image, expected[i].size_of_image);
    EXPECT_EQ(modules[i].entry_point, expected[i].entry_point);
  }
}

TEST_F(CoreComponentsTest, FindModuleIsCaseInsensitive) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  const auto found = searcher.find_module("HTTP.SYS");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->name, "http.sys");
}

TEST_F(CoreComponentsTest, FindMissingModuleReturnsNothing) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  EXPECT_FALSE(searcher.find_module("rootkit.sys").has_value());
  EXPECT_FALSE(searcher.extract_module("rootkit.sys").has_value());
}

TEST_F(CoreComponentsTest, ExtractCopiesWholeImage) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  const auto image = searcher.extract_module("hal.dll");
  ASSERT_TRUE(image.has_value());

  const auto* rec = env_->loader(env_->guests()[0]).find("hal.dll");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(image->base, rec->base);
  EXPECT_EQ(image->bytes.size(), rec->size_of_image);
  EXPECT_EQ(image->domain, env_->guests()[0]);

  Bytes direct(rec->size_of_image, 0);
  env_->kernel(env_->guests()[0])
      .address_space()
      .read_virtual(rec->base, direct);
  EXPECT_EQ(image->bytes, direct);
}

TEST_F(CoreComponentsTest, SearchStopsEarlyOnMatch) {
  // Searching the first module must read fewer pages than searching the
  // last one (the paper's searcher walks FLINK until the name matches).
  SimClock c1;
  {
    vmi::VmiSession s(env_->hypervisor(), env_->guests()[0], c1);
    ModuleSearcher(s).find_module("ntoskrnl.exe");
  }
  SimClock c2;
  {
    vmi::VmiSession s(env_->hypervisor(), env_->guests()[0], c2);
    ModuleSearcher(s).find_module("dummy.sys");
  }
  EXPECT_LT(c1.now(), c2.now());
}

// ---- Module-Parser ----------------------------------------------------------------
TEST_F(CoreComponentsTest, ParserProducesItemsAndChargesTime) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  const auto image = searcher.extract_module("http.sys");
  ASSERT_TRUE(image.has_value());

  SimClock parse_clock;
  const ModuleParser parser;
  const ParsedModule parsed = parser.parse(*image, parse_clock);
  EXPECT_EQ(parsed.name, "http.sys");
  EXPECT_EQ(parsed.base, image->base);
  EXPECT_EQ(parsed.domain, image->domain);
  EXPECT_GT(parsed.items.size(), 6u);
  EXPECT_GT(parse_clock.now(), 0u);
}

TEST_F(CoreComponentsTest, ParserRejectsCorruptImage) {
  auto s = session(0);
  ModuleSearcher searcher(s);
  auto image = searcher.extract_module("dummy.sys");
  ASSERT_TRUE(image.has_value());
  image->bytes[0] = 'X';  // destroy MZ magic

  SimClock parse_clock;
  const ModuleParser parser;
  EXPECT_THROW(parser.parse(*image, parse_clock), FormatError);
}

// ---- Integrity-Checker ---------------------------------------------------------------
TEST_F(CoreComponentsTest, CrossVmComparisonMatchesDespiteDifferentBases) {
  const ModuleParser parser;
  SimClock pc;

  auto s0 = session(0);
  auto s1 = session(1);
  const auto img0 = ModuleSearcher(s0).extract_module("http.sys");
  const auto img1 = ModuleSearcher(s1).extract_module("http.sys");
  ASSERT_TRUE(img0 && img1);
  ASSERT_NE(img0->base, img1->base);  // relocation really happened

  const ParsedModule p0 = parser.parse(*img0, pc);
  const ParsedModule p1 = parser.parse(*img1, pc);

  // Raw .text bytes differ before adjustment...
  const auto* text0 = &p0.items.back();
  for (const auto& item : p0.items) {
    if (item.name == ".text") {
      text0 = &item;
    }
  }
  const core::IntegrityItem* text1 = nullptr;
  for (const auto& item : p1.items) {
    if (item.name == ".text") {
      text1 = &item;
    }
  }
  ASSERT_NE(text1, nullptr);
  EXPECT_NE(text0->bytes, text1->bytes);

  // ...but the checker normalizes and every item matches.
  const IntegrityChecker checker;
  SimClock cc;
  const PairComparison cmp = checker.compare(p0, p1, cc);
  EXPECT_TRUE(cmp.all_match);
  for (const auto& item : cmp.items) {
    EXPECT_TRUE(item.match) << item.item_name;
    if (item.item_name == ".text") {
      EXPECT_GT(item.rvas_adjusted, 0u);
      EXPECT_EQ(item.unresolved_diffs, 0u);
    }
  }
  EXPECT_GT(cc.now(), 0u);
}

TEST_F(CoreComponentsTest, CompareDoesNotMutateInputs) {
  const ModuleParser parser;
  SimClock pc;
  auto s0 = session(0);
  auto s1 = session(1);
  const ParsedModule p0 =
      parser.parse(*ModuleSearcher(s0).extract_module("hal.dll"), pc);
  const ParsedModule p1 =
      parser.parse(*ModuleSearcher(s1).extract_module("hal.dll"), pc);

  const Bytes before0 = p0.items.back().bytes;
  const IntegrityChecker checker;
  SimClock cc;
  checker.compare(p0, p1, cc);
  EXPECT_EQ(p0.items.back().bytes, before0);

  // Repeat comparison must yield the same result (pristine copies).
  const auto again = checker.compare(p0, p1, cc);
  EXPECT_TRUE(again.all_match);
}

TEST_F(CoreComponentsTest, StructuralDivergenceFlagsUnmatchedItems) {
  const ModuleParser parser;
  SimClock pc;
  auto s0 = session(0);
  auto s1 = session(1);
  ParsedModule p0 =
      parser.parse(*ModuleSearcher(s0).extract_module("hal.dll"), pc);
  ParsedModule p1 =
      parser.parse(*ModuleSearcher(s1).extract_module("hal.dll"), pc);

  // Simulate an attacker-added section on the subject.
  core::IntegrityItem extra;
  extra.kind = core::ItemKind::kSectionData;
  extra.name = ".evil";
  extra.bytes = {1, 2, 3};
  p0.items.push_back(extra);

  const IntegrityChecker checker;
  SimClock cc;
  const auto cmp = checker.compare(p0, p1, cc);
  EXPECT_FALSE(cmp.all_match);
  bool evil_flagged = false;
  for (const auto& item : cmp.items) {
    if (item.item_name == ".evil") {
      EXPECT_FALSE(item.match);
      evil_flagged = true;
    }
  }
  EXPECT_TRUE(evil_flagged);
}

TEST_F(CoreComponentsTest, AlgorithmChoiceChangesDigestWidth) {
  const ModuleParser parser;
  SimClock pc;
  auto s0 = session(0);
  auto s1 = session(1);
  const ParsedModule p0 =
      parser.parse(*ModuleSearcher(s0).extract_module("dummy.sys"), pc);
  const ParsedModule p1 =
      parser.parse(*ModuleSearcher(s1).extract_module("dummy.sys"), pc);

  SimClock cc;
  const auto md5_cmp = IntegrityChecker(crypto::HashAlgorithm::kMd5)
                           .compare(p0, p1, cc);
  const auto sha_cmp = IntegrityChecker(crypto::HashAlgorithm::kSha256)
                           .compare(p0, p1, cc);
  EXPECT_EQ(md5_cmp.items[0].digest_subject.size(), 16u);
  EXPECT_EQ(sha_cmp.items[0].digest_subject.size(), 32u);
  EXPECT_TRUE(md5_cmp.all_match);
  EXPECT_TRUE(sha_cmp.all_match);
}

}  // namespace
