// Tests for pool-wide module-list comparison, JSON report serialization,
// and RVA-adjustment cross-validation against relocation metadata.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/dkom_hide.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report_json.hpp"
#include "modchecker/rva_adjust.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/reloc.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- module-list comparison --------------------------------------------------
TEST(ListCompare, CleanPoolIsConsistent) {
  auto env = make_env(5);
  ModChecker checker(env->hypervisor());
  const auto report = checker.compare_module_lists(env->guests());
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.modules_seen, env->config().load_order.size());
  EXPECT_GT(report.wall_time, 0u);
}

TEST(ListCompare, DkomHiddenModuleLocalized) {
  auto env = make_env(5);
  attacks::DkomHideAttack{}.apply(*env, env->guests()[2], "ntfs.sys");

  ModChecker checker(env->hypervisor());
  const auto report = checker.compare_module_lists(env->guests());
  ASSERT_EQ(report.discrepancies.size(), 1u);
  const auto& d = report.discrepancies[0];
  EXPECT_EQ(d.module_name, "ntfs.sys");
  ASSERT_EQ(d.missing_on.size(), 1u);
  EXPECT_EQ(d.missing_on[0], env->guests()[2]);
  EXPECT_EQ(d.present_on.size(), 4u);
}

TEST(ListCompare, ExtraModuleOnOneVmIsADiscrepancy) {
  auto env = make_env(4);
  env->loader(env->guests()[1])
      .load("inject.dll", env->golden().file("inject.dll"));

  ModChecker checker(env->hypervisor());
  const auto report = checker.compare_module_lists(env->guests());
  ASSERT_EQ(report.discrepancies.size(), 1u);
  EXPECT_EQ(report.discrepancies[0].module_name, "inject.dll");
  EXPECT_EQ(report.discrepancies[0].present_on,
            std::vector<vmm::DomainId>{env->guests()[1]});
}

// ---- JSON serialization ---------------------------------------------------------
TEST(Json, CheckReportSchema) {
  auto env = make_env(3);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"module\":\"hal.dll\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"flagged_items\":[\".text\"]"), std::string::npos);
  EXPECT_NE(json.find("\"digest_subject\":\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Json, PoolAndAuditSchemas) {
  auto env = make_env(3);
  ModChecker checker(env->hypervisor());
  const std::string pool_json =
      to_json(checker.scan_pool("hal.dll", env->guests()));
  EXPECT_NE(pool_json.find("\"verdicts\":[{\"vm\":1,\"clean\":true"),
            std::string::npos);

  const auto audit =
      audit_modules(env->hypervisor(), {"hal.dll"}, env->guests());
  const std::string audit_json = to_json(audit);
  EXPECT_NE(audit_json.find("\"findings\":[]"), std::string::npos);
  EXPECT_NE(audit_json.find("\"total_wall_ns\":"), std::string::npos);
}

TEST(Json, EscapingControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ---- Algorithm 2 cross-validation against relocation metadata ---------------------
// For clean module pairs, the metadata-free diff recovery must produce
// byte-for-byte the same normalized .text as subtracting the base using
// the image's own .reloc records — two independent implementations
// agreeing on every module in the catalog.
TEST(RvaCrossValidation, DiffRecoveryMatchesRelocMetadata) {
  auto env = make_env(2);
  for (const auto& module : env->config().load_order) {
    const auto* m0 = env->loader(env->guests()[0]).find(module);
    const auto* m1 = env->loader(env->guests()[1]).find(module);
    ASSERT_NE(m0, nullptr);
    ASSERT_NE(m1, nullptr);

    // In-memory .text from both VMs.
    auto read_text = [&](vmm::DomainId vm, const guestos::LoadedModule& m,
                         std::uint32_t* rva_out, std::uint32_t* len_out) {
      Bytes image(m.size_of_image, 0);
      env->kernel(vm).address_space().read_virtual(m.base, image);
      const pe::ParsedImage parsed(image);
      const auto* text = parsed.find_section(".text");
      *rva_out = text->VirtualAddress;
      *len_out = text->VirtualSize;
      return slice(image, text->VirtualAddress, text->VirtualSize);
    };
    std::uint32_t text_rva = 0;
    std::uint32_t text_len = 0;
    Bytes a = read_text(env->guests()[0], *m0, &text_rva, &text_len);
    Bytes b = read_text(env->guests()[1], *m1, &text_rva, &text_len);

    // Path 1: Algorithm 2 (metadata-free).
    Bytes a1 = a;
    Bytes b1 = b;
    const auto adj = adjust_rvas(a1, m0->base, b1, m1->base);
    ASSERT_EQ(adj.unresolved_diffs, 0u) << module;
    ASSERT_EQ(a1, b1) << module;

    // Path 2: subtract each VM's base at the .reloc-recorded fixups that
    // fall inside .text.
    const Bytes mapped = pe::map_image(env->golden().file(module));
    const pe::ParsedImage parsed(mapped);
    const auto& dir =
        parsed.optional_header().DataDirectories[pe::kDirBaseReloc];
    const auto fixups = pe::parse_base_relocations(
        slice(mapped, dir.VirtualAddress, dir.Size));
    Bytes a2 = a;
    for (const auto rva : fixups) {
      if (rva >= text_rva && rva + 4 <= text_rva + text_len) {
        store_le32(a2, rva - text_rva, load_le32(a2, rva - text_rva) -
                                           m0->base);
      }
    }
    EXPECT_EQ(a1, a2) << module
                      << ": Algorithm 2 disagrees with reloc metadata";
  }
}

}  // namespace
