// Unit tests for the attack layer: each infection technique must make
// exactly the byte-level changes it claims, and nothing else.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/guest_writer.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "pe/imports.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "x86/decoder.hpp"

namespace {

using namespace mc;
using namespace mc::attacks;

class AttacksTest : public ::testing::Test {
 protected:
  AttacksTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 3;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  vmm::DomainId victim() const { return env_->guests()[0]; }

  std::unique_ptr<cloud::CloudEnvironment> env_;
};

// ---- GuestMemoryWriter ---------------------------------------------------------
TEST_F(AttacksTest, WriterRoundTrip) {
  GuestMemoryWriter writer(*env_, victim());
  std::uint32_t base = 0;
  writer.read_module_image("hal.dll", &base);
  const Bytes payload = {0xDE, 0xAD};
  writer.write(base + 0x100, payload);
  EXPECT_EQ(writer.read(base + 0x100, 2), payload);
}

TEST_F(AttacksTest, WriterRejectsUnknownModule) {
  GuestMemoryWriter writer(*env_, victim());
  EXPECT_THROW(writer.read_module_image("ghost.sys"), NotFoundError);
}

// ---- E1: opcode replacement ------------------------------------------------------
TEST_F(AttacksTest, OpcodeReplaceOnlyTouchesTextRawData) {
  const Bytes& clean = env_->golden().file("hal.dll");
  const Bytes infected = OpcodeReplaceAttack::infect_file(clean);
  ASSERT_EQ(infected.size(), clean.size());

  // Locate .text raw range.
  const pe::DosHeader dos = pe::DosHeader::parse(clean);
  const pe::FileHeader fh = pe::FileHeader::parse(clean, dos.e_lfanew + 4);
  std::size_t off = dos.e_lfanew + pe::kNtHeadersPrefixSize +
                    fh.SizeOfOptionalHeader;
  pe::SectionHeader text;
  for (std::uint16_t i = 0; i < fh.NumberOfSections; ++i) {
    const auto sh = pe::SectionHeader::parse(clean, off);
    if (sh.name() == ".text") {
      text = sh;
    }
    off += pe::kSectionHeaderSize;
  }

  std::size_t first_diff = clean.size();
  std::size_t last_diff = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != infected[i]) {
      first_diff = std::min(first_diff, i);
      last_diff = std::max(last_diff, i);
    }
  }
  ASSERT_LT(first_diff, clean.size()) << "attack was a no-op";
  EXPECT_GE(first_diff, text.PointerToRawData);
  EXPECT_LT(last_diff, text.PointerToRawData + text.SizeOfRawData);
}

TEST_F(AttacksTest, OpcodeReplaceInsertsSubEcx) {
  const Bytes& clean = env_->golden().file("hal.dll");
  const Bytes infected = OpcodeReplaceAttack::infect_file(clean);
  // First differing byte: 0x49 became 0x83 0xE9 0x01.
  std::size_t i = 0;
  while (clean[i] == infected[i]) {
    ++i;
  }
  EXPECT_EQ(clean[i], 0x49);
  EXPECT_EQ(infected[i], 0x83);
  EXPECT_EQ(infected[i + 1], 0xE9);
  EXPECT_EQ(infected[i + 2], 0x01);
  // The remainder shifted by two: infected[i+3] == clean[i+1].
  EXPECT_EQ(infected[i + 3], clean[i + 1]);
}

TEST_F(AttacksTest, OpcodeReplaceResultStillLoads) {
  const auto result =
      OpcodeReplaceAttack{}.apply(*env_, victim(), "hal.dll");
  EXPECT_TRUE(result.infects_disk_file);
  EXPECT_NE(env_->loader(victim()).find("hal.dll"), nullptr);
  // Disk copy now differs from the other VMs' disks.
  EXPECT_NE(env_->disk_file(victim(), "hal.dll"),
            env_->disk_file(env_->guests()[1], "hal.dll"));
}

// ---- E2: inline hooking ------------------------------------------------------------
TEST_F(AttacksTest, InlineHookPlacesJmpAtEntry) {
  GuestMemoryWriter writer(*env_, victim());
  std::uint32_t base = 0;
  const Bytes before = writer.read_module_image("hal.dll", &base);
  const pe::ParsedImage parsed(before);
  const std::uint32_t entry_rva =
      parsed.optional_header().AddressOfEntryPoint;

  InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const Bytes after = writer.read_module_image("hal.dll");

  EXPECT_EQ(after[entry_rva], 0xE9);  // jmp rel32

  // Jump target must land inside .text, in a former cave.
  const auto rel = static_cast<std::int32_t>(load_le32(after, entry_rva + 1));
  const std::uint32_t target =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(entry_rva) + 5 + rel);
  const auto* text = parsed.find_section(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_GE(target, text->VirtualAddress);
  EXPECT_LT(target, text->VirtualAddress + text->VirtualSize);
  // The cave there used to be zeros.
  EXPECT_EQ(before[target], 0x00);
  EXPECT_NE(after[target], 0x00);
}

TEST_F(AttacksTest, InlineHookChangesOnlyText) {
  GuestMemoryWriter writer(*env_, victim());
  const Bytes before = writer.read_module_image("hal.dll");
  InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const Bytes after = writer.read_module_image("hal.dll");

  const pe::ParsedImage parsed(before);
  const auto* text = parsed.find_section(".text");
  ASSERT_NE(text, nullptr);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      EXPECT_GE(i, text->VirtualAddress);
      EXPECT_LT(i, text->VirtualAddress + text->VirtualSize);
    }
  }
}

TEST_F(AttacksTest, InlineHookPayloadReplaysDisplacedBytes) {
  GuestMemoryWriter writer(*env_, victim());
  std::uint32_t base = 0;
  const Bytes before = writer.read_module_image("hal.dll", &base);
  const pe::ParsedImage parsed(before);
  const std::uint32_t entry_rva =
      parsed.optional_header().AddressOfEntryPoint;
  const auto covered = x86::cover_instructions(before, entry_rva, 5);
  ASSERT_TRUE(covered.has_value());

  InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const Bytes after = writer.read_module_image("hal.dll");

  // Find the payload via the hook target, skip the 4-byte malicious stub
  // (xor eax,eax; inc eax; inc eax), then the displaced originals follow.
  const auto rel = static_cast<std::int32_t>(load_le32(after, entry_rva + 1));
  const auto target = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(entry_rva) + 5 + rel);
  const std::size_t stub_len = 4;
  for (std::uint32_t i = 0; i < *covered; ++i) {
    EXPECT_EQ(after[target + stub_len + i], before[entry_rva + i])
        << "displaced byte " << i;
  }
}

// ---- E3: stub patch ------------------------------------------------------------------
TEST_F(AttacksTest, StubPatchChangesExactlyThreeBytes) {
  const Bytes& clean = env_->golden().file("dummy.sys");
  const Bytes infected = StubPatchAttack::infect_file(clean);
  ASSERT_EQ(infected.size(), clean.size());

  std::vector<std::size_t> diffs;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != infected[i]) {
      diffs.push_back(i);
    }
  }
  ASSERT_EQ(diffs.size(), 3u);
  EXPECT_EQ(diffs[2], diffs[0] + 2);  // contiguous
  EXPECT_EQ(infected[diffs[0]], 'C');
  EXPECT_EQ(infected[diffs[1]], 'H');
  EXPECT_EQ(infected[diffs[2]], 'K');
  // All inside the DOS header+stub region.
  const pe::DosHeader dos = pe::DosHeader::parse(clean);
  EXPECT_LT(diffs[2], dos.e_lfanew);
}

TEST_F(AttacksTest, StubPatchKeepsMessageReadable) {
  const Bytes infected =
      StubPatchAttack::infect_file(env_->golden().file("dummy.sys"));
  const std::string text(infected.begin(), infected.begin() + 0x100);
  EXPECT_NE(text.find("cannot be run in CHK mode"), std::string::npos);
}

// ---- E4: DLL import injection ----------------------------------------------------------
TEST_F(AttacksTest, DllInjectAddsSectionAndImport) {
  const Bytes& clean = env_->golden().file("dummy.sys");
  const Bytes infected = DllImportInjectAttack::infect_file(
      clean, "inject.dll", "callMessageBox");

  const Bytes mapped = pe::map_image(infected);
  const pe::ParsedImage parsed(mapped);
  const pe::ParsedImage clean_parsed(pe::map_image(clean));

  EXPECT_EQ(parsed.file_header().NumberOfSections,
            clean_parsed.file_header().NumberOfSections + 1);
  EXPECT_NE(parsed.find_section(".inj"), nullptr);
  EXPECT_GT(parsed.optional_header().SizeOfImage,
            clean_parsed.optional_header().SizeOfImage);
  EXPECT_NE(parsed.file_header().TimeDateStamp,
            clean_parsed.file_header().TimeDateStamp);

  // The import walk must now include the injected DLL *and* the original.
  const auto dlls = pe::parse_import_directory(
      mapped,
      parsed.optional_header().DataDirectories[pe::kDirImport].VirtualAddress);
  ASSERT_EQ(dlls.size(), 2u);
  EXPECT_EQ(dlls[0].dll_name, "hal.dll");  // original, original thunks
  EXPECT_EQ(dlls[1].dll_name, "inject.dll");
  EXPECT_EQ(dlls[1].function_names,
            std::vector<std::string>{"callMessageBox"});
}

TEST_F(AttacksTest, DllInjectGrowsTextVirtualSize) {
  const Bytes& clean = env_->golden().file("dummy.sys");
  const Bytes infected = DllImportInjectAttack::infect_file(
      clean, "inject.dll", "callMessageBox");
  const pe::ParsedImage a(pe::map_image(clean));
  const pe::ParsedImage b(pe::map_image(infected));
  EXPECT_EQ(b.find_section(".text")->VirtualSize,
            a.find_section(".text")->VirtualSize + 6);  // FF 15 + addr
}

TEST_F(AttacksTest, DllInjectHasValidChecksum) {
  const Bytes infected = DllImportInjectAttack::infect_file(
      env_->golden().file("dummy.sys"), "inject.dll", "callMessageBox");
  const pe::DosHeader dos = pe::DosHeader::parse(infected);
  const std::size_t checksum_offset =
      dos.e_lfanew + pe::kNtHeadersPrefixSize + 64;
  EXPECT_EQ(load_le32(infected, checksum_offset),
            pe::compute_pe_checksum(infected, checksum_offset));
}

TEST_F(AttacksTest, DllInjectLoadsAndBindsInGuest) {
  const auto result =
      DllImportInjectAttack{}.apply(*env_, victim(), "dummy.sys");
  EXPECT_TRUE(result.infects_disk_file);
  // Both the payload and the reinfected module are loaded.
  ASSERT_NE(env_->loader(victim()).find("inject.dll"), nullptr);
  const auto* dummy = env_->loader(victim()).find("dummy.sys");
  ASSERT_NE(dummy, nullptr);

  // The injected IAT slot must be bound to inject.dll's export.
  GuestMemoryWriter writer(*env_, victim());
  const Bytes image = writer.read_module_image("dummy.sys");
  const pe::ParsedImage parsed(image);
  const auto dlls = pe::parse_import_directory(
      image,
      parsed.optional_header().DataDirectories[pe::kDirImport].VirtualAddress);
  const auto* inject = env_->loader(victim()).find("inject.dll");
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(load_le32(image, dlls[1].iat_rvas[0]),
            inject->exports.at("callMessageBox"));
}

// ---- extensions ------------------------------------------------------------------------
TEST_F(AttacksTest, IatHookChangesOnlyWritableIdata) {
  GuestMemoryWriter writer(*env_, victim());
  const Bytes before = writer.read_module_image("http.sys");
  IatHookAttack{}.apply(*env_, victim(), "http.sys");
  const Bytes after = writer.read_module_image("http.sys");

  const pe::ParsedImage parsed(before);
  const auto* idata = parsed.find_section(".idata");
  ASSERT_NE(idata, nullptr);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      ++diffs;
      EXPECT_GE(i, idata->VirtualAddress);
      EXPECT_LT(i, idata->VirtualAddress + idata->VirtualSize);
    }
  }
  EXPECT_GT(diffs, 0u);
  EXPECT_LE(diffs, 4u);
}

TEST_F(AttacksTest, BytePatchHitsRequestedRva) {
  GuestMemoryWriter writer(*env_, victim());
  const Bytes before = writer.read_module_image("ntfs.sys");
  BytePatchAttack(0x1040, 0x55).apply(*env_, victim(), "ntfs.sys");
  const Bytes after = writer.read_module_image("ntfs.sys");
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (i == 0x1040) {
      EXPECT_EQ(after[i], before[i] ^ 0x55);
    } else {
      EXPECT_EQ(after[i], before[i]);
    }
  }
}

TEST_F(AttacksTest, BytePatchRejectsNoOp) {
  BytePatchAttack noop(0x1000, 0x00);
  EXPECT_THROW(noop.apply(*env_, victim(), "ntfs.sys"), InvalidArgument);
}

TEST_F(AttacksTest, BytePatchRejectsOutOfImage) {
  BytePatchAttack outside(0x10000000, 0x01);
  EXPECT_THROW(outside.apply(*env_, victim(), "dummy.sys"), InvalidArgument);
}

}  // namespace
