// Unit tests for mc_guestos: kernel bootstrap, the PsLoadedModuleList
// machinery, and the PE module loader (relocation + import binding).
#include <gtest/gtest.h>

#include "cloud/catalog.hpp"
#include "cloud/golden.hpp"
#include "guestos/kernel.hpp"
#include "guestos/module_loader.hpp"
#include "guestos/winlike.hpp"
#include "pe/constants.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/reloc.hpp"
#include "vmm/domain.hpp"

namespace {

using namespace mc;
using namespace mc::guestos;

GuestConfig test_config(std::uint64_t seed = 1) {
  GuestConfig cfg;
  cfg.seed = seed;
  return cfg;
}

// ---- winlike helpers -----------------------------------------------------------
TEST(Winlike, LdrEntryEncoding) {
  const Bytes entry = encode_ldr_entry(winxp_sp2_profile(), 0x11111111,
                                       0x22222222, 0xF8000000, 0xF8001000,
                                       0x8000, 0x81000100, 20, 0x81000200,
                                       14);
  ASSERT_EQ(entry.size(), kLdrEntrySize);
  EXPECT_EQ(load_le32(entry, kOffInLoadOrderLinks), 0x11111111u);
  EXPECT_EQ(load_le32(entry, kOffInLoadOrderLinks + kOffListBlink),
            0x22222222u);
  EXPECT_EQ(load_le32(entry, kOffDllBase), 0xF8000000u);
  EXPECT_EQ(load_le32(entry, kOffEntryPoint), 0xF8001000u);
  EXPECT_EQ(load_le32(entry, kOffSizeOfImage), 0x8000u);
  EXPECT_EQ(load_le16(entry, kOffBaseDllName + kOffUsLength), 14);
  EXPECT_EQ(load_le32(entry, kOffBaseDllName + kOffUsBuffer), 0x81000200u);
  EXPECT_EQ(load_le16(entry, kOffLoadCount), 1);
}

TEST(Winlike, ModuleNameComparisonIsCaseInsensitive) {
  EXPECT_TRUE(module_name_equals("hal.dll", "HAL.DLL"));
  EXPECT_TRUE(module_name_equals("Http.Sys", "http.sys"));
  EXPECT_FALSE(module_name_equals("hal.dll", "hal.dl"));
  EXPECT_FALSE(module_name_equals("hal.dll", "nal.dll"));
}

// ---- GuestKernel -----------------------------------------------------------------
TEST(GuestKernel, BootInitializesEmptyModuleList) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config());
  EXPECT_NE(dom.cr3(), 0u);
  EXPECT_TRUE(kernel.read_module_list().empty());
}

TEST(GuestKernel, DebugBlockIsPlanted) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config());
  // The block lives 0x40 past the list head, in the same globals page.
  const std::uint32_t dbg_va = kernel.ps_loaded_module_list_va() + 0x40;
  Bytes raw(kDebugBlockSize, 0);
  kernel.address_space().read_virtual(dbg_va, raw);
  EXPECT_EQ(load_le32(raw, kOffDbgMagic), kDebugBlockMagic);
  EXPECT_EQ(load_le32(raw, kOffDbgPsLoadedModuleList),
            kernel.ps_loaded_module_list_va());
}

TEST(GuestKernel, PoolAllocAligns) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config());
  const std::uint32_t a = kernel.pool_alloc(3);
  const std::uint32_t b = kernel.pool_alloc(8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 3);
}

TEST(GuestKernel, PoolExhaustionThrows) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestConfig cfg = test_config();
  cfg.pool_size = 0x2000;
  GuestKernel kernel(dom, cfg);
  kernel.pool_alloc(0x1F00);
  EXPECT_THROW(kernel.pool_alloc(0x200), MemoryError);
}

TEST(GuestKernel, InsertLinksListCorrectly) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config());
  const std::uint32_t e1 =
      kernel.insert_module_entry("first.sys", 0xF8000000, 0xF8000100, 0x1000);
  const std::uint32_t e2 =
      kernel.insert_module_entry("second.sys", 0xF8100000, 0xF8100100,
                                 0x2000);

  const auto list = kernel.read_module_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].entry_va, e1);
  EXPECT_EQ(list[0].base_dll_name, "first.sys");
  EXPECT_EQ(list[0].dll_base, 0xF8000000u);
  EXPECT_EQ(list[1].entry_va, e2);
  // Doubly linked invariants: head <-> e1 <-> e2 <-> head.
  const std::uint32_t head = kernel.ps_loaded_module_list_va();
  EXPECT_EQ(list[0].blink, head);
  EXPECT_EQ(list[0].flink, e2);
  EXPECT_EQ(list[1].blink, e1);
  EXPECT_EQ(list[1].flink, head);
}

TEST(GuestKernel, UnlinkMiddleEntry) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config());
  kernel.insert_module_entry("a.sys", 0xF8000000, 0, 0x1000);
  kernel.insert_module_entry("b.sys", 0xF8100000, 0, 0x1000);
  kernel.insert_module_entry("c.sys", 0xF8200000, 0, 0x1000);

  EXPECT_TRUE(kernel.unlink_module_entry("b.sys"));
  const auto list = kernel.read_module_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].base_dll_name, "a.sys");
  EXPECT_EQ(list[1].base_dll_name, "c.sys");
  EXPECT_EQ(list[0].flink, list[1].entry_va);
  EXPECT_EQ(list[1].blink, list[0].entry_va);
  EXPECT_FALSE(kernel.unlink_module_entry("b.sys"));
}

TEST(GuestKernel, ModuleRegionsAreMappedAndDisjoint) {
  vmm::Domain dom(1, "t", 64 << 20);
  GuestKernel kernel(dom, test_config(77));
  const std::uint32_t b1 = kernel.map_module_region(0x8000);
  const std::uint32_t b2 = kernel.map_module_region(0x8000);
  EXPECT_EQ(b1 % vmm::kFrameSize, 0u);
  EXPECT_GE(b2, b1 + 0x8000);
  // Whole regions are mapped.
  Bytes probe(0x8000, 1);
  EXPECT_NO_THROW(kernel.address_space().write_virtual(b1, probe));
  EXPECT_NO_THROW(kernel.address_space().write_virtual(b2, probe));
}

TEST(GuestKernel, DifferentSeedsDifferentBases) {
  vmm::Domain d1(1, "a", 64 << 20);
  vmm::Domain d2(2, "b", 64 << 20);
  GuestKernel k1(d1, test_config(100));
  GuestKernel k2(d2, test_config(200));
  EXPECT_NE(k1.map_module_region(0x4000), k2.map_module_region(0x4000));
}

// ---- ModuleLoader ------------------------------------------------------------------
class ModuleLoaderTest : public ::testing::Test {
 protected:
  ModuleLoaderTest()
      : golden_(cloud::default_catalog()),
        domain_(1, "t", 64 << 20),
        kernel_(domain_, test_config(5)),
        loader_(kernel_) {}

  cloud::GoldenImages golden_;
  vmm::Domain domain_;
  GuestKernel kernel_;
  ModuleLoader loader_;
};

TEST_F(ModuleLoaderTest, LoadRegistersModule) {
  const LoadedModule& m =
      loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  EXPECT_GE(m.base, 0xF8000000u);
  EXPECT_GT(m.size_of_image, 0u);
  EXPECT_FALSE(m.exports.empty());

  const auto list = kernel_.read_module_list();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].base_dll_name, "ntoskrnl.exe");
  EXPECT_EQ(list[0].dll_base, m.base);
  EXPECT_EQ(list[0].size_of_image, m.size_of_image);
  EXPECT_EQ(list[0].entry_point, m.entry_point);
}

TEST_F(ModuleLoaderTest, LoadedImageHasRelocationsApplied) {
  const LoadedModule& m =
      loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));

  // Read the image back from guest memory and compare a relocated word
  // against the expectation: file value + (base - preferred).
  Bytes in_guest(m.size_of_image, 0);
  kernel_.address_space().read_virtual(m.base, in_guest);

  const Bytes file_mapped = pe::map_image(golden_.file("ntoskrnl.exe"));
  const pe::ParsedImage parsed(file_mapped);
  const auto& reloc_dir =
      parsed.optional_header().DataDirectories[pe::kDirBaseReloc];
  ASSERT_NE(reloc_dir.VirtualAddress, 0u);
  const auto fixups = pe::parse_base_relocations(
      slice(file_mapped, reloc_dir.VirtualAddress, reloc_dir.Size));
  ASSERT_FALSE(fixups.empty());

  const std::uint32_t delta = m.base - parsed.optional_header().ImageBase;
  for (const std::uint32_t rva : fixups) {
    EXPECT_EQ(load_le32(in_guest, rva), load_le32(file_mapped, rva) + delta)
        << "fixup at rva " << rva;
  }
}

TEST_F(ModuleLoaderTest, ImportBindingWritesProviderAddresses) {
  loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  const LoadedModule& hal = loader_.load("hal.dll", golden_.file("hal.dll"));
  const LoadedModule* nt = loader_.find("ntoskrnl.exe");
  ASSERT_NE(nt, nullptr);

  Bytes image(hal.size_of_image, 0);
  kernel_.address_space().read_virtual(hal.base, image);
  const pe::ParsedImage parsed(image);
  const auto& import_dir =
      parsed.optional_header().DataDirectories[pe::kDirImport];
  ASSERT_NE(import_dir.VirtualAddress, 0u);
  const auto dlls =
      pe::parse_import_directory(image, import_dir.VirtualAddress);
  ASSERT_EQ(dlls.size(), 1u);
  for (std::size_t f = 0; f < dlls[0].function_names.size(); ++f) {
    const std::uint32_t bound = load_le32(image, dlls[0].iat_rvas[f]);
    EXPECT_EQ(bound, nt->exports.at(dlls[0].function_names[f]));
  }
}

TEST_F(ModuleLoaderTest, UnresolvedImportThrows) {
  // hal.dll imports from ntoskrnl.exe, which is not loaded.
  EXPECT_THROW(loader_.load("hal.dll", golden_.file("hal.dll")),
               NotFoundError);
}

TEST_F(ModuleLoaderTest, DoubleLoadRejected) {
  loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  EXPECT_THROW(loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe")),
               InvalidArgument);
}

TEST_F(ModuleLoaderTest, UnloadRemovesFromListAndRegistry) {
  loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  loader_.load("hal.dll", golden_.file("hal.dll"));
  loader_.unload("hal.dll");
  EXPECT_EQ(loader_.find("hal.dll"), nullptr);
  EXPECT_EQ(kernel_.read_module_list().size(), 1u);
  EXPECT_THROW(loader_.unload("hal.dll"), NotFoundError);
}

TEST_F(ModuleLoaderTest, ReloadGetsNewBase) {
  loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  const std::uint32_t base1 =
      loader_.load("hal.dll", golden_.file("hal.dll")).base;
  loader_.unload("hal.dll");
  const std::uint32_t base2 =
      loader_.load("hal.dll", golden_.file("hal.dll")).base;
  EXPECT_NE(base1, base2);
}

TEST_F(ModuleLoaderTest, FindIsCaseInsensitive) {
  loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  EXPECT_NE(loader_.find("NTOSKRNL.EXE"), nullptr);
  EXPECT_EQ(loader_.find("nothere.sys"), nullptr);
}

TEST_F(ModuleLoaderTest, EntryPointIsInsideImage) {
  const LoadedModule& m =
      loader_.load("ntoskrnl.exe", golden_.file("ntoskrnl.exe"));
  EXPECT_GT(m.entry_point, m.base);
  EXPECT_LT(m.entry_point, m.base + m.size_of_image);
}

}  // namespace
