// ELF64 pool scanning end to end: clean Linux pools at every paper pool
// size vote unanimously clean with every pair on the canonical fast path,
// the fast and faithful configurations stay verdict-identical, and the
// E1-E4 attack analogues — .text byte patch, fixup-pointer redirection,
// .rela table tampering, header corruption, DKOM-style module hiding —
// are detected and localized to the tampered VM.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/linux.hpp"
#include "elf/parser.hpp"
#include "guestos/kernel.hpp"
#include "guestos/ko_loader.hpp"
#include "guestos/profile.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"
#include "util/fault.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::LinuxEnvironment> make_env(std::size_t guests) {
  cloud::LinuxCloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::LinuxEnvironment>(cfg);
}

ModCheckerConfig fast_config() {
  return ModCheckerConfig{};  // fast path, memo and session reuse default on
}

ModCheckerConfig faithful_config() {
  ModCheckerConfig cfg;
  cfg.pool_fastpath = false;
  cfg.digest_memo = false;
  cfg.reuse_sessions = false;
  return cfg;
}

void expect_same_verdicts(const PoolScanReport& a, const PoolScanReport& b) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].vm, b.verdicts[i].vm);
    EXPECT_EQ(a.verdicts[i].successes, b.verdicts[i].successes)
        << "vm " << a.verdicts[i].vm;
    EXPECT_EQ(a.verdicts[i].total, b.verdicts[i].total);
    EXPECT_EQ(a.verdicts[i].clean, b.verdicts[i].clean)
        << "vm " << a.verdicts[i].vm;
  }
}

/// Scans with both configs (format auto-detected from the ELF magic) and
/// requires identical verdicts; returns the fast report.
PoolScanReport scan_both_ways(cloud::LinuxEnvironment& env,
                              const std::string& module) {
  ModChecker fast(env.hypervisor(), fast_config());
  ModChecker faithful(env.hypervisor(), faithful_config());
  const auto a = fast.scan_pool(module, env.guests());
  const auto b = faithful.scan_pool(module, env.guests());
  expect_same_verdicts(a, b);
  EXPECT_EQ(b.fastpath_pairs, 0u);
  return a;
}

/// Guest VA of `section` inside the module's mapped image on one guest
/// (the synthetic .ko layout has sh_addr == sh_offset).
std::uint32_t section_va(cloud::LinuxEnvironment& env, vmm::DomainId vm,
                         const std::string& module,
                         const std::string& section) {
  const guestos::LoadedKo* ko = env.loader(vm).find(module);
  EXPECT_NE(ko, nullptr);
  const elf::ElfImage image{ByteView(env.golden_file(module))};
  const elf::Elf64Shdr* sh = image.find_section(section);
  EXPECT_NE(sh, nullptr);
  return ko->base + static_cast<std::uint32_t>(sh->sh_offset);
}

std::size_t dirty_count(const PoolScanReport& report, vmm::DomainId expect_vm) {
  std::size_t dirty = 0;
  for (const auto& v : report.verdicts) {
    if (!v.clean) {
      ++dirty;
      EXPECT_EQ(v.vm, expect_vm);
    }
  }
  return dirty;
}

// ---- clean pools --------------------------------------------------------------

class CleanLinuxPool : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CleanLinuxPool, UnanimousAndEveryPairFast) {
  auto env = make_env(GetParam());
  const std::size_t t = GetParam();
  for (const std::string module : {"hello", "scsi_mod"}) {
    const auto report = scan_both_ways(*env, module);
    EXPECT_EQ(report.fastpath_pairs, t * (t - 1) / 2) << module;
    EXPECT_EQ(report.fallback_pairs, 0u) << module;
    for (const auto& verdict : report.verdicts) {
      EXPECT_TRUE(verdict.clean) << module << " vm " << verdict.vm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, CleanLinuxPool,
                         ::testing::Values(2, 3, 5, 8, 15));

TEST(CleanLinuxPool, FullCatalogSweepAtFifteen) {
  auto env = make_env(15);
  ModChecker checker(env->hypervisor(), fast_config());
  for (const std::string& module : cloud::default_ko_load_order()) {
    const auto report = checker.scan_pool(module, env->guests());
    EXPECT_EQ(report.fastpath_pairs, 15u * 14u / 2u) << module;
    for (const auto& verdict : report.verdicts) {
      EXPECT_TRUE(verdict.clean) << module << " vm " << verdict.vm;
    }
  }
}

// ---- E1 analogue: code byte patch ---------------------------------------------

TEST(ElfAttacks, TextBytePatchIsLocalized) {
  auto env = make_env(6);
  const vmm::DomainId victim = env->guests()[2];
  // Offset 3 sits before the first fixup slot (slots start at one stride
  // >= 16), so this is a pure content change, not a relocation.
  const std::uint32_t va = section_va(*env, victim, "scsi_mod", ".text") + 3;
  const Bytes patch = {0xCC};
  env->kernel(victim).address_space().write_virtual(va, ByteView(patch));

  const auto report = scan_both_ways(*env, "scsi_mod");
  EXPECT_EQ(dirty_count(report, victim), 1u);
  // The patched copy cannot reduce to the clean canonical: its 5 pairs
  // (and only those) run the exact pairwise fallback.
  EXPECT_EQ(report.fallback_pairs, 5u);
  EXPECT_EQ(report.fastpath_pairs, 10u);
}

// ---- E2 analogue: fixup pointer redirected ------------------------------------

TEST(ElfAttacks, RedirectedFixupPointerIsNotNormalizedAway) {
  auto env = make_env(7);
  const vmm::DomainId victim = env->guests()[4];
  // First R_X86_64_64 slot of nf_conntrack: stride =
  // max(16, 0x1400/19) & ~7 = 264, slot 0 at .text+264.  Shift the stored
  // kernel pointer by 0x40: the slot still looks like a plausible biased
  // address, but its RVA no longer agrees with any peer's, so Algorithm 2
  // must refuse to normalize it (the evasion-resistance property).
  const std::uint32_t va = section_va(*env, victim, "nf_conntrack", ".text") +
                           264;
  Bytes slot(8, 0);
  env->kernel(victim).address_space().read_virtual(va, MutableByteView(slot));
  store_le64(MutableByteView(slot), 0, load_le64(ByteView(slot), 0) + 0x40);
  env->kernel(victim).address_space().write_virtual(va, ByteView(slot));

  const auto report = scan_both_ways(*env, "nf_conntrack");
  EXPECT_EQ(dirty_count(report, victim), 1u);
}

// ---- E3 analogue: relocation-table tampering ----------------------------------

TEST(ElfAttacks, RelaTableTamperFlagsTheResidentTable) {
  auto env = make_env(5);
  const vmm::DomainId victim = env->guests()[1];
  // .rela.text is SHF_ALLOC and read-only — a resident integrity-checked
  // item whose content is base-independent.  Corrupting one record's
  // addend byte must flag the VM on plain digest inequality, with every
  // pair still on the fast path (the item is not rva-sensitive).
  const std::uint32_t va =
      section_va(*env, victim, "ext3", ".rela.text") + 16;  // r_addend byte 0
  const Bytes tamper = {0x7F};
  env->kernel(victim).address_space().write_virtual(va, ByteView(tamper));

  const auto report = scan_both_ways(*env, "ext3");
  EXPECT_EQ(dirty_count(report, victim), 1u);
  EXPECT_EQ(report.fallback_pairs, 0u);
  EXPECT_EQ(report.fastpath_pairs, 10u);
}

// ---- E4 analogue: header corruption -------------------------------------------

TEST(ElfAttacks, CorruptedElfMagicBecomesUnparseableNotACrash) {
  auto env = make_env(4);
  const vmm::DomainId victim = env->guests()[0];  // the reference VM, even
  const guestos::LoadedKo* ko = env->loader(victim).find("e1000");
  ASSERT_NE(ko, nullptr);
  const Bytes garbage = {'X', 'X', 'X', 'X'};
  env->kernel(victim).address_space().write_virtual(ko->base,
                                                    ByteView(garbage));

  // Auto-detection no longer recognizes the image; the tolerant parse
  // turns that into a MODULE_UNPARSEABLE verdict instead of a throw.
  const auto report = scan_both_ways(*env, "e1000");
  EXPECT_EQ(dirty_count(report, victim), 1u);
}

// ---- module hiding ------------------------------------------------------------

TEST(ElfAttacks, UnloadedModuleShowsAsListDiscrepancy) {
  auto env = make_env(5);
  const vmm::DomainId victim = env->guests()[3];
  env->loader(victim).unload("hello");

  ModChecker checker(env->hypervisor(), fast_config());
  const auto report = checker.compare_module_lists(env->guests());
  ASSERT_EQ(report.discrepancies.size(), 1u);
  const auto& d = report.discrepancies[0];
  EXPECT_EQ(d.module_name, "hello");
  EXPECT_EQ(d.missing_on, std::vector<vmm::DomainId>{victim});
  EXPECT_EQ(d.present_on.size(), 4u);
}

// ---- version grouping ---------------------------------------------------------

TEST(LinuxVersionGrouping, HomogeneousPoolIsOneRecognizedGroup) {
  auto env = make_env(4);
  const auto groups =
      group_pool_by_version(env->hypervisor(), env->guests());
  ASSERT_EQ(groups.recognized.size(), 1u);
  const auto it = groups.recognized.find(0x02061800u);
  ASSERT_NE(it, groups.recognized.end());
  EXPECT_EQ(it->second, env->guests());
  EXPECT_TRUE(groups.unrecognized.empty());
  EXPECT_TRUE(groups.faults.empty());
}

TEST(LinuxVersionGrouping, UnknownBuildRoutedToUnrecognizedNotThrown) {
  auto env = make_env(3);
  // Boot one extra guest on a Linux-like profile whose version id matches
  // no known build.
  static const guestos::GuestProfile weird = [] {
    guestos::GuestProfile p = guestos::linux26_profile();
    p.name = "linux-mystery-build";
    p.version_id = 0x99999999u;
    return p;
  }();
  const vmm::DomainId odd =
      env->hypervisor().create_domain("DomOdd", 64ull << 20);
  guestos::GuestConfig gc;
  gc.seed = 4242;
  gc.profile = &weird;
  guestos::GuestKernel kernel(env->hypervisor().domain(odd), gc);
  guestos::KoLoader loader(kernel);
  loader.load("hello", ByteView(env->golden_file("hello")));

  std::vector<vmm::DomainId> pool = env->guests();
  pool.push_back(odd);
  const auto groups = group_pool_by_version(env->hypervisor(), pool);
  ASSERT_EQ(groups.recognized.size(), 1u);
  EXPECT_EQ(groups.recognized.at(0x02061800u), env->guests());
  EXPECT_EQ(groups.unrecognized, std::vector<vmm::DomainId>{odd});
  ASSERT_EQ(groups.faults.size(), 1u);
  EXPECT_EQ(groups.faults[0].code, FaultCode::kUnrecognizedBuild);
  EXPECT_EQ(groups.faults[0].domain, odd);
}

}  // namespace
