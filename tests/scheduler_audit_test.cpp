// Tests for the audit sweep, the continuous-monitoring scheduler, and the
// infection-campaign simulator.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attacks/campaign.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/scheduler.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- audit -----------------------------------------------------------------------
TEST(Audit, CleanCloudHasNoFindings) {
  auto env = make_env(4);
  const auto report = audit_modules(env->hypervisor(),
                                    env->config().load_order, env->guests());
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.scans.size(), env->config().load_order.size());
  EXPECT_GT(report.total_wall, 0u);
  EXPECT_GT(report.total_cpu.total(), 0u);
}

TEST(Audit, FindsEveryPlantedInfection) {
  auto env = make_env(5);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[1], "hal.dll");
  attacks::InlineHookAttack{}.apply(*env, env->guests()[3], "ntfs.sys");

  const auto report = audit_modules(env->hypervisor(),
                                    env->config().load_order, env->guests());
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].module, "hal.dll");
  EXPECT_EQ(report.findings[0].vm, env->guests()[1]);
  EXPECT_EQ(report.findings[1].module, "ntfs.sys");
  EXPECT_EQ(report.findings[1].vm, env->guests()[3]);
}

TEST(Audit, FormattingShowsMatrixAndFindings) {
  auto env = make_env(3);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  const auto report = audit_modules(env->hypervisor(), {"hal.dll"},
                                    env->guests());
  const std::string text = format_audit_report(report);
  EXPECT_NE(text.find("FLAG"), std::string::npos);
  EXPECT_NE(text.find("hal.dll on Dom1"), std::string::npos);
}

// ---- scheduler --------------------------------------------------------------------
TEST(Scheduler, RunsPoliciesAtTheirIntervals) {
  auto env = make_env(3);
  ScanScheduler scheduler(env->hypervisor(), env->guests());
  scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
  scheduler.add_policy({"http.sys", sim_ms(2500), sim_ms(100)});

  const auto report = scheduler.run_until(sim_ms(5000));
  std::size_t hal = 0;
  std::size_t http = 0;
  for (const auto& scan : report.scans) {
    if (scan.module == "hal.dll") {
      ++hal;
    } else if (scan.module == "http.sys") {
      ++http;
    }
  }
  EXPECT_EQ(hal, 5u);   // due at 0,1000,2000,3000,4000 ms
  EXPECT_EQ(http, 2u);  // due at 100, 2600 ms
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_GT(report.duty_cycle(), 0.0);
  EXPECT_LT(report.duty_cycle(), 0.2);  // light-weight, as the paper claims
}

TEST(Scheduler, ScansSerializeWhenDueTimesCollide) {
  auto env = make_env(4);
  ScanScheduler scheduler(env->hypervisor(), env->guests());
  // Both due at t=0: the second must start after the first finishes.
  scheduler.add_policy({"hal.dll", sim_ms(100000), 0});
  scheduler.add_policy({"http.sys", sim_ms(100000), 0});
  const auto report = scheduler.run_until(sim_ms(50000));
  ASSERT_EQ(report.scans.size(), 2u);
  EXPECT_EQ(report.scans[0].started, 0u);
  EXPECT_EQ(report.scans[1].started, report.scans[0].finished);
  EXPECT_GE(report.scans[1].started, report.scans[1].due);
}

TEST(Scheduler, AlertsFireAndDeduplicate) {
  // 4 VMs: with only 3 a clean VM matches exactly half its peers and the
  // strict majority n > (t-1)/2 flags everyone (see A4 boundary analysis).
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");

  ScanScheduler scheduler(env->hypervisor(), env->guests());
  scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
  const auto report = scheduler.run_until(sim_ms(3500));

  // 4 scans, each flagging the same VM; only the first alert is new.
  ASSERT_EQ(report.scans.size(), 4u);
  ASSERT_EQ(report.alerts.size(), 4u);
  EXPECT_EQ(report.new_alert_count(), 1u);
  for (const auto& alert : report.alerts) {
    EXPECT_EQ(alert.vm, env->guests()[2]);
    EXPECT_EQ(alert.module, "hal.dll");
  }
}

TEST(Scheduler, RejectsDegenerateInputs) {
  auto env = make_env(3);
  EXPECT_THROW(ScanScheduler(env->hypervisor(), {env->guests()[0]}),
               InvalidArgument);
  ScanScheduler scheduler(env->hypervisor(), env->guests());
  EXPECT_THROW(scheduler.add_policy({"hal.dll", 0, 0}), InvalidArgument);
  EXPECT_THROW(scheduler.set_partitions(0), InvalidArgument);
}

TEST(Scheduler, SinglePartitionReproducesClassicTimeline) {
  auto env = make_env(3);
  const auto run = [&](bool explicit_single) {
    ScanScheduler scheduler(env->hypervisor(), env->guests());
    scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
    scheduler.add_policy({"http.sys", sim_ms(1500), sim_ms(100)});
    if (explicit_single) {
      scheduler.set_partitions(1);
    }
    return scheduler.run_until(sim_ms(4000));
  };
  const auto classic = run(false);
  const auto single = run(true);

  ASSERT_EQ(classic.scans.size(), single.scans.size());
  for (std::size_t i = 0; i < classic.scans.size(); ++i) {
    EXPECT_EQ(classic.scans[i].module, single.scans[i].module);
    EXPECT_EQ(classic.scans[i].started, single.scans[i].started);
    EXPECT_EQ(classic.scans[i].finished, single.scans[i].finished);
    EXPECT_EQ(single.scans[i].partition, 0u);
  }
  EXPECT_EQ(classic.makespan, single.makespan);
  EXPECT_EQ(classic.busy_time, single.busy_time);
  ASSERT_EQ(single.partition_busy.size(), 1u);
  EXPECT_EQ(single.partition_busy[0], single.busy_time);
}

TEST(Scheduler, PartitionsOverlapDistinctModules) {
  auto env = make_env(4);
  const std::vector<std::string> modules = {"hal.dll", "http.sys",
                                            "ntfs.sys"};
  const auto run = [&](std::size_t partitions) {
    ScanScheduler scheduler(env->hypervisor(), env->guests());
    for (const auto& module : modules) {
      // All due at t=0 with an interval past the horizon: one scan each.
      scheduler.add_policy({module, sim_ms(100000), 0});
    }
    scheduler.set_partitions(partitions);
    return scheduler.run_until(sim_ms(50000));
  };
  const auto serial = run(1);
  const auto parallel = run(3);

  ASSERT_EQ(serial.scans.size(), modules.size());
  ASSERT_EQ(parallel.scans.size(), modules.size());
  ASSERT_EQ(parallel.partition_busy.size(), 3u);
  // Busy time is work, not wall clock: identical scans, identical total.
  EXPECT_EQ(parallel.busy_time, serial.busy_time);
  SimNanos partition_sum = 0;
  for (const SimNanos busy : parallel.partition_busy) {
    partition_sum += busy;
  }
  EXPECT_EQ(partition_sum, parallel.busy_time);

  // The ring spreads the three modules over at least two instances, so
  // scans that shared the serial queue now overlap: the slowest instance
  // finishes before the serial chain did.
  std::set<std::size_t> used;
  for (const auto& scan : parallel.scans) {
    EXPECT_GE(scan.started, scan.due);
    used.insert(scan.partition);
  }
  ASSERT_GE(used.size(), 2u);
  EXPECT_LT(parallel.makespan, serial.makespan);
  EXPECT_EQ(serial.makespan, serial.busy_time);  // one instance, due t=0
}

TEST(Scheduler, ReportFormatting) {
  auto env = make_env(3);
  ScanScheduler scheduler(env->hypervisor(), env->guests());
  scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
  const std::string text =
      format_schedule_report(scheduler.run_until(sim_ms(2000)));
  EXPECT_NE(text.find("hal.dll"), std::string::npos);
  EXPECT_NE(text.find("duty cycle"), std::string::npos);
}

// ---- infection campaign ---------------------------------------------------------------
TEST(Campaign, SpreadsMonotonicallyToSaturation) {
  auto env = make_env(8);
  attacks::CampaignConfig cfg;
  cfg.seed = 4;
  cfg.contact_infectivity = 0.6;
  attacks::InfectionCampaign campaign(cfg);
  const auto result = campaign.run(*env, attacks::InlineHookAttack{},
                                   "hal.dll", env->guests()[0]);

  EXPECT_EQ(result.infected.size(), 8u);  // saturates with p=0.6
  std::size_t prev_total = 0;
  for (const auto& wave : result.waves) {
    EXPECT_GT(wave.total_infected, prev_total);
    prev_total = wave.total_infected;
  }
  EXPECT_EQ(prev_total, 8u);
}

TEST(Campaign, InfectionsAreRealAttacks) {
  auto env = make_env(4);
  attacks::CampaignConfig cfg;
  cfg.seed = 2;
  cfg.contact_infectivity = 1.0;  // everything falls in wave 1
  attacks::InfectionCampaign campaign(cfg);
  campaign.run(*env, attacks::InlineHookAttack{}, "hal.dll",
               env->guests()[0]);

  // Every VM infected identically: pool looks self-consistent -> the
  // uniform blind spot the paper concedes.
  ModChecker checker(env->hypervisor());
  const auto scan = checker.scan_pool("hal.dll", env->guests());
  for (const auto& verdict : scan.verdicts) {
    EXPECT_TRUE(verdict.clean);
  }
  // But against a clean snapshot reference the infection is plain.
}

TEST(Campaign, DeterministicBySeed) {
  attacks::CampaignConfig cfg;
  cfg.seed = 11;
  cfg.contact_infectivity = 0.3;
  auto env1 = make_env(6);
  auto env2 = make_env(6);
  const auto a = attacks::InfectionCampaign(cfg).run(
      *env1, attacks::InlineHookAttack{}, "hal.dll", env1->guests()[0]);
  const auto b = attacks::InfectionCampaign(cfg).run(
      *env2, attacks::InlineHookAttack{}, "hal.dll", env2->guests()[0]);
  EXPECT_EQ(a.infected, b.infected);
  EXPECT_EQ(a.waves.size(), b.waves.size());
}

TEST(Campaign, RejectsForeignPatientZero) {
  auto env = make_env(2);
  attacks::InfectionCampaign campaign;
  EXPECT_THROW(campaign.run(*env, attacks::InlineHookAttack{}, "hal.dll",
                            99),
               InvalidArgument);
}

}  // namespace
