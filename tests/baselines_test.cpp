// Tests for the related-work baseline checkers and their documented blind
// spots (the substance behind the paper's §II comparisons).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/header_tamper.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "baselines/disk_crossview.hpp"
#include "baselines/hash_dict.hpp"
#include "baselines/lkim_style.hpp"
#include "cloud/environment.hpp"

namespace {

using namespace mc;
using namespace mc::baselines;

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 3;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  vmm::DomainId victim() const { return env_->guests()[0]; }

  std::unique_ptr<cloud::CloudEnvironment> env_;
};

// ---- HashDictChecker ---------------------------------------------------------------
TEST_F(BaselinesTest, HashDictAcceptsCleanDisk) {
  const HashDictChecker checker(env_->golden().all());
  for (const auto& module : env_->config().load_order) {
    EXPECT_FALSE(checker.check(*env_, victim(), module).flagged) << module;
  }
}

TEST_F(BaselinesTest, HashDictCatchesDiskInfection) {
  attacks::OpcodeReplaceAttack{}.apply(*env_, victim(), "hal.dll");
  const HashDictChecker checker(env_->golden().all());
  const auto out = checker.check(*env_, victim(), "hal.dll");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("does not match"), std::string::npos);
}

TEST_F(BaselinesTest, HashDictBlindToMemoryOnlyInfection) {
  attacks::InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const HashDictChecker checker(env_->golden().all());
  EXPECT_FALSE(checker.check(*env_, victim(), "hal.dll").flagged);
}

TEST_F(BaselinesTest, HashDictFalsePositiveOnUnregisteredModule) {
  // A legitimate third-party driver not in the signature database — the
  // maintenance burden the paper calls out.
  env_->write_disk_file(victim(), "thirdparty.sys", Bytes{1, 2, 3});
  const HashDictChecker checker(env_->golden().all());
  const auto out = checker.check(*env_, victim(), "thirdparty.sys");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("not registered"), std::string::npos);
}

TEST_F(BaselinesTest, HashDictMissingFileFlagged) {
  const HashDictChecker checker(env_->golden().all());
  EXPECT_TRUE(checker.check(*env_, victim(), "ghost.sys").flagged);
}

// ---- DiskCrossViewChecker (SVV) -------------------------------------------------------
TEST_F(BaselinesTest, SvvAcceptsCleanGuestDespiteRelocation) {
  // The in-memory module is relocated; SVV must simulate the load from
  // disk and still find every hashed item equal.
  const DiskCrossViewChecker checker;
  for (const auto& module : env_->config().load_order) {
    const auto out = checker.check(*env_, victim(), module);
    EXPECT_FALSE(out.flagged) << module << ": " << out.detail;
  }
}

TEST_F(BaselinesTest, SvvCatchesMemoryOnlyInfection) {
  attacks::InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const DiskCrossViewChecker checker;
  const auto out = checker.check(*env_, victim(), "hal.dll");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find(".text"), std::string::npos);
}

TEST_F(BaselinesTest, SvvCatchesHeaderTamper) {
  attacks::HeaderTamperAttack{}.apply(*env_, victim(), "ntfs.sys");
  const DiskCrossViewChecker checker;
  const auto out = checker.check(*env_, victim(), "ntfs.sys");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("IMAGE_OPTIONAL_HEADER"), std::string::npos);
}

TEST_F(BaselinesTest, SvvBlindToDiskFirstInfection) {
  // §II: "most malware infects files on disk first, and then loads the
  // infected file into memory.  Therefore, SVV cannot pinpoint the
  // infection when both memory and the file contain the same infected
  // code."
  attacks::OpcodeReplaceAttack{}.apply(*env_, victim(), "hal.dll");
  const DiskCrossViewChecker checker;
  EXPECT_FALSE(checker.check(*env_, victim(), "hal.dll").flagged);

  attacks::StubPatchAttack{}.apply(*env_, victim(), "dummy.sys");
  EXPECT_FALSE(checker.check(*env_, victim(), "dummy.sys").flagged);
}

TEST_F(BaselinesTest, SvvFlagsUnloadedModule) {
  env_->loader(victim()).unload("dummy.sys");
  const DiskCrossViewChecker checker;
  EXPECT_TRUE(checker.check(*env_, victim(), "dummy.sys").flagged);
}

// ---- LkimStyleChecker -------------------------------------------------------------------
TEST_F(BaselinesTest, LkimAcceptsCleanGuest) {
  const LkimStyleChecker checker(env_->golden().all());
  for (const auto& module : env_->config().load_order) {
    const auto out = checker.check(*env_, victim(), module);
    EXPECT_FALSE(out.flagged) << module << ": " << out.detail;
  }
}

TEST_F(BaselinesTest, LkimCatchesDiskFirstInfection) {
  attacks::OpcodeReplaceAttack{}.apply(*env_, victim(), "hal.dll");
  const LkimStyleChecker checker(env_->golden().all());
  EXPECT_TRUE(checker.check(*env_, victim(), "hal.dll").flagged);
}

TEST_F(BaselinesTest, LkimCatchesMemoryOnlyInfection) {
  attacks::InlineHookAttack{}.apply(*env_, victim(), "hal.dll");
  const LkimStyleChecker checker(env_->golden().all());
  EXPECT_TRUE(checker.check(*env_, victim(), "hal.dll").flagged);
}

TEST_F(BaselinesTest, LkimCatchesIatHookViaPointerValidation) {
  // The one attack ModChecker and SVV both miss.
  attacks::IatHookAttack{}.apply(*env_, victim(), "http.sys");
  const LkimStyleChecker checker(env_->golden().all());
  const auto out = checker.check(*env_, victim(), "http.sys");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("IAT["), std::string::npos);
}

TEST_F(BaselinesTest, LkimFalsePositiveOnLegitimateUpdate) {
  // Updated module everywhere; the trusted repo still holds the old
  // version -> LKIM flags it until the repo is refreshed.
  auto spec = cloud::default_catalog()[5];  // ntfs.sys
  ASSERT_EQ(spec.name, "ntfs.sys");
  spec.seed ^= 0xFEED;
  const Bytes updated = cloud::build_driver_image(spec);
  for (const auto vm : env_->guests()) {
    env_->write_disk_file(vm, "ntfs.sys", updated);
    env_->loader(vm).unload("ntfs.sys");
    env_->loader(vm).load("ntfs.sys", updated);
  }
  const LkimStyleChecker checker(env_->golden().all());
  EXPECT_TRUE(checker.check(*env_, victim(), "ntfs.sys").flagged);
}

TEST_F(BaselinesTest, LkimFlagsModuleAbsentFromRepository) {
  env_->loader(victim()).load("inject.dll",
                              env_->golden().file("inject.dll"));
  std::map<std::string, Bytes> partial_repo;  // empty repository
  const LkimStyleChecker checker(partial_repo);
  const auto out = checker.check(*env_, victim(), "inject.dll");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("absent from trusted repository"),
            std::string::npos);
}

// ---- simulate_load helper ------------------------------------------------------------------
TEST_F(BaselinesTest, SimulateLoadMatchesRealLoaderOutput) {
  // The reference simulation must byte-match the actual guest image except
  // for bound IAT slots (which live in writable .idata, outside the
  // compared items).
  const auto* rec = env_->loader(victim()).find("ntfs.sys");
  ASSERT_NE(rec, nullptr);
  const Bytes reference =
      simulate_load(env_->disk_file(victim(), "ntfs.sys"), rec->base);
  Bytes actual(rec->size_of_image, 0);
  env_->kernel(victim()).address_space().read_virtual(rec->base, actual);

  EXPECT_TRUE(diff_integrity_items(actual, reference).empty());
}

}  // namespace
