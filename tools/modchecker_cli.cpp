// modchecker — command-line driver for the simulated cloud.
//
// Subcommands:
//   check   --module M [--subject N] [--guests G] [--parallel] [--algo A]
//   audit   [--guests G] [--parallel]
//   scan    --module M [--guests G]           (pool scan, per-VM verdicts)
//   monitor [--guests G] [--horizon MS]       (scheduler over all modules)
//   attack  --module M --attack T [--victim N] then re-check
//   list    [--guests G]                      (loader list of Dom1)
//   validate --module M                       (PE validator on golden file)
//   fleet   [--pools P] [--shards S] [--repeat R] [--chaos [--chaos-seed X]]
//           (sharded control plane: run P pools' recurring sweeps over S
//           shards, optionally killing one shard mid-run; exits nonzero if
//           any sweep was lost)
//
// Everything runs against a freshly built deterministic environment; the
// tool exists to make the library explorable without writing code.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "attacks/dkom_hide.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include <fstream>

#include "modchecker/audit.hpp"
#include "modchecker/forensics.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/report.hpp"
#include "modchecker/report_json.hpp"
#include "modchecker/scheduler.hpp"
#include "modchecker/searcher.hpp"
#include "pe/constants.hpp"
#include "pe/parser.hpp"
#include "pe/resources.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "vmi/dump.hpp"
#include "pe/validate.hpp"
#include "service/coordinator.hpp"
#include "vmi/session.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;

struct Options {
  std::string command;
  std::string module = "hal.dll";
  std::string attack = "inline-hook";
  std::string algorithm = "md5";
  std::string format = "auto";  // auto | pe32 | elf64
  std::size_t guests = 15;
  std::size_t subject = 1;  // Dom index (1-based, as in the paper)
  std::size_t victim = 1;
  std::uint64_t horizon_ms = 10000;
  bool parallel = false;
  bool json = false;
  std::string file;  // dump file path for dump/checkdump
  // Fault-injection quickstart: --fault-rate arms the hypervisor's
  // injector before the command runs (see DESIGN.md §8).
  double fault_rate = 0.0;        // per-read fault probability
  std::size_t fault_victim = 0;   // Dom number; 0 = every guest
  std::uint64_t fault_seed = 1;   // deterministic per-domain stream seed
  // Observability: registry snapshot / Chrome trace written after the
  // command runs (see DESIGN.md §9).
  std::string telemetry_out;
  std::string trace_out;
  // Sharded fleet quickstart (see DESIGN.md §14).
  std::size_t pools = 4;
  std::size_t shards = 2;
  std::size_t repeat = 3;
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
};

void usage() {
  std::printf(
      "usage: modchecker_cli <command> [options]\n"
      "commands: check | scan | audit | monitor | attack | list | validate\n"
      "          dump | checkdump | fleet\n"
      "options:\n"
      "  --module <name>     target module (default hal.dll)\n"
      "  --guests <n>        pool size (default 15)\n"
      "  --subject <n>       subject Dom number (default 1)\n"
      "  --victim <n>        victim Dom number for 'attack' (default 1)\n"
      "  --attack <type>     opcode-replace | inline-hook | stub-patch |\n"
      "                      dll-inject | iat-hook | header-tamper | dkom\n"
      "  --algo <hash>       md5 | sha1 | sha256 (default md5)\n"
      "  --format <fmt>      auto | pe32 | elf64 (default auto: sniff the\n"
      "                      image header per module)\n"
      "  --horizon <ms>      simulated monitor horizon (default 10000)\n"
      "  --parallel          use the parallel pool-scan engine\n"
      "  --json              machine-readable output (check/scan/audit)\n"
      "  --file <path>       dump file for dump/checkdump\n"
      "  --fault-rate <p>    inject guest read faults with probability p\n"
      "                      (0..1; try: scan --fault-rate 1 "
      "--fault-victim 3)\n"
      "  --fault-victim <n>  Dom number to inject into (default: all)\n"
      "  --fault-seed <s>    fault-injection RNG seed (default 1)\n"
      "  --telemetry-out <f> write a metric-registry JSON snapshot to f\n"
      "  --trace-out <f>     write a Chrome trace (chrome://tracing) to f\n"
      "  --pools <n>         fleet: pool count (default 4)\n"
      "  --shards <n>        fleet: worker shards (default 2)\n"
      "  --repeat <n>        fleet: runs per sweep (default 3)\n"
      "  --chaos             fleet: kill one shard mid-run (needs >= 2\n"
      "                      shards; the backlog re-shards, no sweep lost)\n"
      "  --chaos-seed <s>    fleet: chaos victim-selection seed "
      "(default 1)\n");
}

std::unique_ptr<attacks::Attack> make_attack(const std::string& name) {
  if (name == "opcode-replace") {
    return std::make_unique<attacks::OpcodeReplaceAttack>();
  }
  if (name == "inline-hook") {
    return std::make_unique<attacks::InlineHookAttack>();
  }
  if (name == "stub-patch") {
    return std::make_unique<attacks::StubPatchAttack>();
  }
  if (name == "dll-inject") {
    return std::make_unique<attacks::DllImportInjectAttack>();
  }
  if (name == "iat-hook") {
    return std::make_unique<attacks::IatHookAttack>();
  }
  if (name == "header-tamper") {
    return std::make_unique<attacks::HeaderTamperAttack>();
  }
  if (name == "dkom") {
    return std::make_unique<attacks::DkomHideAttack>();
  }
  throw InvalidArgument("unknown attack: " + name);
}

core::ModCheckerConfig make_config(const Options& options,
                                   telemetry::TraceRecorder* tracer = nullptr) {
  core::ModCheckerConfig cfg;
  cfg.algorithm = crypto::parse_hash_algorithm(options.algorithm);
  cfg.format = core::parse_module_format(options.format);
  cfg.parallel = options.parallel;
  cfg.tracer = tracer;
  return cfg;
}

// `fleet`: the sharded control plane end to end.  P pools (each its own
// deterministic cloud) are routed over S shards; every pool gets one
// recurring sweep.  With --chaos one shard dies mid-run and its backlog
// re-shards onto the survivors — the exit code then *proves* no sweep was
// lost (expected = pools × repeat completed runs).
int run_fleet(const Options& options, telemetry::TraceRecorder* tracer) {
  MC_CHECK(options.pools >= 1, "--pools must be >= 1");
  MC_CHECK(options.repeat >= 1, "--repeat must be >= 1");
  service::CoordinatorConfig cfg;
  cfg.shards = options.shards;
  cfg.tracer = tracer;
  cfg.chaos.enabled = options.chaos;
  cfg.chaos.seed = options.chaos_seed;
  service::ShardCoordinator coordinator(cfg);

  std::vector<std::unique_ptr<cloud::CloudEnvironment>> pools;
  pools.reserve(options.pools);
  for (std::size_t p = 0; p < options.pools; ++p) {
    cloud::CloudConfig cloud_cfg;
    cloud_cfg.guest_count = options.guests;
    pools.push_back(std::make_unique<cloud::CloudEnvironment>(cloud_cfg));
    coordinator.add_pool(
        pools.back()->hypervisor(),
        std::vector<vmm::DomainId>(pools.back()->guests()),
        make_config(options, tracer));
  }
  const auto ring = std::make_shared<service::RingSink>(
      options.pools * options.repeat + 1);
  coordinator.add_sink(ring);
  coordinator.start();

  for (std::size_t p = 0; p < options.pools; ++p) {
    service::SweepSpec spec;
    spec.name = "pool-" + std::to_string(p);
    spec.pool_index = p;
    spec.modules = {options.module};
    spec.repeat = options.repeat;
    spec.cadence = sim_ms(100);
    MC_CHECK(coordinator.submit(std::move(spec)) != 0, "submit refused");
  }
  coordinator.drain();

  const auto stats = coordinator.stats();
  std::printf("fleet: %zu pool(s) x %zu run(s) over %zu shard(s)%s\n",
              options.pools, options.repeat, coordinator.shard_count(),
              options.chaos ? " [chaos]" : "");
  for (const auto& s : coordinator.shard_stats()) {
    std::printf("  shard %zu%s  %6llu run(s)  %4llu stolen  %4llu rescued"
                "  busy %s\n",
                s.index, s.dead ? " [dead]" : "       ",
                static_cast<unsigned long long>(s.completed_runs),
                static_cast<unsigned long long>(s.stolen_runs),
                static_cast<unsigned long long>(s.rescued_runs),
                format_sim_nanos(s.sim_busy).c_str());
  }
  std::uint64_t rescued_reports = 0;
  for (const auto& report : ring->snapshot()) {
    if (report.rescheduled_from_shard != service::kNoShard) {
      ++rescued_reports;
    }
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(options.pools) *
      static_cast<std::uint64_t>(options.repeat);
  const std::uint64_t lost =
      expected - std::min(expected, stats.completed_runs);
  std::printf("completed %llu/%llu  steals %llu  reshards %llu  "
              "rescheduled %llu (%llu flagged in reports)  "
              "deadline misses %llu  lost %llu\n",
              static_cast<unsigned long long>(stats.completed_runs),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(stats.steals),
              static_cast<unsigned long long>(stats.reshards),
              static_cast<unsigned long long>(stats.rescheduled),
              static_cast<unsigned long long>(rescued_reports),
              static_cast<unsigned long long>(stats.deadline_misses),
              static_cast<unsigned long long>(lost));
  return lost == 0 ? 0 : 2;
}

int run(const Options& options, telemetry::TraceRecorder* tracer) {
  if (options.command == "fleet") {
    return run_fleet(options, tracer);
  }

  cloud::CloudConfig cloud_cfg;
  cloud_cfg.guest_count = options.guests;
  cloud::CloudEnvironment env(cloud_cfg);
  const auto& guests = env.guests();
  MC_CHECK(options.subject >= 1 && options.subject <= guests.size(),
           "subject out of range");
  const vmm::DomainId subject = guests[options.subject - 1];

  if (options.fault_rate > 0.0) {
    MC_CHECK(options.fault_rate <= 1.0, "--fault-rate must be in [0, 1]");
    MC_CHECK(options.fault_victim <= guests.size(),
             "fault victim out of range");
    vmm::FaultProfile profile;
    profile.read_fault_rate = options.fault_rate;
    profile.seed = options.fault_seed;
    vmm::FaultInjector& injector = env.hypervisor().fault_injector();
    if (options.fault_victim == 0) {
      for (const vmm::DomainId vm : guests) {
        injector.arm(vm, profile);
      }
    } else {
      injector.arm(guests[options.fault_victim - 1], profile);
    }
  }

  if (options.command == "check") {
    core::ModChecker checker(env.hypervisor(), make_config(options, tracer));
    const auto report = checker.check_module(subject, options.module);
    std::printf("%s", options.json
                          ? (core::to_json(report) + "\n").c_str()
                          : core::format_report(report).c_str());
    return report.subject_clean ? 0 : 2;
  }

  if (options.command == "scan") {
    core::ModChecker checker(env.hypervisor(), make_config(options, tracer));
    const auto report = checker.scan_pool(options.module, guests);
    std::printf("%s", options.json
                          ? (core::to_json(report) + "\n").c_str()
                          : core::format_pool_report(report).c_str());
    return 0;
  }

  if (options.command == "audit") {
    const auto report = core::audit_modules(
        env.hypervisor(), env.config().load_order, guests,
        make_config(options, tracer));
    std::printf("%s", options.json
                          ? (core::to_json(report) + "\n").c_str()
                          : core::format_audit_report(report).c_str());
    return report.findings.empty() ? 0 : 2;
  }

  if (options.command == "dump") {
    MC_CHECK(!options.file.empty(), "dump needs --file <path>");
    const Bytes dump = vmi::dump_domain(env.hypervisor(), subject);
    std::ofstream out(options.file, std::ios::binary);
    MC_CHECK(out.good(), "cannot open output file");
    // ofstream::write takes char*; this is host file I/O, not guest data.
    // mc-lint: allow(raw-reinterpret-cast)
    out.write(reinterpret_cast<const char*>(dump.data()),
              static_cast<std::streamsize>(dump.size()));
    std::printf("wrote %zu bytes (Dom%u memory capture) to %s\n",
                dump.size(), subject, options.file.c_str());
    return 0;
  }

  if (options.command == "checkdump") {
    MC_CHECK(!options.file.empty(), "checkdump needs --file <path>");
    std::ifstream in(options.file, std::ios::binary);
    MC_CHECK(in.good(), "cannot open dump file");
    Bytes dump((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());

    const vmi::DumpAnalysis analysis(dump);
    SimClock clock;
    vmi::VmiSession session(analysis.hypervisor(), analysis.domain_id(),
                            clock);
    // Offline dump triage is a diagnostic walk, not an integrity check.
    core::ModuleSearcher searcher(session);  // mc-lint: allow(pipeline-bypass)
    std::printf("offline analysis of %s:\n", options.file.c_str());
    for (const auto& m : searcher.list_modules()) {
      std::printf("  %08x  %7u bytes  %-14s", m.base, m.size_of_image,
                  m.name.c_str());
      const auto image = searcher.extract_module(m.name);
      // Dump triage inspects the raw PE on purpose; mc-lint: allow(format-bypass)
      const pe::ParsedImage parsed(image->bytes);
      const auto& dir =
          parsed.optional_header().DataDirectories[pe::kDirResource];
      if (dir.VirtualAddress != 0) {
        const auto v =
            pe::parse_version_resource(image->bytes, dir.VirtualAddress);
        if (v) {
          std::printf(" v%u.%u.%u.%u", v->file_major, v->file_minor,
                      v->file_build, v->file_revision);
        }
      }
      std::printf("\n");
    }
    return 0;
  }

  if (options.command == "monitor") {
    core::ScanScheduler scheduler(env.hypervisor(),
                                  std::vector<vmm::DomainId>(guests),
                                  make_config(options, tracer));
    SimNanos phase = 0;
    for (const auto& module : env.config().load_order) {
      scheduler.add_policy({module, sim_ms(2000), phase});
      phase += sim_ms(150);
    }
    const auto report = scheduler.run_until(sim_ms(options.horizon_ms));
    std::printf("%s", core::format_schedule_report(report).c_str());
    return 0;
  }

  if (options.command == "attack") {
    MC_CHECK(options.victim >= 1 && options.victim <= guests.size(),
             "victim out of range");
    const vmm::DomainId victim = guests[options.victim - 1];
    const auto attack = make_attack(options.attack);
    const auto result = attack->apply(env, victim, options.module);
    std::printf("applied: %s\n%s\n\n", result.attack_name.c_str(),
                result.description.c_str());

    core::ModChecker checker(env.hypervisor(), make_config(options, tracer));
    const auto report = checker.check_module(victim, options.module);
    std::printf("%s", core::format_report(report).c_str());

    // Forensic drill-down against a clean peer, like an analyst would.
    if (!report.subject_clean && !report.comparisons.empty()) {
      SimClock clock;
      // mc-lint: allow(pipeline-bypass)
      const core::ModuleParser parser;
      vmi::VmiSession vs(env.hypervisor(), victim, clock);
      vmi::VmiSession rs(env.hypervisor(),
                         victim == guests[0] ? guests[1] : guests[0], clock);
      const auto vimg =
          // mc-lint: allow(pipeline-bypass)
          core::ModuleSearcher(vs).extract_module(options.module);
      const auto rimg =
          // mc-lint: allow(pipeline-bypass)
          core::ModuleSearcher(rs).extract_module(options.module);
      if (vimg && rimg) {
        const auto sub = parser.parse(*vimg, clock);
        const auto ref = parser.parse(*rimg, clock);
        for (const auto& f : core::analyze_all_flagged(sub, ref)) {
          std::printf("\n%s", core::format_forensic_report(f).c_str());
        }
      }
    }
    return report.subject_clean ? 0 : 2;
  }

  if (options.command == "list") {
    SimClock clock;
    vmi::VmiSession session(env.hypervisor(), subject, clock);
    core::ModuleSearcher searcher(session);  // mc-lint: allow(pipeline-bypass)
    std::printf("modules on Dom%u (via introspection):\n", subject);
    for (const auto& m : searcher.list_modules()) {
      std::printf("  %08x  %7u bytes  %s\n", m.base, m.size_of_image,
                  m.name.c_str());
    }
    std::printf("(introspection cost: %s simulated)\n",
                format_sim_nanos(clock.now()).c_str());
    return 0;
  }

  if (options.command == "validate") {
    const auto report =
        pe::validate_image_file(env.golden().file(options.module));
    std::printf("%s", pe::format_validation_report(report).c_str());
    return report.ok() ? 0 : 2;
  }

  usage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  Options options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw mc::InvalidArgument("missing value for " + arg);
      }
      return argv[++i];
    };
    try {
      if (arg == "--module") {
        options.module = next();
      } else if (arg == "--guests") {
        options.guests = std::stoul(next());
      } else if (arg == "--subject") {
        options.subject = std::stoul(next());
      } else if (arg == "--victim") {
        options.victim = std::stoul(next());
      } else if (arg == "--attack") {
        options.attack = next();
      } else if (arg == "--algo") {
        options.algorithm = next();
      } else if (arg == "--format") {
        options.format = next();
      } else if (arg == "--horizon") {
        options.horizon_ms = std::stoull(next());
      } else if (arg == "--parallel") {
        options.parallel = true;
      } else if (arg == "--json") {
        options.json = true;
      } else if (arg == "--file") {
        options.file = next();
      } else if (arg == "--fault-rate") {
        options.fault_rate = std::stod(next());
      } else if (arg == "--fault-victim") {
        options.fault_victim = std::stoul(next());
      } else if (arg == "--fault-seed") {
        options.fault_seed = std::stoull(next());
      } else if (arg == "--telemetry-out") {
        options.telemetry_out = next();
      } else if (arg == "--trace-out") {
        options.trace_out = next();
      } else if (arg == "--pools") {
        options.pools = std::stoul(next());
      } else if (arg == "--shards") {
        options.shards = std::stoul(next());
      } else if (arg == "--repeat") {
        options.repeat = std::stoul(next());
      } else if (arg == "--chaos") {
        options.chaos = true;
      } else if (arg == "--chaos-seed") {
        options.chaos_seed = std::stoull(next());
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage();
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument: %s\n", e.what());
      return 1;
    }
  }

  try {
    // The recorder (when asked for) outlives the command so the artifacts
    // capture everything, including error paths up to the throw.
    std::unique_ptr<mc::telemetry::TraceRecorder> recorder;
    if (!options.trace_out.empty()) {
      recorder = std::make_unique<mc::telemetry::TraceRecorder>();
    }
    const int rc = run(options, recorder.get());
    if (!options.telemetry_out.empty()) {
      std::ofstream out(options.telemetry_out);
      MC_CHECK(out.good(), "cannot open --telemetry-out file");
      out << mc::telemetry::to_json(
                 mc::telemetry::MetricRegistry::process_default().snapshot())
          << '\n';
    }
    if (recorder) {
      std::ofstream out(options.trace_out);
      MC_CHECK(out.good(), "cannot open --trace-out file");
      mc::telemetry::write_chrome_trace(out, recorder->drain());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
