// Internal rule entry points for the tier-2 engine (analyzer.cpp drives
// them; tests go through Analyzer).  Each appends unsuppressed findings —
// the analyzer applies suppressions, allowlists, and ordering.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "linter.hpp"
#include "source.hpp"
#include "token.hpp"

namespace mc::lint::rules {

/// Token-stream port of the ten tier-1 rules, in the tier-1 execution
/// order (token rules, bounds, pipeline, format, catch, adhoc-stats).
void legacy_port(const ScannedSource& src, const std::vector<Token>& toks,
                 const std::string& file, std::vector<Finding>& out);

void fallible_discard(const std::vector<Token>& toks, const FunctionIndex& idx,
                      const std::string& file, std::vector<Finding>& out);

void sim_determinism(const std::vector<Token>& toks, const std::string& file,
                     std::vector<Finding>& out);

void guest_taint(const std::vector<Token>& toks, const std::string& file,
                 std::vector<Finding>& out);

void hotpath_copy(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out);

void watch_bypass(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out);

void shard_bypass(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out);

/// Global rule: needs the complete index.  Emits findings only for files
/// in `report_files` (the analyzed set — indexed-only files are context).
void lock_order(const FunctionIndex& idx,
                const std::set<std::string>& report_files,
                std::vector<Finding>& out);

}  // namespace mc::lint::rules
