#include "token.hpp"

#include <cctype>

namespace mc::lint {

namespace {

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character operators, longest first within each leading char —
/// tried in order, so e.g. `<<=` wins over `<<` wins over `<`.
constexpr const char* kMultiPunct[] = {
    "...", "->*", "<<=", ">>=", "::", "->", ".*", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",
};

}  // namespace

std::vector<Token> tokenize(const ScannedSource& src) {
  std::vector<Token> out;
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    // Preprocessor lines are tokenized like any other ('#' is a punct):
    // tier 1 scans them too, and the differential guarantee requires the
    // two engines to see the same text.
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<int>(li + 1);
      t.col = static_cast<int>(i);
      if (is_ident_start(c)) {
        std::size_t end = i;
        while (end < line.size() && is_word_char(line[end])) {
          ++end;
        }
        t.kind = Tok::kIdent;
        t.text = line.substr(i, end - i);
        i = end;
      } else if (is_digit(c)) {
        // pp-number: digits, word chars, dots, and exponent signs.
        std::size_t end = i + 1;
        while (end < line.size()) {
          const char d = line[end];
          if (is_word_char(d) || d == '.') {
            ++end;
          } else if ((d == '+' || d == '-') && end > i &&
                     (line[end - 1] == 'e' || line[end - 1] == 'E' ||
                      line[end - 1] == 'p' || line[end - 1] == 'P')) {
            ++end;
          } else {
            break;
          }
        }
        t.kind = Tok::kNumber;
        t.text = line.substr(i, end - i);
        i = end;
      } else if (c == '"') {
        // The stripper blanked the contents but kept both quotes, and a
        // literal never spans sanitized lines.
        std::size_t end = line.find('"', i + 1);
        end = end == std::string::npos ? line.size() : end + 1;
        t.kind = Tok::kString;
        t.text = line.substr(i, end - i);
        i = end;
      } else if (c == '\'') {
        std::size_t end = line.find('\'', i + 1);
        end = end == std::string::npos ? line.size() : end + 1;
        t.kind = Tok::kChar;
        t.text = line.substr(i, end - i);
        i = end;
      } else {
        t.kind = Tok::kPunct;
        t.text = std::string(1, c);
        for (const char* op : kMultiPunct) {
          const std::size_t n = std::char_traits<char>::length(op);
          if (line.compare(i, n, op) == 0) {
            t.text = op;
            break;
          }
        }
        i += t.text.size();
      }
      out.push_back(std::move(t));
    }
  }
  return out;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open_idx,
                          const char* open, const char* close) {
  const bool angle = close[0] == '>';
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      continue;
    }
    if (t.text == open) {
      ++depth;
    } else if (t.text == close) {
      if (--depth == 0) {
        return i;
      }
    } else if (angle && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close_idx, const char* open,
                           const char* close) {
  int depth = 0;
  for (std::size_t i = close_idx + 1; i-- > 0;) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      continue;
    }
    if (t.text == close) {
      ++depth;
    } else if (t.text == open) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

}  // namespace mc::lint
