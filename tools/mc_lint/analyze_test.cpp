// mc_analyze self-tests: fixture files per semantic rule (true positives
// at exact lines, suppressed sites, near-miss negatives), the differential
// guarantee (the tier-2 legacy port reports byte-identical findings to the
// tier-1 scanner over src/ and every fixture), cross-file indexing, option
// plumbing, SARIF structure, and per-file error resilience.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "linter.hpp"
#include "sarif.hpp"

namespace {

using mc::lint::AnalyzeOptions;
using mc::lint::AnalyzeResult;
using mc::lint::Analyzer;
using mc::lint::Finding;

std::string fixture(const std::string& name) {
  return std::string(MC_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs the tier-2 engine over one fixture file in isolation.
AnalyzeResult analyze_fixture(const std::string& name,
                              const AnalyzeOptions& opts = {}) {
  Analyzer a;
  const std::string path = fixture(name);
  a.add_source(path, read_file(path));
  return a.run(opts);
}

/// The 1-based lines on which `rule` fired.
std::vector<int> lines_of(const AnalyzeResult& result,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) {
      lines.push_back(f.line);
    }
  }
  return lines;
}

/// Every *.cpp / *.hpp under `root`, sorted.
std::vector<std::string> tree_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ---- Catalog ---------------------------------------------------------------

TEST(AnalyzeCatalog, SeventeenRules) {
  const auto ids = mc::lint::all_rule_ids();
  ASSERT_EQ(ids.size(), 17u);
  for (const char* rule :
       {"fallible-discard", "lock-order", "sim-determinism", "guest-taint",
        "hotpath-copy", "watch-bypass", "shard-bypass"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end()) << rule;
  }
  // The tier-1 catalog rides along unchanged.
  for (const std::string& rule : mc::lint::rule_ids()) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end()) << rule;
  }
}

// ---- fallible-discard ------------------------------------------------------

TEST(AnalyzeFixtures, FallibleDiscard) {
  const auto result = analyze_fixture("fallible_discard.cpp");
  EXPECT_EQ(lines_of(result, "fallible-discard"),
            (std::vector<int>{16, 17, 18, 19}));
  // Nothing else fires: the suppressed site and every sanctioned use stay
  // quiet, and no other rule triggers on this fixture.
  EXPECT_EQ(result.findings.size(), 4u);
}

TEST(AnalyzeIndex, CrossFileDiscard) {
  Analyzer a;
  a.index_source("api.hpp",
                 "[[nodiscard]] Fallible<int> try_load();\n"
                 "MaybeFault try_flush();\n");
  a.add_source("caller.cpp",
               "void f() {\n"
               "  try_load();\n"
               "  try_flush();\n"
               "  Fallible<int> r = try_load();\n"
               "}\n");
  const auto result = a.run();
  EXPECT_EQ(lines_of(result, "fallible-discard"), (std::vector<int>{2, 3}));
  // The index recorded the return types and the [[nodiscard]] annotation.
  const auto& decls = a.index().decls();
  ASSERT_TRUE(decls.count("try_load") > 0);
  EXPECT_EQ(decls.at("try_load").return_type, "Fallible<int>");
  EXPECT_TRUE(decls.at("try_load").nodiscard);
  ASSERT_TRUE(decls.count("try_flush") > 0);
  EXPECT_EQ(decls.at("try_flush").return_type, "MaybeFault");
  EXPECT_FALSE(decls.at("try_flush").nodiscard);
}

// ---- lock-order ------------------------------------------------------------

TEST(AnalyzeFixtures, LockOrderAbba) {
  const auto result = analyze_fixture("lock_order_abba.cpp");
  EXPECT_EQ(lines_of(result, "lock-order"), (std::vector<int>{18, 23}));
  EXPECT_EQ(result.findings.size(), 2u);
  // Each message cross-references the opposite site.
  EXPECT_NE(result.findings[0].message.find("bad_second"), std::string::npos);
  EXPECT_NE(result.findings[1].message.find("bad_first"), std::string::npos);
}

TEST(AnalyzeFixtures, LockOrderServiceBlocking) {
  const auto result = analyze_fixture("lock_order_service.cpp");
  EXPECT_EQ(lines_of(result, "lock-order"), (std::vector<int>{20, 21}));
  EXPECT_EQ(result.findings.size(), 2u);
}

TEST(AnalyzeFixtures, LockOrderInlinesOneCallLevel) {
  // f holds `a_` and calls g, which acquires `b_`; h takes them in the
  // opposite order directly.  The inversion is only visible through the
  // one-level inline.
  Analyzer a;
  a.add_source("inline.cpp",
               "void g() {\n"
               "  std::scoped_lock lb(b_);\n"
               "}\n"
               "void f() {\n"
               "  std::scoped_lock la(a_);\n"
               "  g();\n"
               "}\n"
               "void h() {\n"
               "  std::scoped_lock lb(b_);\n"
               "  std::scoped_lock la(a_);\n"
               "}\n");
  const auto result = a.run();
  const auto lines = lines_of(result, "lock-order");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 6);   // the call site in f carries the a_->b_ edge
  EXPECT_EQ(lines[1], 10);  // the direct b_->a_ acquisition in h
}

// ---- sim-determinism -------------------------------------------------------

TEST(AnalyzeFixtures, SimDeterminism) {
  const auto result = analyze_fixture("sim_determinism.cpp");
  EXPECT_EQ(lines_of(result, "sim-determinism"),
            (std::vector<int>{17, 18, 19, 28}));
  EXPECT_EQ(result.findings.size(), 4u);
}

TEST(AnalyzeFixtures, SimDeterminismIgnoresHostTimeTus) {
  // Same constructs, no simulated-time vocabulary: not our business.
  const auto result = analyze_fixture("sim_determinism_free.cpp");
  EXPECT_TRUE(result.findings.empty());
}

// ---- guest-taint -----------------------------------------------------------

TEST(AnalyzeFixtures, GuestTaint) {
  const auto result = analyze_fixture("guest_taint.cpp");
  EXPECT_EQ(lines_of(result, "guest-taint"),
            (std::vector<int>{9, 11, 13, 39}));
  EXPECT_EQ(result.findings.size(), 4u);
}

// ---- hotpath-copy ----------------------------------------------------------

TEST(AnalyzeFixtures, HotpathCopy) {
  const auto result = analyze_fixture("hotpath_copy.cpp");
  // Line 13 carries two findings: the owned `Bytes` declaration and the
  // allocating content_copy() call.  The suppressed dump site, the arena /
  // caller-scratch copies and the pairwise *assignment* stay quiet.
  EXPECT_EQ(lines_of(result, "hotpath-copy"), (std::vector<int>{13, 13, 32}));
  EXPECT_EQ(result.findings.size(), 3u);
}

TEST(AnalyzeFixtures, HotpathCopyIgnoresDispatchedAndColdTus) {
  // Same constructs in a TU that routes through the simd dispatcher: the
  // pairwise compare is the guarded scalar tail, not a bypass.
  Analyzer a;
  a.add_source("dispatched.cpp",
               "void tail(const unsigned char* a, const unsigned char* b,\n"
               "          int n, int j) {\n"
               "  adjust_rvas(a, 1, b, 2);\n"
               "  j = simd::mismatch(a, b, n, 0);\n"
               "  if (a[j] != b[j]) { consume(j); }\n"
               "}\n");
  // And without the hot-path vocabulary the rule is not our business.
  a.add_source("cold.cpp",
               "void f(const Item& item) {\n"
               "  Bytes flat = item.content_copy();\n"
               "  consume(flat);\n"
               "}\n");
  const auto result = a.run();
  EXPECT_TRUE(lines_of(result, "hotpath-copy").empty());
}

// ---- watch-bypass ----------------------------------------------------------

TEST(AnalyzeFixtures, WatchBypass) {
  const auto result = analyze_fixture("watch_bypass.cpp");
  // The version sweep and the raw counter poll fire; the suppressed debug
  // probe, the WriteWatch query and the bare identifier stay quiet.
  EXPECT_EQ(lines_of(result, "watch-bypass"), (std::vector<int>{10, 18}));
  EXPECT_EQ(result.findings.size(), 2u);
}

TEST(AnalyzeFixtures, WatchBypassSanctionedTus) {
  // The facility and its producer legitimately touch the raw stamps: any
  // path mentioning write_watch or phys_mem is exempt wholesale.
  const std::string body = read_file(fixture("watch_bypass.cpp"));
  for (const char* name : {"src/vmm/write_watch.cpp", "src/vmm/phys_mem.cpp",
                           "vmm/write_watch_extra.hpp"}) {
    Analyzer a;
    a.add_source(name, body);
    EXPECT_TRUE(lines_of(a.run(), "watch-bypass").empty()) << name;
  }
}

// ---- shard-bypass ----------------------------------------------------------

TEST(AnalyzeFixtures, ShardBypass) {
  const auto result = analyze_fixture("shard_bypass.cpp");
  // Stack, new and make_unique/make_shared constructions fire; the
  // ShardCoordinator path, the reference parameter, the qualified nested
  // type and the suppressed harness stay quiet.
  EXPECT_EQ(lines_of(result, "shard-bypass"),
            (std::vector<int>{9, 14, 19, 20}));
  EXPECT_EQ(result.findings.size(), 4u);
}

TEST(AnalyzeFixtures, ShardBypassSanctionedTus) {
  // The service layer owns the guarded types, and tests exercise their
  // internals on purpose: both path families are exempt wholesale.
  const std::string body = read_file(fixture("shard_bypass.cpp"));
  for (const char* name :
       {"src/service/coordinator.cpp", "src/service/fleet_extra.hpp",
        "tests/shard_coordinator_test.cpp"}) {
    Analyzer a;
    a.add_source(name, body);
    EXPECT_TRUE(lines_of(a.run(), "shard-bypass").empty()) << name;
  }
}

// ---- Differential guarantee ------------------------------------------------

TEST(AnalyzeDifferential, LegacyPortMatchesTier1) {
  // The tier-2 port of the ten tier-1 rules must report byte-identical
  // findings on every real translation unit and every fixture — src/ (the
  // clean corpus), the tier-1 fixtures (22 deliberate violations), and the
  // tier-2 fixtures.
  std::vector<std::string> files = tree_files(MC_LINT_SRC_DIR);
  for (const auto& f : tree_files(MC_LINT_FIXTURE_DIR)) {
    files.push_back(f);
  }
  for (const auto& f : tree_files(MC_ANALYZE_FIXTURE_DIR)) {
    files.push_back(f);
  }
  ASSERT_GT(files.size(), 30u);
  std::size_t total = 0;
  for (const std::string& file : files) {
    const std::string content = read_file(file);
    const auto tier1 = mc::lint::lint_source(file, content);
    const auto tier2 = Analyzer::legacy_findings(file, content);
    ASSERT_EQ(tier1.size(), tier2.size()) << file;
    for (std::size_t i = 0; i < tier1.size(); ++i) {
      EXPECT_EQ(mc::lint::format_finding(tier1[i]),
                mc::lint::format_finding(tier2[i]))
          << file;
    }
    total += tier1.size();
  }
  EXPECT_GE(total, 22u);  // the tier-1 fixture corpus alone contributes 22
}

// ---- Options ---------------------------------------------------------------

TEST(AnalyzeOptionsTest, DisabledRuleIsSkipped) {
  AnalyzeOptions opts;
  opts.disabled.insert("guest-taint");
  const auto result = analyze_fixture("guest_taint.cpp", opts);
  EXPECT_TRUE(result.findings.empty());
}

TEST(AnalyzeOptionsTest, AllowPathDropsMatchingFiles) {
  AnalyzeOptions opts;
  opts.allow_paths.emplace_back("guest-taint", "fixtures_analyze");
  const auto result = analyze_fixture("guest_taint.cpp", opts);
  EXPECT_TRUE(result.findings.empty());
  // A non-matching substring changes nothing.
  AnalyzeOptions miss;
  miss.allow_paths.emplace_back("guest-taint", "no/such/dir");
  EXPECT_EQ(analyze_fixture("guest_taint.cpp", miss).findings.size(), 4u);
}

// ---- SARIF -----------------------------------------------------------------

TEST(AnalyzeSarif, StructurallyValid) {
  const auto result = analyze_fixture("guest_taint.cpp");
  ASSERT_FALSE(result.findings.empty());
  const std::string sarif =
      mc::lint::to_sarif(result.findings, mc::lint::all_rule_ids());

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"mc_analyze\""), std::string::npos);
  for (const std::string& rule : mc::lint::all_rule_ids()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\"}"), std::string::npos)
        << rule;
  }
  for (const Finding& f : result.findings) {
    EXPECT_NE(sarif.find("\"startLine\": " + std::to_string(f.line)),
              std::string::npos);
  }
  // Balanced structure and no raw control characters (the JSON must parse;
  // CI additionally validates with a real parser).
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
            std::count(sarif.begin(), sarif.end(), ']'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '"') % 2, 0);
}

TEST(AnalyzeSarif, EscapesMessageText) {
  const std::vector<Finding> findings = {
      {"dir/f.cpp", 3, "guest-taint", "quote \" backslash \\ tab \t done"}};
  const std::string sarif =
      mc::lint::to_sarif(findings, mc::lint::all_rule_ids());
  EXPECT_NE(sarif.find("quote \\\" backslash \\\\ tab \\t done"),
            std::string::npos);
  EXPECT_EQ(sarif.find('\t'), std::string::npos);
}

// ---- Error resilience ------------------------------------------------------

TEST(AnalyzeErrors, WalkContinuesPastUnreadableFiles) {
  std::vector<std::string> errors;
  const auto findings =
      mc::lint::lint_tree("/no/such/path/anywhere.cpp", &errors);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("/no/such/path/anywhere.cpp"), std::string::npos);
}

TEST(AnalyzeErrors, LegacyThrowingContractKept) {
  EXPECT_THROW(mc::lint::lint_tree("/no/such/path/anywhere.cpp"),
               std::exception);
}

TEST(AnalyzeErrors, AnalyzerSurfacesRecordedErrors) {
  Analyzer a;
  a.add_error("gone.cpp: cannot read");
  a.add_source("ok.cpp", "void f() {}\n");
  const auto result = a.run();
  EXPECT_TRUE(result.findings.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], "gone.cpp: cannot read");
}

}  // namespace
