// Token-stream port of the ten tier-1 rules.
//
// The port is required to be *finding-identical* to the line scanner over
// real code (the differential self-test runs both engines over src/ and
// the fixture corpus and compares byte-for-byte), so each rule below
// deliberately mirrors the tier-1 quirks it inherits — first-match-per-line
// token rules, line-granular bounds validation, same-line construction
// syntax — rather than "improving" them silently.  Semantic improvements
// belong in new rules, where they are visible in the catalog.
#include <algorithm>

#include "rules.hpp"

namespace mc::lint::rules {

namespace {

/// Token indices grouped by 0-based line.
std::vector<std::vector<std::size_t>> by_line(const ScannedSource& src,
                                              const std::vector<Token>& toks) {
  std::vector<std::vector<std::size_t>> lines(src.code.size());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto li = static_cast<std::size_t>(toks[i].line - 1);
    if (li < lines.size()) {
      lines[li].push_back(i);
    }
  }
  return lines;
}

struct TokenRule {
  const char* token;
  const char* rule;
  const char* message;
};

constexpr TokenRule kTokenRules[] = {
    {"reinterpret_cast", "raw-reinterpret-cast",
     "raw reinterpret_cast on guest data; use mc::as_bytes / util/bytes.hpp"},
    {"memcpy", "raw-memcpy",
     "raw memcpy; use mc::copy_bytes / load_le* / store_le* (bounds-checked)"},
    {"rand", "std-rand",
     "std::rand is not reproducible; use the seeded generators in "
     "util/rng.hpp"},
    {"srand", "std-rand",
     "srand is not reproducible; use the seeded generators in util/rng.hpp"},
    {"new", "naked-new",
     "naked new; express ownership with std::make_unique/std::make_shared "
     "(R.11)"},
    {"delete", "naked-delete",
     "naked delete; express ownership with std::unique_ptr (R.11)"},
};

void token_rules(const std::vector<Token>& toks,
                 const std::vector<std::vector<std::size_t>>& lines,
                 const std::string& file, std::vector<Finding>& out) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    for (const TokenRule& tr : kTokenRules) {
      // First occurrence per line per rule entry, as in tier 1.
      for (const std::size_t ti : lines[li]) {
        const Token& t = toks[ti];
        if (t.kind != Tok::kIdent || t.text != tr.token) {
          continue;
        }
        bool skip = false;
        if (t.text == "delete" && ti > 0) {
          const Token& prev = toks[ti - 1];
          // `= delete` declarations (tier 1 looks at the preceding
          // non-space character on the same line).
          skip = prev.line == t.line && !prev.text.empty() &&
                 prev.text.back() == '=';
        }
        if (!skip) {
          out.push_back({file, t.line, tr.rule, tr.message});
        }
        break;  // this rule entry is done for this line either way
      }
    }
  }
}

void bounds_rule(const std::vector<Token>& toks,
                 const std::vector<std::vector<std::size_t>>& lines,
                 const std::string& file, std::vector<Finding>& out) {
  struct Scope {
    std::vector<std::string> params;
    int close_depth = 0;
    bool validated = false;
  };
  std::vector<Scope> scopes;
  std::vector<std::string> pending;
  int depth = 0;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::size_t>& line = lines[li];

    // 1. Collect `(Mutable)ByteView <ident>` parameters (tier-1 scans
    //    MutableByteView occurrences first, then ByteView).
    for (const char* type : {"MutableByteView", "ByteView"}) {
      for (std::size_t k = 0; k < line.size(); ++k) {
        const Token& t = toks[line[k]];
        if (t.kind == Tok::kIdent && t.text == type && k + 1 < line.size() &&
            toks[line[k + 1]].kind == Tok::kIdent) {
          pending.push_back(toks[line[k + 1]].text);
        }
      }
    }

    // 2. Validation / subscript checks against the innermost scope.
    if (!scopes.empty()) {
      Scope& scope = scopes.back();
      bool validated_here = false;
      for (std::size_t k = 0; k < line.size() && !validated_here; ++k) {
        const Token& t = toks[line[k]];
        if (t.kind == Tok::kIdent &&
            (t.text == "MC_CHECK" ||
             t.text.find("load_le") != std::string::npos ||
             t.text.find("store_le") != std::string::npos)) {
          validated_here = true;
        }
        // `.size()` with exact adjacency, as the tier-1 substring match.
        if (is_punct(t, ".") && k + 3 < line.size()) {
          const Token& a = toks[line[k + 1]];
          const Token& b = toks[line[k + 2]];
          const Token& c = toks[line[k + 3]];
          if (is_ident(a, "size") && a.col == t.col + 1 && is_punct(b, "(") &&
              b.col == t.col + 5 && is_punct(c, ")") && c.col == t.col + 6) {
            validated_here = true;
          }
        }
      }
      if (validated_here) {
        scope.validated = true;
      } else if (!scope.validated) {
        for (const std::string& param : scope.params) {
          for (std::size_t k = 0; k < line.size(); ++k) {
            const Token& t = toks[line[k]];
            if (t.kind == Tok::kIdent && t.text == param &&
                k + 1 < line.size() && is_punct(toks[line[k + 1]], "[")) {
              out.push_back(
                  {file, t.line, "parser-bounds-check",
                   "ByteView parameter '" + param +
                       "' indexed before MC_CHECK/size validation"});
            }
          }
        }
      }
    }

    // 3. Brace/terminator tracking.
    for (const std::size_t ti : line) {
      const Token& t = toks[ti];
      if (t.kind != Tok::kPunct) {
        continue;
      }
      if (t.text == "{") {
        if (!pending.empty()) {
          scopes.push_back({pending, depth, false});
          pending.clear();
        }
        ++depth;
      } else if (t.text == "}") {
        --depth;
        if (!scopes.empty() && depth <= scopes.back().close_depth) {
          scopes.pop_back();
        }
      } else if (t.text == ";") {
        pending.clear();
      }
    }
  }
}

void pipeline_rule(const std::vector<Token>& toks,
                   const std::vector<std::vector<std::size_t>>& lines,
                   const std::string& file, std::vector<Finding>& out) {
  if (pipeline_component_owner(file)) {
    return;
  }
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::size_t>& line = lines[li];
    for (const char* type : {"ModuleSearcher", "ModuleParser"}) {
      for (std::size_t k = 0; k < line.size(); ++k) {
        const Token& t = toks[line[k]];
        if (t.kind != Tok::kIdent || t.text != type) {
          continue;
        }
        if (k > 0) {
          const Token& prev = toks[line[k - 1]];
          if (prev.kind == Tok::kIdent &&
              (prev.text == "class" || prev.text == "struct" ||
               prev.text == "friend")) {
            continue;
          }
        }
        bool construction = false;
        if (k + 1 < line.size()) {
          const Token& next = toks[line[k + 1]];
          if (is_punct(next, "(")) {
            construction = true;  // temporary: ModuleSearcher(session)
          } else if (next.kind == Tok::kIdent && k + 2 < line.size()) {
            const Token& after = toks[line[k + 2]];
            // `(`/`{`: explicit construction; `;`/`=`: default-constructed
            // local or owning member.  First-char match mirrors the tier-1
            // single-character test.
            const char c = after.kind == Tok::kPunct && !after.text.empty()
                               ? after.text[0]
                               : '\0';
            construction = c == '(' || c == '{' || c == ';' || c == '=';
          }
        }
        if (construction) {
          out.push_back(
              {file, t.line, "pipeline-bypass",
               std::string(type) +
                   " constructed outside the CheckPipeline; drive the "
                   "AcquireStage/ParseStage of modchecker/pipeline.hpp "
                   "instead"});
        }
      }
    }
  }
}

void format_rule(const std::vector<Token>& toks,
                 const std::vector<std::vector<std::size_t>>& lines,
                 const std::string& file, std::vector<Finding>& out) {
  if (format_plugin_owner(file)) {
    return;
  }
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::size_t>& line = lines[li];
    for (const char* type : {"ParsedImage", "ElfImage"}) {
      for (std::size_t k = 0; k < line.size(); ++k) {
        const Token& t = toks[line[k]];
        if (t.kind != Tok::kIdent || t.text != type) {
          continue;
        }
        if (k > 0) {
          const Token& prev = toks[line[k - 1]];
          if (prev.kind == Tok::kIdent &&
              (prev.text == "class" || prev.text == "struct" ||
               prev.text == "friend")) {
            continue;
          }
        }
        bool construction = false;
        if (k + 1 < line.size()) {
          const Token& next = toks[line[k + 1]];
          if (is_punct(next, "(")) {
            construction = true;  // temporary: pe::ParsedImage(view)
          } else if (next.kind == Tok::kIdent && k + 2 < line.size()) {
            const Token& after = toks[line[k + 2]];
            const char c = after.kind == Tok::kPunct && !after.text.empty()
                               ? after.text[0]
                               : '\0';
            construction = c == '(' || c == '{' || c == ';' || c == '=';
          }
        }
        if (construction) {
          out.push_back(
              {file, t.line, "format-bypass",
               std::string(type) +
                   " constructed outside its format plugin; resolve "
                   "the module through the core::FormatRegistry "
                   "(modchecker/format.hpp) instead"});
        }
      }
    }
  }
}

void catch_rule(const std::vector<Token>& toks, const std::string& file,
                std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "catch")) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) {
      continue;  // not a handler clause
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string::npos) {
      continue;  // unbalanced — stay quiet
    }
    std::string param;
    for (std::size_t k = i + 2; k < close; ++k) {
      param += toks[k].text;
    }
    if (param == "...") {
      out.push_back(
          {file, toks[i].line, "catch-swallow",
           "catch (...) swallows every fault; catch a typed error and "
           "convert it into a FaultRecord (util/fault.hpp) or rethrow"});
      continue;
    }
    if (close + 1 >= toks.size() || !is_punct(toks[close + 1], "{")) {
      continue;
    }
    const std::size_t body_end = match_forward(toks, close + 1, "{", "}");
    if (body_end == std::string::npos) {
      continue;
    }
    if (body_end == close + 2) {  // no tokens between the braces
      out.push_back(
          {file, toks[i].line, "catch-swallow",
           "empty catch body swallows the fault; handle it, record a "
           "FaultRecord, or rethrow"});
    }
  }
}

void adhoc_stats_rule(const std::vector<Token>& toks,
                      const std::vector<std::vector<std::size_t>>& lines,
                      const std::string& file, std::vector<Finding>& out) {
  if (telemetry_owner(file)) {
    return;
  }
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::vector<std::size_t>& line = lines[li];
    for (std::size_t k = 0; k < line.size(); ++k) {
      const Token& t = toks[line[k]];
      if (!is_ident(t, "struct") || k + 1 >= line.size()) {
        continue;
      }
      const Token& name_tok = toks[line[k + 1]];
      if (name_tok.kind != Tok::kIdent) {
        continue;  // anonymous struct
      }
      const std::string& name = name_tok.text;
      if (name != "Stats" &&
          (name.size() < 5 ||
           name.compare(name.size() - 5, 5, "Stats") != 0)) {
        continue;
      }
      // A `{` must follow the name on the same line (definitions only).
      const int name_end = name_tok.col + static_cast<int>(name.size());
      bool has_brace = false;
      for (std::size_t m = k + 2; m < line.size(); ++m) {
        if (is_punct(toks[line[m]], "{") && toks[line[m]].col >= name_end) {
          has_brace = true;
          break;
        }
      }
      if (!has_brace) {
        continue;
      }
      out.push_back(
          {file, t.line, "adhoc-stats",
           "ad-hoc stats struct '" + name +
               "'; counters belong in the telemetry registry "
               "(src/telemetry/registry.hpp)"});
    }
  }
}

}  // namespace

void legacy_port(const ScannedSource& src, const std::vector<Token>& toks,
                 const std::string& file, std::vector<Finding>& out) {
  const auto lines = by_line(src, toks);
  token_rules(toks, lines, file, out);
  bounds_rule(toks, lines, file, out);
  pipeline_rule(toks, lines, file, out);
  format_rule(toks, lines, file, out);
  catch_rule(toks, file, out);
  adhoc_stats_rule(toks, lines, file, out);
}

}  // namespace mc::lint::rules
