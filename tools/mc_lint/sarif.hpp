// SARIF 2.1.0 serialization of analysis results — the interchange format
// GitHub code scanning ingests.  One run, one driver ("mc_analyze"), the
// full rule catalog in tool.driver.rules, one result per finding with a
// physicalLocation (uri + startLine).
#pragma once

#include <string>
#include <vector>

#include "linter.hpp"

namespace mc::lint {

/// Serializes findings as a SARIF 2.1.0 log.  `rules` is the catalog to
/// declare in tool.driver.rules; every finding's rule must be present (the
/// result's ruleIndex points into this list).
std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<std::string>& rules);

}  // namespace mc::lint
