// mc_lint self-tests: fixture files with known violations (exact rule IDs
// and line numbers), the suppression mechanism, and the comment/string
// stripper's corner cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "linter.hpp"

namespace {

using mc::lint::Finding;
using mc::lint::lint_file;
using mc::lint::lint_source;
using mc::lint::lint_tree;

std::string fixture(const std::string& name) {
  return std::string(MC_LINT_FIXTURE_DIR) + "/" + name;
}

TEST(LintRules, CatalogIsStable) {
  const auto& ids = mc::lint::rule_ids();
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "raw-reinterpret-cast"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "parser-bounds-check"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "pipeline-bypass"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "format-bypass"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "catch-swallow"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "adhoc-stats"), ids.end());
}

TEST(LintFixtures, RawReinterpretCast) {
  const auto findings = lint_file(fixture("raw_reinterpret_cast.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-reinterpret-cast");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LintFixtures, RawMemcpy) {
  const auto findings = lint_file(fixture("raw_memcpy.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-memcpy");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LintFixtures, StdRand) {
  const auto findings = lint_file(fixture("std_rand.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "std-rand");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_EQ(findings[1].rule, "std-rand");
  EXPECT_EQ(findings[1].line, 7);
}

TEST(LintFixtures, NakedNewAndDelete) {
  const auto findings = lint_file(fixture("naked_new.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "naked-new");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_EQ(findings[1].rule, "naked-delete");
  EXPECT_EQ(findings[1].line, 7);
}

TEST(LintFixtures, ParserBoundsCheck) {
  const auto findings = lint_file(fixture("bounds.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "parser-bounds-check");
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_NE(findings[0].message.find("'image'"), std::string::npos);
}

TEST(LintFixtures, PipelineBypass) {
  // Flagged: the owning member (8), the named local (12), the temporary
  // (13) and the default-constructed local (14).  Not flagged: the forward
  // declaration (5), the allow()-escaped construction (16) and the
  // reference/pointer parameters (20).
  const auto findings = lint_file(fixture("pipeline_bypass.cpp"));
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "pipeline-bypass");
  }
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_EQ(findings[1].line, 12);
  EXPECT_EQ(findings[2].line, 13);
  EXPECT_EQ(findings[3].line, 14);
}

TEST(LintFixtures, FormatBypass) {
  // Flagged: the owning member (8), the named local (12), the temporary
  // (13) and the default-constructed local (14).  Not flagged: the forward
  // declaration (5), the allow()-escaped construction (16) and the
  // reference/pointer parameters (20).
  const auto findings = lint_file(fixture("format_bypass.cpp"));
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "format-bypass");
  }
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_EQ(findings[1].line, 12);
  EXPECT_EQ(findings[2].line, 13);
  EXPECT_EQ(findings[3].line, 14);
}

TEST(LintFixtures, CatchSwallow) {
  // Flagged: the same-line catch-all (7), the empty typed handler (12),
  // the comment-only handler (21) and the multi-line catch-all (26).
  // Not flagged: the non-empty typed handler (16) and the
  // allow()-escaped catch-all (33).
  const auto findings = lint_file(fixture("catch_swallow.cpp"));
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "catch-swallow");
  }
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_EQ(findings[1].line, 12);
  EXPECT_EQ(findings[2].line, 21);
  EXPECT_EQ(findings[3].line, 26);
  EXPECT_NE(findings[0].message.find("catch (...)"), std::string::npos);
  EXPECT_NE(findings[1].message.find("empty catch body"), std::string::npos);
}

TEST(LintFixtures, AdhocStats) {
  // Flagged: the named stats struct (5) and the bare `struct Stats` (9).
  // Not flagged: the forward declaration (11), the allow()-escaped
  // definition (14) and the non-Stats struct (18).
  const auto findings = lint_file(fixture("adhoc_stats.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "adhoc-stats");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'ScanStats'"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "adhoc-stats");
  EXPECT_EQ(findings[1].line, 9);
}

TEST(LintSource, TelemetryOwnsItsStatsStructs) {
  const std::string body = "struct ReaderStats { int n = 0; };\n";
  EXPECT_TRUE(lint_source("src/telemetry/registry.hpp", body).empty());
  EXPECT_TRUE(lint_source("/abs/src/telemetry/internal.cpp", body).empty());
  EXPECT_EQ(lint_source("src/vmi/session.hpp", body).size(), 1u);
}

TEST(LintSource, TypedNonEmptyHandlerIsClean) {
  const auto findings = lint_source(
      "ok.cpp",
      "void f() {\n"
      "  try { g(); } catch (const VmiError& e) { record(e); }\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, CatchBodyHoldingOnlyAStringIsNotEmpty) {
  // The stripper blanks string *contents* but keeps the quotes, so a body
  // that does something with a literal must not read as whitespace-only.
  const auto findings = lint_source(
      "str.cpp",
      "void f() {\n"
      "  try { g(); } catch (const VmiError&) { log(\"vmi\"); }\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, PipelineOwnersAreExempt) {
  const std::string body = "ModuleSearcher searcher(session);\n";
  EXPECT_TRUE(lint_source("src/modchecker/pipeline.cpp", body).empty());
  EXPECT_TRUE(lint_source("src/modchecker/searcher.cpp", body).empty());
  EXPECT_TRUE(lint_source("/abs/path/src/modchecker/parser.hpp", body).empty());
  EXPECT_EQ(lint_source("src/service/fleet.cpp", body).size(), 1u);
}

TEST(LintSource, FormatPluginOwnersAreExempt) {
  const std::string body = "const ParsedImage parsed(mapped);\n";
  EXPECT_TRUE(lint_source("src/pe/format_plugin.cpp", body).empty());
  EXPECT_TRUE(lint_source("/abs/src/elf/loader.cpp", body).empty());
  EXPECT_EQ(lint_source("src/baselines/disk_crossview.cpp", body).size(), 1u);
}

TEST(LintFixtures, SuppressionsSameLineAndPrecedingLine) {
  // Lines 6 and 8 are suppressed; line 9 carries an allow() for the WRONG
  // rule and must still be reported.
  const auto findings = lint_file(fixture("suppressed.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-memcpy");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(LintFixtures, CleanFileHasNoFindings) {
  const auto findings = lint_file(fixture("clean.cpp"));
  for (const auto& f : findings) {
    ADD_FAILURE() << mc::lint::format_finding(f);
  }
}

TEST(LintFixtures, TreeScanCoversEveryFixture) {
  // 2 + 1 + 1 + 2 + 2 + 1 + 1 + 4 + 4 + 4 + 0 findings across the directory.
  const auto findings = lint_tree(MC_LINT_FIXTURE_DIR);
  EXPECT_EQ(findings.size(), 22u);
}

TEST(LintSource, CommentsAndStringsDoNotFire) {
  const auto findings = lint_source("mem.cpp",
                                    "// memcpy(a, b, n)\n"
                                    "/* reinterpret_cast<int*>(p) */\n"
                                    "const char* s = \"delete new rand\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, BlockCommentSpanningLinesIsStripped) {
  const auto findings = lint_source("block.cpp",
                                    "/* first line\n"
                                    "   memcpy(a, b, n)\n"
                                    "   last */\n"
                                    "int x = 0;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, MemcpyAfterBlockCommentStillFires) {
  const auto findings =
      lint_source("mixed.cpp", "/* doc */ std::memcpy(a, b, n);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-memcpy");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintSource, SizeComparisonCountsAsValidation) {
  const auto findings = lint_source(
      "parse.cpp",
      "int parse(ByteView b) {\n"
      "  if (b.size() < 4) { return -1; }\n"
      "  return b[0];\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, LoadLeCountsAsValidation) {
  const auto findings =
      lint_source("parse.cpp",
                  "int parse(ByteView b) {\n"
                  "  const auto magic = load_le16(b, 0);\n"
                  "  return magic + b[2];\n"
                  "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, MutableByteViewParameterIsTracked) {
  const auto findings = lint_source("store.cpp",
                                    "void put(MutableByteView out) {\n"
                                    "  out[0] = 1;\n"
                                    "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "parser-bounds-check");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintSource, LocalByteViewDeclarationIsNotAParameter) {
  // A ByteView local introduced by a statement (terminated with ';')
  // must not leak into the next brace scope.
  const auto findings = lint_source("local.cpp",
                                    "void f() {\n"
                                    "  ByteView v = whole;\n"
                                    "  if (cond) {\n"
                                    "    use(v);\n"
                                    "  }\n"
                                    "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, FormatFindingIsGrepFriendly) {
  const Finding f{"src/pe/parser.cpp", 12, "raw-memcpy", "msg"};
  EXPECT_EQ(mc::lint::format_finding(f),
            "src/pe/parser.cpp:12: [raw-memcpy] msg");
}

TEST(LintSource, MultipleRulesInOneAllowList) {
  const auto findings = lint_source(
      "multi.cpp",
      "void* p = new int;  // mc-lint: allow(naked-new, raw-memcpy)\n");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
