// lock-order — deadlock and held-lock-blocking analysis over the index.
//
// The sweep path takes locks in three layers (FleetService pool registry,
// SweepQueue, pipeline stage state) and the TSan matrix only proves the
// orders that a particular run happened to exercise.  This rule checks the
// whole index statically:
//
//   * For every acquisition performed while another lock is held, record
//     the ordered edge (held -> acquired).  One call level is inlined
//     through the function index: `f` holding `a_` and calling `g`, which
//     acquires `b_`, contributes a->b.  Two edges in opposite directions
//     between the same pair is the classic ABBA inversion — flagged at
//     both sites, each message cross-referencing the other.
//   * A blocking operation (pool submit/wait_idle, condvar waits, guest
//     reads — see is_blocking_callee) performed while holding a
//     service-layer mutex (an acquisition inside src/service/ or a
//     "service" fixture) stalls every other sweep that needs the lock.
//     The condition-variable idiom `cv_.wait(lock, ...)` is excepted when
//     the wait is passed a held guard — that wait *releases* the lock.
//
// Mutexes are compared by expression text; an edge from a mutex onto a
// same-named mutex (e.g. two classes both naming their member `mutex_`) is
// skipped rather than reported, since name identity cannot prove object
// identity across classes.
#include <map>
#include <utility>

#include "rules.hpp"

namespace mc::lint::rules {

namespace {

struct Site {
  std::string file;
  std::string function;
  int line = 0;
};

bool service_layer(const std::string& file) {
  return file.find("service") != std::string::npos;
}

bool condvar_wait_exception(const FnEvent& e) {
  if (e.name != "wait" && e.name != "wait_for" && e.name != "wait_until") {
    return false;
  }
  for (const std::string& arg : e.args) {
    for (const HeldLock& h : e.held) {
      if (arg == h.guard) {
        return true;  // wait(lock, ...) releases the guard while waiting
      }
    }
  }
  return false;
}

bool summary_blocks(const FunctionSummary& s) {
  for (const FnEvent& e : s.events) {
    if (e.kind == FnEvent::Kind::kCall && is_blocking_callee(e.name) &&
        !condvar_wait_exception(e)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void lock_order(const FunctionIndex& idx,
                const std::set<std::string>& report_files,
                std::vector<Finding>& out) {
  // --- Acquisition-order edges (first site per direction wins). ----------
  std::map<std::pair<std::string, std::string>, Site> edges;
  const auto add_edge = [&](const std::string& a, const std::string& b,
                            const FunctionSummary& s, int line) {
    if (a == b) {
      return;  // same-named mutex across classes: not provably one object
    }
    edges.emplace(std::make_pair(a, b), Site{s.file, s.name, line});
  };

  for (const FunctionSummary& s : idx.summaries()) {
    for (const FnEvent& e : s.events) {
      if (e.kind == FnEvent::Kind::kAcquire) {
        for (const HeldLock& h : e.held) {
          add_edge(h.mutex, e.name, s, e.line);
        }
      } else if (!e.held.empty()) {
        // One-level inlining: locks the callee acquires are ordered after
        // every lock held at the call site.
        const FunctionSummary* callee = idx.summary(e.name);
        if (callee == nullptr || callee->name == s.name) {
          continue;
        }
        for (const HeldLock& h : e.held) {
          for (const std::string& m : callee->lock_order) {
            add_edge(h.mutex, m, s, e.line);
          }
        }
      }
    }
  }

  // --- ABBA inversions: both (a,b) and (b,a) recorded. -------------------
  for (const auto& [pair, site] : edges) {
    const auto& [a, b] = pair;
    if (a > b) {
      continue;  // handle each unordered pair once
    }
    const auto rev = edges.find(std::make_pair(b, a));
    if (rev == edges.end()) {
      continue;
    }
    const auto report = [&](const std::string& x, const std::string& y,
                            const Site& here, const Site& there) {
      if (report_files.count(here.file) == 0) {
        return;
      }
      out.push_back(
          {here.file, here.line, "lock-order",
           "'" + y + "' acquired while holding '" + x + "' in " +
               here.function + "(), but the opposite order exists at " +
               there.file + ":" + std::to_string(there.line) + " (" +
               there.function + "()); pick one order (deadlock risk)"});
    };
    report(a, b, site, rev->second);
    report(b, a, rev->second, site);
  }

  // --- Blocking calls under a service-layer mutex. -----------------------
  for (const FunctionSummary& s : idx.summaries()) {
    if (!service_layer(s.file) || report_files.count(s.file) == 0) {
      continue;
    }
    for (const FnEvent& e : s.events) {
      if (e.kind != FnEvent::Kind::kCall || e.held.empty()) {
        continue;
      }
      if (condvar_wait_exception(e)) {
        continue;
      }
      bool blocks = is_blocking_callee(e.name);
      if (!blocks) {
        const FunctionSummary* callee = idx.summary(e.name);
        blocks = callee != nullptr && callee->name != s.name &&
                 summary_blocks(*callee);
      }
      if (!blocks) {
        continue;
      }
      const HeldLock& h = e.held.back();
      out.push_back(
          {s.file, e.line, "lock-order",
           "blocking call '" + e.name + "' while holding '" + h.mutex +
               "' (acquired line " + std::to_string(h.line) + " in " +
               s.name + "()); a stalled guest read or pool wait here "
               "serializes every sweep contending for the lock"});
    }
  }
}

}  // namespace mc::lint::rules
