// Fixture: sim-determinism near miss (scanned by mc_analyze tests, never
// compiled).  This TU never touches simulated time, so host clocks and
// entropy are its own business — nothing here is flagged.
#include <chrono>
#include <random>

long host_timestamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

unsigned hardware_seed() {
  std::random_device entropy;
  return entropy();
}
