// Fixture: lock-order blocking-under-service-mutex (scanned by mc_analyze
// tests, never compiled).  The file name contains "service", so its
// mutexes count as service-layer: a guest read and a pool wait under a
// held guard are flagged; the condvar wait that *releases* the held guard
// is the sanctioned idiom; the suppressed site carries its audit.
#include <condition_variable>
#include <mutex>

struct Pump {
  void tick();
  void pop();
  void flush();
  void audited_probe();
  std::mutex mutex_;
  std::condition_variable cv_;
};

void Pump::tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  session.read_va(va, out);  // flagged: guest read under service mutex
  pool.wait_idle();          // flagged: pool drain under service mutex
}

void Pump::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock);  // ok: the wait releases the held guard
}

void Pump::flush() {
  refresh();  // ok: no lock held at this call
  std::lock_guard<std::mutex> lock(mutex_);
  counter += 1;  // ok: no blocking call under the lock
}

void Pump::audited_probe() {
  std::lock_guard<std::mutex> lock(mutex_);
  // audit: tool self-test — deliberate blocking call, directive honored.
  // mc-lint: allow(lock-order)
  session.read_u32(va);
}
