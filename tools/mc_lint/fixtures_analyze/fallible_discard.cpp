// Fixture: fallible-discard (scanned by mc_analyze tests, never compiled).
// The declarations below are what the cross-file index sees; the bodies
// exercise discard (flagged), suppression, and every sanctioned use.
#include <tuple>

#include "util/fault.hpp"

Fallible<int> try_fetch();
MaybeFault try_store(int v);

struct Session {
  Fallible<int> try_probe();
};

void discards(Session& s) {
  try_fetch();     // flagged: full-statement discard
  try_store(7);    // flagged: MaybeFault discarded
  s.try_probe();   // flagged: member call through a receiver chain
  if (ready()) try_fetch();  // flagged: discard inside a control body
}

void suppressed() {
  try_fetch();  // mc-lint: allow(fallible-discard)
}

int uses(Session& s) {
  Fallible<int> r = try_fetch();  // ok: bound
  if (!r.ok()) {
    return 0;
  }
  (void)try_store(1);          // ok: explicit audited discard
  std::ignore = try_fetch();   // ok: assigned to std::ignore
  while (try_fetch().ok()) {   // ok: branched on
    break;
  }
  consume(try_fetch());        // ok: passed on
  return r.value() + s.try_probe().value();  // ok: used in an expression
}
