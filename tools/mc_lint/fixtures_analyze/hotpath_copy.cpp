// Fixture: hotpath-copy (scanned by mc_analyze tests, never compiled).
// This TU references the hot-path vocabulary (adjust_rvas) and never
// mentions the simd dispatcher, so owned-buffer materializations and raw
// pairwise byte compares are flagged; borrowing spans, filling caller
// scratch, arena copies and the suppressed forensics-style site are not.
#include "modchecker/rva_adjust.hpp"

void normalize(MutableByteView s1, MutableByteView s2) {
  adjust_rvas(s1, 0x1000, s2, 0x2000);
}

void materializes(const IntegrityItem& item) {
  Bytes flat = item.content_copy();  // flagged twice: owned decl + copy
  consume(flat);
}

void sanctioned_dump(const IntegrityItem& item) {
  Bytes dump = item.content_copy();  // mc-lint: allow(hotpath-copy)
  consume(dump);
}

void borrows(const IntegrityItem& item, Arena& arena) {
  MutableByteView scratch = arena_content_copy(arena, item);  // ok: arena
  unsigned char buf[16];
  item.copy_content(MutableByteView(buf));  // ok: fills caller scratch
  consume(scratch);
}

int scalar_diff(const unsigned char* a, const unsigned char* b, int n) {
  int diffs = 0;
  for (int i = 0; i < n; ++i) {
    if (a[i] != b[i]) {  // flagged: bypasses the simd dispatcher
      ++diffs;
    }
  }
  return diffs;
}

void rewrite(unsigned char* a, const unsigned char* b, int i) {
  a[i] = b[i];  // ok: assignment, not a pairwise compare
}
