// Fixture: lock-order ABBA inversion (scanned by mc_analyze tests, never
// compiled).  `bad_first`/`bad_second` take the pair in opposite orders —
// both sites are flagged.  `fine_first`/`fine_second` agree on one order
// (near miss).  The suppressed inversion carries its audit directive.
#include <mutex>

struct State {
  std::mutex m_a;
  std::mutex m_b;
  std::mutex m_c;
  std::mutex m_d;
  std::mutex m_e;
  std::mutex m_f;
};

void bad_first(State& st) {
  std::scoped_lock a(st.m_a);
  std::scoped_lock b(st.m_b);  // flagged: opposite order in bad_second
}

void bad_second(State& st) {
  std::scoped_lock b(st.m_b);
  std::scoped_lock a(st.m_a);  // flagged: opposite order in bad_first
}

void fine_first(State& st) {
  std::scoped_lock c(st.m_c);
  std::scoped_lock d(st.m_d);  // ok: same order everywhere
}

void fine_second(State& st) {
  std::scoped_lock c(st.m_c);
  std::scoped_lock d(st.m_d);
}

void audited_one(State& st) {
  std::scoped_lock e(st.m_e);
  // audit: tool self-test — a deliberate inversion with both sites
  // carrying the directive stays silent.
  // mc-lint: allow(lock-order)
  std::scoped_lock f(st.m_f);
}

void audited_two(State& st) {
  std::scoped_lock f(st.m_f);
  // mc-lint: allow(lock-order)
  std::scoped_lock e(st.m_e);
}
