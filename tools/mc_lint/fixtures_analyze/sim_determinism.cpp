// Fixture: sim-determinism (scanned by mc_analyze tests, never compiled).
// This TU charges SimClock costs, so host clocks, hardware entropy and
// unordered iteration are all flagged; the ordered-container loop and the
// suppressed line are not.
#include <chrono>
#include <map>
#include <random>
#include <unordered_map>

#include "util/sim_clock.hpp"

void charged(SimClock& clock) {
  clock.charge(SimNanos{100});
}

void wall_clock_leak() {
  auto t0 = std::chrono::steady_clock::now();   // flagged: host clock
  auto t1 = std::chrono::system_clock::now();   // flagged: host clock
  std::random_device entropy;                   // flagged: hardware entropy
}

void suppressed_span() {
  auto t = std::chrono::steady_clock::now();  // mc-lint: allow(sim-determinism)
}

void iteration(const std::unordered_map<int, int>& table,
               const std::map<int, int>& sorted) {
  for (const auto& kv : table) {   // flagged: unordered iteration order
    consume(kv);
  }
  for (const auto& kv : sorted) {  // ok: ordered container
    consume(kv);
  }
}
