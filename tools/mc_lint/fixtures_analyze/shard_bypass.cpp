// Fixture: shard-bypass (scanned by mc_analyze tests, never compiled).
// Direct construction of FleetService / SweepQueue outside the service
// layer is flagged (stack, new, make_unique/make_shared); the coordinator
// path, qualified type uses, references and the suppressed harness stay
// quiet.
#include "service/coordinator.hpp"

void rogue_fleet() {
  FleetService svc(cfg);  // flagged: stack construction outside service/
  svc.start();
}

void rogue_queue_heap() {
  auto* q = new SweepQueue();  // flagged; mc-lint: allow(naked-new)
  consume(q);
}

void rogue_queue_smart() {
  auto q = std::make_unique<SweepQueue>();  // flagged: smart-pointer make
  auto s = std::make_shared<FleetService>(cfg);  // flagged
  consume(q, s);
}

void sanctioned_coordinator() {
  ShardCoordinator coordinator(cfg);  // ok: the control plane's front door
  coordinator.start();
}

void qualified_use(const FleetService& svc) {  // ok: reference parameter
  FleetService::Stats stats = svc.stats();  // ok: qualified nested type
  consume(stats);
}

void bench_harness() {
  SweepQueue probe;  // mc-lint: allow(shard-bypass)
  consume(probe);
}
