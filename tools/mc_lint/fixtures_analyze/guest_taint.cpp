// Fixture: guest-taint (scanned by mc_analyze tests, never compiled).
// Guest-read results flow to sinks with and without intervening bounds
// checks; only the unchecked flows are flagged.
#include <cstdint>
#include <vector>

void unchecked(Session& s, std::vector<int>& v, Bytes& buf) {
  auto len = s.read_u32(base);
  buf.resize(len);                     // flagged: unchecked resize
  auto idx = s.read_u16(base);
  v[idx] = 1;                          // flagged: unchecked subscript
  auto count = s.try_read_u32(base2);
  auto blob = s.read_region(base3, count);  // flagged: unchecked read len
}

void suppressed(Session& s, Bytes& buf) {
  auto len = s.read_u32(base);
  buf.resize(len);  // mc-lint: allow(guest-taint)
}

void checked(Session& s, std::vector<int>& v, Bytes& buf) {
  auto len = s.read_u32(base);
  MC_CHECK(len <= kMaxLen, "guest length out of bounds");
  buf.resize(len);                     // ok: MC_CHECK bound it
  auto n = s.read_u16(base);
  if (n < kMaxIdx) {
    v[n] = 2;                          // ok: comparison bound it
  }
  auto m = s.read_u16(base);
  auto capped = std::min(m, kMaxIdx);  // ok: min() clamps, kills the taint
  v[capped] = 3;
  auto fresh = local_default();
  v[fresh] = 4;                        // ok: never tainted
}

void propagated(Session& s, Bytes& buf) {
  auto len = s.read_u32(base);
  auto doubled = len;
  buf.resize(doubled);                 // flagged: taint flows via copy
  len = kFixedSize;
  buf.resize(len);                     // ok: reassignment killed the taint
}
