// Fixture: watch-bypass (scanned by mc_analyze tests, never compiled).
// Direct frame_version()/write_counter() polling is flagged; the
// suppressed debug probe, the WriteWatch-facing replacements, and bare
// identifier mentions (no call) are not.
#include "vmm/hypervisor.hpp"

bool stale_version_sweep(const PhysicalMemory& mem, uint32_t first,
                         uint32_t last, uint64_t seen) {
  for (uint32_t f = first; f <= last; ++f) {
    if (mem.frame_version(f) > seen) {  // flagged: O(frames) poll
      return true;
    }
  }
  return false;
}

uint64_t checkpoint(const PhysicalMemory& mem) {
  return mem.write_counter();  // flagged: raw stamp poll
}

uint64_t debug_probe(const PhysicalMemory& mem) {
  return mem.write_counter();  // mc-lint: allow(watch-bypass)
}

bool clean_check(const Hypervisor& hv, uint64_t watch_id) {
  return !hv.write_watch().dirty(watch_id);  // ok: the O(1) watch query
}

void document(uint64_t frame_version) {
  consume(frame_version);  // ok: identifier, not a call
}
