// Shared source model for both analysis tiers.
//
// Tier 1 (linter.hpp) scans sanitized lines; tier 2 (analyzer.hpp) scans a
// token stream — but both start from the same comment/string stripper and
// share one suppression syntax (`// mc-lint: allow(rule)`), so a directive
// written for a tier-1 rule keeps working unchanged when the rule moves to
// the token engine.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc::lint {

/// One source file split into scannable form: code with comments and
/// literal contents blanked (quotes kept), plus the comment text per line
/// (for suppression directives).
struct ScannedSource {
  std::vector<std::string> code;      // sanitized, 0-based
  std::vector<std::string> comments;  // concatenated comment text per line
};

/// Strips comments and string/char literal contents (keeping the quotes) so
/// rules never fire on prose; comment text is preserved per line for the
/// suppression parser.
ScannedSource scan(const std::string& content);

/// Parses every `mc-lint: allow(rule-a, rule-b)` directive and returns,
/// per 0-based line, the set of rules suppressed on that line.  A directive
/// on a code line covers that line; on a comment-only line it covers the
/// following line.
std::map<std::size_t, std::set<std::string>> suppressions(
    const ScannedSource& src);

// ---- Small text helpers shared by both tiers -------------------------------

bool is_word_char(char c);
bool is_blank(const std::string& s);

/// Finds `token` in `line` at a word boundary on both sides; npos if absent.
std::size_t find_token(const std::string& line, const std::string& token,
                       std::size_t from = 0);

bool has_token(const std::string& line, const std::string& token);

/// The word (identifier/keyword) immediately preceding `pos`, if any.
std::string word_before(const std::string& line, std::size_t pos);

}  // namespace mc::lint
