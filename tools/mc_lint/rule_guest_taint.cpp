// guest-taint — intraprocedural taint from guest reads to trusting sinks.
//
// Everything a guest read returns is attacker-controlled (the paper's own
// threat model): a length, an RVA, a count.  Using such a value to index
// an array, size a resize/reserve, or size a further guest read without
// first bounding it is the classic VMI parser bug.  The rule tracks, per
// function body:
//
//   sources   read_u16/u32, read_region, read_unicode_string and their
//             try_* forms, read_va/try_read_va, load_le16/32/64, as_bytes
//   checks    an MC_CHECK involving the value, a comparison operator
//             adjacent to it, or passing it through min/max/clamp
//   sinks     array subscript, .resize()/.reserve(), Bytes-sized-by-value
//             construction, and the length argument of read_region
//
// A value assigned from a non-tainted expression is killed; a checked
// value stays usable everywhere.  Purely intraprocedural by design —
// cross-function lengths must be re-checked at the consuming boundary,
// which is exactly the discipline the parser entry points already follow
// (parser-bounds-check).
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

bool is_source(const std::string& s) {
  static const std::set<std::string> kSources = {
      "read_u16",      "read_u32",      "try_read_u16",  "try_read_u32",
      "read_region",   "try_read_region", "read_va",     "try_read_va",
      "read_unicode_string", "try_read_unicode_string",
      "load_le16",     "load_le32",     "load_le64",     "as_bytes",
  };
  return kSources.count(s) > 0;
}

bool is_comparison(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
          t.text == "==" || t.text == "!=");
}

struct TaintState {
  std::set<std::string> tainted;
  std::set<std::string> checked;

  bool hot(const std::string& v) const {
    return tainted.count(v) > 0 && checked.count(v) == 0;
  }
};

void flag(const std::string& file, int line, const std::string& var,
          const std::string& sink, std::vector<Finding>& out) {
  out.push_back(
      {file, line, "guest-taint",
       "guest-derived value '" + var + "' reaches " + sink +
           " without a bounds check (MC_CHECK / comparison / min-max "
           "clamp); guest data is attacker-controlled"});
}

void analyze_statement(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end, TaintState& st,
                       const std::string& file, std::vector<Finding>& out) {
  // --- 1. Checks: mark tainted values this statement bounds. ------------
  // A comparison bounds every identifier in the operand expressions on
  // either side, walking through member/call chains: `len.value() == 0`
  // checks `len`, not just the token adjacent to `==`.
  const auto mark_operand_left = [&](std::size_t from) {
    std::size_t j = from + 1;
    while (j-- > begin) {
      const Token& t = toks[j];
      if (is_punct(t, ")")) {
        const std::size_t open = match_backward(toks, j, "(", ")");
        if (open == std::string::npos || open < begin) {
          return;
        }
        j = open;  // decremented by the loop; the '(' itself continues
      } else if (t.kind == Tok::kIdent) {
        if (st.tainted.count(t.text) > 0) {
          st.checked.insert(t.text);
        }
      } else if (t.kind != Tok::kNumber && !is_punct(t, ".") &&
                 !is_punct(t, "->") && !is_punct(t, "::") &&
                 !is_punct(t, "(")) {
        return;
      }
    }
  };
  const auto mark_operand_right = [&](std::size_t from) {
    for (std::size_t j = from; j < end; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "(")) {
        const std::size_t close = match_forward(toks, j, "(", ")");
        if (close == std::string::npos || close >= end) {
          return;
        }
        j = close;
      } else if (t.kind == Tok::kIdent) {
        if (st.tainted.count(t.text) > 0) {
          st.checked.insert(t.text);
        }
      } else if (t.kind != Tok::kNumber && !is_punct(t, ".") &&
                 !is_punct(t, "->") && !is_punct(t, "::")) {
        return;
      }
    }
  };
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is_comparison(t)) {
      if (i > begin) {
        mark_operand_left(i - 1);
      }
      if (i + 1 < end) {
        mark_operand_right(i + 1);
      }
    }
    // MC_CHECK(...) / std::min/max/clamp(...) bound every tainted ident
    // they enclose.
    if (t.kind == Tok::kIdent &&
        (t.text == "MC_CHECK" || t.text == "min" || t.text == "max" ||
         t.text == "clamp") &&
        i + 1 < end && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close != std::string::npos && close <= end) {
        for (std::size_t k = i + 2; k < close; ++k) {
          if (toks[k].kind == Tok::kIdent &&
              st.tainted.count(toks[k].text) > 0) {
            st.checked.insert(toks[k].text);
          }
        }
      }
    }
  }

  // --- 2. Sinks. --------------------------------------------------------
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    // Array subscript: `expr[ ... tainted ... ]`.
    if (is_punct(t, "[") && i > begin) {
      const Token& prev = toks[i - 1];
      const bool subscript = prev.kind == Tok::kIdent ||
                             is_punct(prev, ")") || is_punct(prev, "]");
      if (subscript) {
        const std::size_t close = match_forward(toks, i, "[", "]");
        if (close != std::string::npos && close <= end) {
          for (std::size_t k = i + 1; k < close; ++k) {
            if (toks[k].kind == Tok::kIdent && st.hot(toks[k].text)) {
              flag(file, t.line, toks[k].text, "an array subscript", out);
              break;
            }
          }
        }
      }
    }
    if (t.kind != Tok::kIdent || i + 1 >= end || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string::npos || close > end) {
      continue;
    }
    // resize/reserve sized by an unchecked guest value.
    if (t.text == "resize" || t.text == "reserve") {
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind == Tok::kIdent && st.hot(toks[k].text)) {
          flag(file, t.line, toks[k].text, "." + t.text + "()", out);
          break;
        }
      }
    }
    // read_region(va, len): a guest-derived, unchecked length sizes the
    // next read's allocation.
    if (t.text == "read_region" || t.text == "try_read_region") {
      int depth = 0;
      std::size_t arg = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        const Token& p = toks[k];
        if (p.kind == Tok::kPunct) {
          if (p.text == "(" || p.text == "[" || p.text == "{") {
            ++depth;
          } else if (p.text == ")" || p.text == "]" || p.text == "}") {
            --depth;
          } else if (p.text == "," && depth == 0) {
            ++arg;
          }
        } else if (p.kind == Tok::kIdent && arg >= 1 && st.hot(p.text)) {
          flag(file, t.line, p.text, "the length of a guest read", out);
          break;
        }
      }
    }
  }
  // `Bytes buf(len)` — an allocation sized directly by a guest value.
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (is_ident(toks[i], "Bytes") && toks[i + 1].kind == Tok::kIdent &&
        is_punct(toks[i + 2], "(")) {
      const std::size_t close = match_forward(toks, i + 2, "(", ")");
      if (close != std::string::npos && close <= end) {
        for (std::size_t k = i + 3; k < close; ++k) {
          if (toks[k].kind == Tok::kIdent && st.hot(toks[k].text)) {
            flag(file, toks[i].line, toks[k].text, "a buffer allocation",
                 out);
            break;
          }
        }
      }
    }
  }

  // --- 3. Assignment: propagate or kill. --------------------------------
  std::size_t assign = std::string::npos;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
    } else if (t.text == "=" && depth == 0) {
      assign = i;
      break;
    }
  }
  if (assign == std::string::npos || assign == begin) {
    return;
  }
  // LHS variable: the last ident before '='; a subscripted LHS (`v[i] =`)
  // is a store, not a binding.
  if (is_punct(toks[assign - 1], "]")) {
    return;
  }
  std::string lhs;
  for (std::size_t i = assign; i-- > begin;) {
    if (toks[i].kind == Tok::kIdent) {
      lhs = toks[i].text;
      break;
    }
  }
  if (lhs.empty()) {
    return;
  }
  bool rhs_tainted = false;
  for (std::size_t i = assign + 1; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kIdent && (is_source(t.text) || st.hot(t.text))) {
      rhs_tainted = true;
      break;
    }
  }
  if (rhs_tainted) {
    st.tainted.insert(lhs);
    st.checked.erase(lhs);
  } else {
    st.tainted.erase(lhs);
    st.checked.erase(lhs);
  }
}

}  // namespace

void guest_taint(const std::vector<Token>& toks, const std::string& file,
                 std::vector<Finding>& out) {
  for (const FunctionBody& fn : split_functions(toks)) {
    TaintState st;
    std::size_t stmt_begin = fn.body_begin + 1;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (is_punct(toks[i], ";")) {
        analyze_statement(toks, stmt_begin, i, st, file, out);
        stmt_begin = i + 1;
      }
    }
    if (stmt_begin < fn.body_end) {
      analyze_statement(toks, stmt_begin, fn.body_end, st, file, out);
    }
  }
}

}  // namespace mc::lint::rules
