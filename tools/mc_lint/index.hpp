// Cross-file function index for the tier-2 analyzer.
//
// Built from the token streams of every indexed file (headers and sources
// alike): for each function it records the return type and annotations the
// fallible-discard rule needs (name -> "Fallible<...>"/"MaybeFault",
// [[nodiscard]], defining file), and a behavioural summary the lock-order
// rule needs (the ordered lock/call event list, with the held-lock set at
// each event).  Indexing is name-based, not overload-resolved — the same
// trade every fast linter makes; a name collision shows up as a finding to
// audit, not a silent pass.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace mc::lint {

/// One indexed declaration (only declarations the rules care about are
/// recorded: fallible returns and [[nodiscard]]-annotated functions).
struct IndexedDecl {
  std::string name;
  std::string return_type;  // e.g. "Fallible<std::uint32_t>", "MaybeFault"
  bool nodiscard = false;
  bool fallible = false;  // returns Fallible<...> or MaybeFault
  std::string file;
  int line = 0;
};

/// A lock held at some program point: the mutex expression, the guard
/// variable that owns it, and the acquisition site.
struct HeldLock {
  std::string mutex;
  std::string guard;
  int line = 0;
};

/// One event inside a function body, in source order.
struct FnEvent {
  enum class Kind : unsigned char { kAcquire, kCall };
  Kind kind = Kind::kCall;
  std::string name;  // mutex expression (kAcquire) or callee name (kCall)
  /// For calls: identifier arguments (for the condvar wait(lock) pattern)
  /// and the receiver chain (`cv_.wait` -> {"cv_"}).
  std::vector<std::string> args;
  std::vector<std::string> receiver;
  int line = 0;
  /// Locks held when the event happens (before a kAcquire takes effect).
  std::vector<HeldLock> held;
};

/// Per-function behavioural summary.
struct FunctionSummary {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<FnEvent> events;
  /// Flattened acquisition order (for one-level call inlining).
  std::vector<std::string> lock_order;
};

/// A function definition located in a token stream: name plus the token
/// indices of its body braces (inclusive).
struct FunctionBody {
  std::string name;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
  int line = 0;                // line of the name token
};

class FunctionIndex {
 public:
  /// Indexes one file's token stream: declarations and function summaries.
  void add(const std::string& file, const std::vector<Token>& toks);

  /// True when `name` is indexed with a Fallible<...>/MaybeFault return.
  bool fallible(const std::string& name) const {
    return fallible_.count(name) > 0;
  }

  const std::map<std::string, IndexedDecl>& decls() const { return decls_; }

  /// Summaries for every indexed function that acquires locks or makes
  /// calls (keyed by unqualified name; later definitions with the same
  /// name append their events under a fresh entry).
  const std::vector<FunctionSummary>& summaries() const { return summaries_; }

  /// First summary for `name`, or nullptr.
  const FunctionSummary* summary(const std::string& name) const;

 private:
  std::set<std::string> fallible_;
  std::map<std::string, IndexedDecl> decls_;
  std::vector<FunctionSummary> summaries_;
  std::map<std::string, std::size_t> summary_by_name_;  // first wins
};

/// Locates every function definition in a token stream (methods, free
/// functions, out-of-line `Class::method` definitions; constructors with
/// init lists included).  Lambda bodies are not split out — their tokens
/// belong to the enclosing function, which is the right scoping for lint.
std::vector<FunctionBody> split_functions(const std::vector<Token>& toks);

/// Extracts the ordered lock/call event list of one function body.
std::vector<FnEvent> extract_events(const std::vector<Token>& toks,
                                    const FunctionBody& fn);

/// Callees that block: pool scheduling, condvar/future waits, and guest
/// reads (every guest read is a simulated long operation).  The lock-order
/// rule flags these under a service-layer mutex.
bool is_blocking_callee(const std::string& name);

}  // namespace mc::lint
