#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "source.hpp"

namespace mc::lint {

namespace {

/// The banned-token rules: one source token, one rule id, one message.
struct TokenRule {
  const char* token;
  const char* rule;
  const char* message;
};

constexpr TokenRule kTokenRules[] = {
    {"reinterpret_cast", "raw-reinterpret-cast",
     "raw reinterpret_cast on guest data; use mc::as_bytes / util/bytes.hpp"},
    {"memcpy", "raw-memcpy",
     "raw memcpy; use mc::copy_bytes / load_le* / store_le* (bounds-checked)"},
    {"rand", "std-rand",
     "std::rand is not reproducible; use the seeded generators in "
     "util/rng.hpp"},
    {"srand", "std-rand",
     "srand is not reproducible; use the seeded generators in util/rng.hpp"},
    {"new", "naked-new",
     "naked new; express ownership with std::make_unique/std::make_shared "
     "(R.11)"},
    {"delete", "naked-delete",
     "naked delete; express ownership with std::unique_ptr (R.11)"},
};

/// True for the `delete` occurrences that are declarations, not
/// deallocations: `= delete` (deleted special members).
bool is_deleted_function_decl(const std::string& line, std::size_t pos) {
  for (std::size_t i = pos; i > 0; --i) {
    const char c = line[i - 1];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    return c == '=';
  }
  return false;
}

void run_token_rules(const ScannedSource& src, const std::string& file,
                     std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const TokenRule& tr : kTokenRules) {
      const std::size_t pos = find_token(line, tr.token);
      if (pos == std::string::npos) {
        continue;
      }
      if (std::string(tr.token) == "delete" &&
          is_deleted_function_decl(line, pos)) {
        continue;
      }
      findings.push_back(
          {file, static_cast<int>(i + 1), tr.rule, tr.message});
    }
  }
}

/// parser-bounds-check: inside a function that takes a (Mutable)ByteView
/// parameter, any direct subscript of that parameter must be preceded (in
/// the body) by bounds validation — an MC_CHECK, a .size() comparison, or a
/// bounds-checked load_le*/store_le* access.
void run_bounds_rule(const ScannedSource& src, const std::string& file,
                     std::vector<Finding>& findings) {
  struct Scope {
    std::vector<std::string> params;
    int close_depth = 0;  // scope ends when depth returns to this
    bool validated = false;
  };
  std::vector<Scope> scopes;
  std::vector<std::string> pending;  // ByteView params seen before the '{'
  int depth = 0;

  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];

    // Collect `ByteView <ident>` / `MutableByteView <ident>` parameters.
    for (const char* type : {"MutableByteView", "ByteView"}) {
      for (std::size_t pos = find_token(line, type); pos != std::string::npos;
           pos = find_token(line, type, pos + 1)) {
        std::size_t j = pos + std::string(type).size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        std::size_t end = j;
        while (end < line.size() && is_word_char(line[end])) {
          ++end;
        }
        if (end > j) {
          pending.push_back(line.substr(j, end - j));
        }
      }
    }

    if (!scopes.empty()) {
      Scope& scope = scopes.back();
      if (has_token(line, "MC_CHECK") || line.find(".size()") != std::string::npos ||
          line.find("load_le") != std::string::npos ||
          line.find("store_le") != std::string::npos) {
        scope.validated = true;
      } else if (!scope.validated) {
        for (const std::string& param : scope.params) {
          for (std::size_t pos = find_token(line, param);
               pos != std::string::npos; pos = find_token(line, param, pos + 1)) {
            std::size_t j = pos + param.size();
            while (j < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[j])) != 0) {
              ++j;
            }
            if (j < line.size() && line[j] == '[') {
              findings.push_back(
                  {file, static_cast<int>(i + 1), "parser-bounds-check",
                   "ByteView parameter '" + param +
                       "' indexed before MC_CHECK/size validation"});
            }
          }
        }
      }
    }

    // Track braces; open a function scope at the '{' that follows a
    // signature mentioning ByteView parameters, drop pending at ';'.
    for (const char c : line) {
      if (c == '{') {
        if (!pending.empty()) {
          scopes.push_back({pending, depth, false});
          pending.clear();
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (!scopes.empty() && depth <= scopes.back().close_depth) {
          scopes.pop_back();
        }
      } else if (c == ';' && scopes.empty() && depth >= 0) {
        pending.clear();
      } else if (c == ';' && !scopes.empty()) {
        // Statement end inside a body: declarations like `ByteView v = ...;`
        // introduce locals, not parameters — stop tracking them.
        pending.clear();
      }
    }
  }
}

void run_pipeline_rule(const ScannedSource& src, const std::string& file,
                       std::vector<Finding>& findings) {
  if (pipeline_component_owner(file)) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* type : {"ModuleSearcher", "ModuleParser"}) {
      const std::string token(type);
      for (std::size_t pos = find_token(line, token); pos != std::string::npos;
           pos = find_token(line, token, pos + 1)) {
        // Type mentions that are not constructions: forward declarations,
        // friend declarations, references/pointers in signatures, and
        // qualified member access (ModuleSearcher::...).
        const std::string prev = word_before(line, pos);
        if (prev == "class" || prev == "struct" || prev == "friend") {
          continue;
        }
        std::size_t j = pos + token.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        bool construction = false;
        if (j < line.size() && line[j] == '(') {
          construction = true;  // temporary: ModuleSearcher(session)
        } else if (j < line.size() && is_word_char(line[j])) {
          // Declaration with initializer: ModuleSearcher name(...) / {...}.
          std::size_t end = j;
          while (end < line.size() && is_word_char(line[end])) {
            ++end;
          }
          while (end < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[end])) != 0) {
            ++end;
          }
          // `(`/`{`: explicit construction; `;`/`=`: a default-constructed
          // local or owning member — ownership outside the pipeline is the
          // exact thing this rule exists to flag.
          construction = end < line.size() &&
                         (line[end] == '(' || line[end] == '{' ||
                          line[end] == ';' || line[end] == '=');
        }
        if (construction) {
          findings.push_back(
              {file, static_cast<int>(i + 1), "pipeline-bypass",
               token + " constructed outside the CheckPipeline; drive the "
                       "AcquireStage/ParseStage of modchecker/pipeline.hpp "
                       "instead"});
        }
      }
    }
  }
}

/// format-bypass: pe::ParsedImage / elf::ElfImage constructed outside the
/// format's own library — module bytes are interpreted by the plugin the
/// FormatRegistry resolves (modchecker/format.hpp); a second construction
/// site hard-codes one container format into code that should stay
/// format-neutral.
void run_format_rule(const ScannedSource& src, const std::string& file,
                     std::vector<Finding>& findings) {
  if (format_plugin_owner(file)) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* type : {"ParsedImage", "ElfImage"}) {
      const std::string token(type);
      for (std::size_t pos = find_token(line, token); pos != std::string::npos;
           pos = find_token(line, token, pos + 1)) {
        const std::string prev = word_before(line, pos);
        if (prev == "class" || prev == "struct" || prev == "friend") {
          continue;
        }
        std::size_t j = pos + token.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        bool construction = false;
        if (j < line.size() && line[j] == '(') {
          construction = true;  // temporary: pe::ParsedImage(view)
        } else if (j < line.size() && is_word_char(line[j])) {
          std::size_t end = j;
          while (end < line.size() && is_word_char(line[end])) {
            ++end;
          }
          while (end < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[end])) != 0) {
            ++end;
          }
          construction = end < line.size() &&
                         (line[end] == '(' || line[end] == '{' ||
                          line[end] == ';' || line[end] == '=');
        }
        if (construction) {
          findings.push_back(
              {file, static_cast<int>(i + 1), "format-bypass",
               token + " constructed outside its format plugin; resolve "
                       "the module through the core::FormatRegistry "
                       "(modchecker/format.hpp) instead"});
        }
      }
    }
  }
}

/// catch-swallow: a handler that intercepts every exception (`catch (...)`)
/// or intercepts one and does nothing (empty body) erases the fault it
/// caught — exactly the control flow the FaultRecord refactor removed from
/// the scan path.  Handlers must be typed and must either handle the error
/// or convert it into a FaultRecord / rethrow.

/// Skips whitespace (across lines) from (line, col); true if the next
/// non-whitespace character is `target`, leaving the cursor on it.
bool advance_to(const ScannedSource& src, std::size_t& line,
                std::size_t& col, char target) {
  for (; line < src.code.size(); ++line, col = 0) {
    const std::string& text = src.code[line];
    while (col < text.size()) {
      const char c = text[col];
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        return c == target;
      }
      ++col;
    }
  }
  return false;
}

/// The cursor must sit on `open`; walks past the matching `close`
/// (across lines), appending the enclosed text to `*body`.  False when
/// the file ends first (unbalanced input — the rule then stays quiet
/// rather than guessing).
bool skip_balanced(const ScannedSource& src, std::size_t& line,
                   std::size_t& col, char open, char close,
                   std::string* body) {
  int depth = 0;
  for (; line < src.code.size(); ++line, col = 0) {
    const std::string& text = src.code[line];
    for (; col < text.size(); ++col) {
      const char c = text[col];
      if (c == open) {
        if (++depth == 1) {
          continue;  // the opener itself is not body text
        }
      } else if (c == close) {
        if (--depth == 0) {
          ++col;
          return true;
        }
      }
      if (depth >= 1 && body != nullptr) {
        *body += c;
      }
    }
    if (depth >= 1 && body != nullptr) {
      *body += '\n';
    }
  }
  return false;
}

void run_catch_rule(const ScannedSource& src, const std::string& file,
                    std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    for (std::size_t pos = find_token(src.code[i], "catch");
         pos != std::string::npos;
         pos = find_token(src.code[i], "catch", pos + 1)) {
      std::size_t line = i;
      std::size_t col = pos + 5;  // past "catch"
      if (!advance_to(src, line, col, '(')) {
        continue;  // not a handler clause
      }
      std::string param;
      if (!skip_balanced(src, line, col, '(', ')', &param)) {
        continue;
      }
      std::string stripped = param;
      stripped.erase(std::remove_if(stripped.begin(), stripped.end(),
                                    [](char c) {
                                      return std::isspace(
                                                 static_cast<unsigned char>(
                                                     c)) != 0;
                                    }),
                     stripped.end());
      if (stripped == "...") {
        findings.push_back(
            {file, static_cast<int>(i + 1), "catch-swallow",
             "catch (...) swallows every fault; catch a typed error and "
             "convert it into a FaultRecord (util/fault.hpp) or rethrow"});
        continue;
      }
      if (!advance_to(src, line, col, '{')) {
        continue;
      }
      std::string body;
      if (!skip_balanced(src, line, col, '{', '}', &body)) {
        continue;
      }
      if (is_blank(body)) {
        findings.push_back(
            {file, static_cast<int>(i + 1), "catch-swallow",
             "empty catch body swallows the fault; handle it, record a "
             "FaultRecord, or rethrow"});
      }
    }
  }
}

/// adhoc-stats: counters belong in the telemetry registry
/// (src/telemetry/registry.hpp), where they are thread-safe, nameable, and
/// exportable — a fresh `struct FooStats { uint64_t ...; }` recreates the
/// pre-registry world of torn snapshots and six bespoke accessors.  The
/// telemetry library itself is exempt; deliberate plain-value result types
/// carry an explicit allow(adhoc-stats).
void run_adhoc_stats_rule(const ScannedSource& src, const std::string& file,
                          std::vector<Finding>& findings) {
  if (telemetry_owner(file)) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (std::size_t pos = find_token(line, "struct"); pos != std::string::npos;
         pos = find_token(line, "struct", pos + 1)) {
      std::size_t j = pos + 6;  // past "struct"
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])) != 0) {
        ++j;
      }
      std::size_t end = j;
      while (end < line.size() && is_word_char(line[end])) {
        ++end;
      }
      if (end == j) {
        continue;  // anonymous struct
      }
      const std::string name = line.substr(j, end - j);
      if (name != "Stats" &&
          (name.size() < 5 ||
           name.compare(name.size() - 5, 5, "Stats") != 0)) {
        continue;
      }
      // Definitions only: a `{` must follow the name (possibly after
      // `final` or a base clause) on the same line.  `struct FooStats;`
      // forward declarations and `const Stats&` mentions stay quiet.
      if (line.find('{', end) == std::string::npos) {
        continue;
      }
      findings.push_back(
          {file, static_cast<int>(i + 1), "adhoc-stats",
           "ad-hoc stats struct '" + name +
               "'; counters belong in the telemetry registry "
               "(src/telemetry/registry.hpp)"});
    }
  }
}

}  // namespace

bool pipeline_component_owner(const std::string& file) {
  static const char* kOwners[] = {
      "modchecker/pipeline.hpp", "modchecker/pipeline.cpp",
      "modchecker/searcher.hpp", "modchecker/searcher.cpp",
      "modchecker/parser.hpp",   "modchecker/parser.cpp",
  };
  std::string norm = file;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  for (const char* owner : kOwners) {
    const std::string suffix(owner);
    if (norm.size() >= suffix.size() &&
        norm.compare(norm.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

bool format_plugin_owner(const std::string& file) {
  std::string norm = file;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  for (const char* dir : {"pe/", "elf/"}) {
    const std::string sub = std::string("/") + dir;
    if (norm.find(sub) != std::string::npos || norm.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

bool telemetry_owner(const std::string& file) {
  std::string norm = file;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm.find("/telemetry/") != std::string::npos ||
         norm.rfind("telemetry/", 0) == 0;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "raw-reinterpret-cast", "raw-memcpy",    "std-rand",
      "naked-new",            "naked-delete",  "parser-bounds-check",
      "pipeline-bypass",      "format-bypass", "catch-swallow",
      "adhoc-stats",
  };
  return kIds;
}

std::vector<Finding> lint_source(const std::string& file_name,
                                 const std::string& content) {
  const ScannedSource src = scan(content);
  std::vector<Finding> findings;
  run_token_rules(src, file_name, findings);
  run_bounds_rule(src, file_name, findings);
  run_pipeline_rule(src, file_name, findings);
  run_format_rule(src, file_name, findings);
  run_catch_rule(src, file_name, findings);
  run_adhoc_stats_rule(src, file_name, findings);

  const auto suppressed = suppressions(src);
  std::erase_if(findings, [&](const Finding& f) {
    const auto it = suppressed.find(static_cast<std::size_t>(f.line - 1));
    return it != suppressed.end() && it->second.count(f.rule) > 0;
  });

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("mc_lint: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

std::vector<Finding> lint_tree(const std::string& root) {
  return lint_tree(root, nullptr);
}

std::vector<Finding> lint_tree(const std::string& root,
                               std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    files.push_back(root);
  } else {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  }
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    // A file that vanished or turned unreadable mid-walk must not abort
    // the whole run: record it, keep going, let the caller exit non-zero.
    try {
      const auto file_findings = lint_file(f);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    } catch (const std::exception& e) {
      if (errors == nullptr) {
        throw;
      }
      errors->push_back(f + ": " + e.what());
    }
  }
  return findings;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace mc::lint
