#include "index.hpp"

#include <algorithm>

namespace mc::lint {

namespace {

/// Identifiers that look like `name(` but are never function definitions
/// or interesting call sites.
bool is_control_word(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if",       "for",     "while",         "switch",   "catch",
      "return",   "sizeof",  "alignof",       "decltype", "static_assert",
      "constexpr", "case",   "new",           "delete",   "assert",
      "alignas",  "noexcept", "throw",        "operator", "defined",
  };
  return kWords.count(s) > 0;
}

bool is_lock_class(const std::string& s) {
  return s == "scoped_lock" || s == "lock_guard" || s == "unique_lock" ||
         s == "shared_lock";
}

/// Joined text of a token range (receiver/argument expressions): word
/// tokens separated only by the puncts between them, no whitespace —
/// `pool . mutex` becomes "pool.mutex".
std::string join_tokens(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    out += toks[i].text;
  }
  return out;
}

/// Splits the argument list of the call/ctor parens (open..close) at
/// top-level commas; returns each argument's joined text.
std::vector<std::string> split_args(const std::vector<Token>& toks,
                                    std::size_t open, std::size_t close) {
  std::vector<std::string> args;
  std::size_t arg_begin = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
    } else if (t.text == "," && depth == 0) {
      args.push_back(join_tokens(toks, arg_begin, i));
      arg_begin = i + 1;
    }
  }
  if (arg_begin < close) {
    args.push_back(join_tokens(toks, arg_begin, close));
  }
  return args;
}

/// Identifier arguments only (top level of the call parens) — the tokens
/// the condvar `wait(lock)` exception matches against.
std::vector<std::string> ident_args(const std::vector<Token>& toks,
                                    std::size_t open, std::size_t close) {
  std::vector<std::string> out;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") {
        ++depth;
      } else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
      }
    } else if (t.kind == Tok::kIdent && depth == 0) {
      out.push_back(t.text);
    }
  }
  return out;
}

/// The receiver chain of a call: for `pool.pipeline->pool_scan(`, the
/// idents {"pool", "pipeline"} walking left from the callee.
std::vector<std::string> receiver_chain(const std::vector<Token>& toks,
                                        std::size_t callee_idx) {
  std::vector<std::string> out;
  std::size_t j = callee_idx;
  while (j >= 2) {
    const Token& sep = toks[j - 1];
    if (!is_punct(sep, ".") && !is_punct(sep, "->") && !is_punct(sep, "::")) {
      break;
    }
    if (toks[j - 2].kind != Tok::kIdent) {
      break;
    }
    out.push_back(toks[j - 2].text);
    j -= 2;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

bool is_blocking_callee(const std::string& name) {
  static const std::set<std::string> kBlocking = {
      // Pool scheduling / drain.
      "submit", "wait_idle", "pool_scan", "drain",
      // Waits (the wait(held_guard) condvar pattern is excepted by the
      // rule itself).
      "wait", "wait_for", "wait_until", "sleep_for", "sleep_until",
      // Guest reads: every one is a simulated long operation.
      "read_va", "try_read_va", "read_region", "try_read_region",
      "read_u32", "try_read_u32", "read_u16", "try_read_u16",
      "read_unicode_string", "try_read_unicode_string", "symbol_to_va",
      "guest_version", "try_guest_version",
  };
  return kBlocking.count(name) > 0;
}

std::vector<FunctionBody> split_functions(const std::vector<Token>& toks) {
  std::vector<FunctionBody> out;
  std::size_t i = 0;
  while (i < toks.size()) {
    if (!is_punct(toks[i], "(") || i == 0 || toks[i - 1].kind != Tok::kIdent ||
        is_control_word(toks[i - 1].text)) {
      ++i;
      continue;
    }
    const std::size_t close = match_forward(toks, i, "(", ")");
    if (close == std::string::npos) {
      ++i;
      continue;
    }
    // Skip trailing specifiers: const/noexcept/override/final, noexcept(...),
    // trailing return types, and constructor init lists.
    std::size_t k = close + 1;
    bool gave_up = false;
    while (k < toks.size() && !gave_up) {
      const Token& t = toks[k];
      if (t.kind == Tok::kIdent &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable" || t.text == "throw")) {
        ++k;
        if (k < toks.size() && is_punct(toks[k], "(")) {
          const std::size_t c = match_forward(toks, k, "(", ")");
          if (c == std::string::npos) {
            gave_up = true;
            break;
          }
          k = c + 1;
        }
        continue;
      }
      if (is_punct(t, "->")) {
        // Trailing return type: scan to the body/terminator.
        ++k;
        while (k < toks.size() && !is_punct(toks[k], "{") &&
               !is_punct(toks[k], ";") && !is_punct(toks[k], "=")) {
          ++k;
        }
        continue;
      }
      if (is_punct(t, ":")) {
        // Constructor init list: skip `member(expr)` / `member{expr}`
        // groups until the '{' that starts the body.
        ++k;
        while (k < toks.size()) {
          if (is_punct(toks[k], "(")) {
            const std::size_t c = match_forward(toks, k, "(", ")");
            if (c == std::string::npos) {
              gave_up = true;
              break;
            }
            k = c + 1;
          } else if (is_punct(toks[k], "{")) {
            const Token& prev = toks[k - 1];
            if (prev.kind == Tok::kIdent || is_punct(prev, ">")) {
              const std::size_t c = match_forward(toks, k, "{", "}");
              if (c == std::string::npos) {
                gave_up = true;
                break;
              }
              k = c + 1;  // member brace-init
            } else {
              break;  // the body
            }
          } else if (is_punct(toks[k], ";")) {
            gave_up = true;
            break;
          } else {
            ++k;
          }
        }
        continue;
      }
      break;
    }
    if (!gave_up && k < toks.size() && is_punct(toks[k], "{")) {
      const std::size_t end = match_forward(toks, k, "{", "}");
      if (end != std::string::npos) {
        out.push_back({toks[i - 1].text, k, end, toks[i - 1].line});
        i = end + 1;
        continue;
      }
    }
    i = close + 1;
  }
  return out;
}

std::vector<FnEvent> extract_events(const std::vector<Token>& toks,
                                    const FunctionBody& fn) {
  struct ActiveLock {
    HeldLock lock;
    int depth = 0;  // brace depth at declaration
  };
  std::vector<FnEvent> events;
  std::vector<ActiveLock> active;
  int depth = 1;  // inside the body '{'

  const auto held_now = [&] {
    std::vector<HeldLock> held;
    held.reserve(active.size());
    for (const ActiveLock& a : active) {
      held.push_back(a.lock);
    }
    return held;
  };

  std::size_t i = fn.body_begin + 1;
  while (i < fn.body_end) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        std::erase_if(active,
                      [&](const ActiveLock& a) { return a.depth > depth; });
      }
      ++i;
      continue;
    }
    if (t.kind != Tok::kIdent) {
      ++i;
      continue;
    }
    // Lock-guard declaration: scoped_lock/lock_guard/unique_lock
    // [<...>] guard_var ( mutex-args ).
    if (is_lock_class(t.text)) {
      std::size_t j = i + 1;
      if (j < fn.body_end && is_punct(toks[j], "<")) {
        const std::size_t c = match_forward(toks, j, "<", ">");
        if (c == std::string::npos || c >= fn.body_end) {
          ++i;
          continue;
        }
        j = c + 1;
      }
      if (j < fn.body_end && toks[j].kind == Tok::kIdent) {
        const std::string guard = toks[j].text;
        std::size_t open = j + 1;
        if (open < fn.body_end &&
            (is_punct(toks[open], "(") || is_punct(toks[open], "{"))) {
          const char* cl = is_punct(toks[open], "(") ? ")" : "}";
          const char* op = is_punct(toks[open], "(") ? "(" : "{";
          const std::size_t close = match_forward(toks, open, op, cl);
          if (close != std::string::npos && close < fn.body_end) {
            const auto args = split_args(toks, open, close);
            const bool deferred = std::any_of(
                args.begin(), args.end(), [](const std::string& a) {
                  return a.find("defer_lock") != std::string::npos ||
                         a.find("try_to_lock") != std::string::npos ||
                         a.find("adopt_lock") != std::string::npos;
                });
            if (!deferred) {
              for (const std::string& m : args) {
                FnEvent e;
                e.kind = FnEvent::Kind::kAcquire;
                e.name = m;
                e.line = t.line;
                e.held = held_now();
                events.push_back(e);
                active.push_back({{m, guard, t.line}, depth});
              }
            }
            i = close + 1;
            continue;
          }
        }
      }
      ++i;
      continue;
    }
    // Call site: ident '(' where the ident is not a declaration's variable
    // name (prev token an ident) and not a control keyword.
    if (i + 1 < fn.body_end && is_punct(toks[i + 1], "(") &&
        !is_control_word(t.text) && toks[i - 1].kind != Tok::kIdent) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close != std::string::npos && close <= fn.body_end) {
        FnEvent e;
        e.kind = FnEvent::Kind::kCall;
        e.name = t.text;
        e.line = t.line;
        e.args = ident_args(toks, i + 1, close);
        e.receiver = receiver_chain(toks, i);
        e.held = held_now();
        events.push_back(std::move(e));
        // Do not jump the args: nested calls are their own events.
      }
    }
    ++i;
  }
  return events;
}

void FunctionIndex::add(const std::string& file,
                        const std::vector<Token>& toks) {
  // --- Declarations: Fallible<...> / MaybeFault returns, [[nodiscard]]. ---
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent ||
        (t.text != "Fallible" && t.text != "MaybeFault")) {
      continue;
    }
    std::size_t j = i + 1;
    std::string ret = t.text;
    if (t.text == "Fallible") {
      if (j >= toks.size() || !is_punct(toks[j], "<")) {
        continue;
      }
      const std::size_t c = match_forward(toks, j, "<", ">");
      if (c == std::string::npos) {
        continue;
      }
      ret += join_tokens(toks, j, c + 1);
      j = c + 1;
    }
    // (ident ::)* name ( — the last identifier is the function name.
    std::string name;
    int line = 0;
    while (j + 1 < toks.size() && toks[j].kind == Tok::kIdent) {
      if (is_punct(toks[j + 1], "::")) {
        j += 2;
        continue;
      }
      if (is_punct(toks[j + 1], "(")) {
        name = toks[j].text;
        line = toks[j].line;
      }
      break;
    }
    if (name.empty()) {
      continue;
    }
    // [[nodiscard]] immediately before the return type: `] ]` backwards.
    bool nodiscard = false;
    if (i >= 2 && is_punct(toks[i - 1], "]") && is_punct(toks[i - 2], "]")) {
      nodiscard = true;
    }
    fallible_.insert(name);
    if (decls_.count(name) == 0) {
      decls_[name] = {name, ret, nodiscard, true, file, line};
    }
  }

  // --- Behavioural summaries. ---
  for (const FunctionBody& fn : split_functions(toks)) {
    FunctionSummary s;
    s.name = fn.name;
    s.file = file;
    s.line = fn.line;
    s.events = extract_events(toks, fn);
    for (const FnEvent& e : s.events) {
      if (e.kind == FnEvent::Kind::kAcquire) {
        s.lock_order.push_back(e.name);
      }
    }
    if (s.events.empty()) {
      continue;
    }
    if (summary_by_name_.count(s.name) == 0) {
      summary_by_name_[s.name] = summaries_.size();
    }
    summaries_.push_back(std::move(s));
  }
}

const FunctionSummary* FunctionIndex::summary(const std::string& name) const {
  const auto it = summary_by_name_.find(name);
  return it == summary_by_name_.end() ? nullptr : &summaries_[it->second];
}

}  // namespace mc::lint
