#include "sarif.hpp"

#include <cstdio>
#include <map>

namespace mc::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// GitHub wants forward slashes and no leading "./" in artifact URIs.
std::string artifact_uri(const std::string& path) {
  std::string uri = path;
  for (char& c : uri) {
    if (c == '\\') {
      c = '/';
    }
  }
  while (uri.rfind("./", 0) == 0) {
    uri.erase(0, 2);
  }
  return uri;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<std::string>& rules) {
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i]] = i;
  }

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"mc_analyze\",\n"
      "          \"informationUri\": \"tools/mc_lint/RULES.md\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i]) + "\"}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto it = rule_index.find(f.rule);
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
    if (it != rule_index.end()) {
      out += "          \"ruleIndex\": " + std::to_string(it->second) + ",\n";
    }
    out += "          \"level\": \"warning\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"},\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\"uri\": \"" +
        json_escape(artifact_uri(f.file)) +
        "\"},\n"
        "                \"region\": {\"startLine\": " +
        std::to_string(f.line) +
        "}\n"
        "              }\n"
        "            }\n"
        "          ]\n";
    out += "        }";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace mc::lint
