#include "analyzer.hpp"

#include <algorithm>

#include "rules.hpp"
#include "source.hpp"
#include "token.hpp"

namespace mc::lint {

const std::vector<std::string>& analyzer_rule_ids() {
  static const std::vector<std::string> kIds = {
      "fallible-discard",
      "lock-order",
      "sim-determinism",
      "guest-taint",
      "hotpath-copy",
      "watch-bypass",
      "shard-bypass",
  };
  return kIds;
}

std::vector<std::string> all_rule_ids() {
  std::vector<std::string> ids = rule_ids();
  const auto& extra = analyzer_rule_ids();
  ids.insert(ids.end(), extra.begin(), extra.end());
  return ids;
}

void Analyzer::index_source(const std::string& file,
                            const std::string& content) {
  index_.add(file, tokenize(scan(content)));
}

void Analyzer::add_source(const std::string& file, const std::string& content) {
  Unit u;
  u.file = file;
  u.src = scan(content);
  u.tokens = tokenize(u.src);
  index_.add(file, u.tokens);
  units_.push_back(std::move(u));
}

AnalyzeResult Analyzer::run(const AnalyzeOptions& opts) {
  AnalyzeResult result;
  result.errors = errors_;

  std::set<std::string> report_files;
  for (const Unit& u : units_) {
    report_files.insert(u.file);
  }

  // Raw findings per file (global rules report into the owning file's
  // bucket so its suppression map applies).
  std::map<std::string, std::vector<Finding>> per_file;
  for (const Unit& u : units_) {
    rules::legacy_port(u.src, u.tokens, u.file, per_file[u.file]);
    rules::fallible_discard(u.tokens, index_, u.file, per_file[u.file]);
    rules::sim_determinism(u.tokens, u.file, per_file[u.file]);
    rules::guest_taint(u.tokens, u.file, per_file[u.file]);
    rules::hotpath_copy(u.tokens, u.file, per_file[u.file]);
    rules::watch_bypass(u.tokens, u.file, per_file[u.file]);
    rules::shard_bypass(u.tokens, u.file, per_file[u.file]);
  }
  std::vector<Finding> global;
  rules::lock_order(index_, report_files, global);
  for (Finding& f : global) {
    per_file[f.file].push_back(std::move(f));
  }

  const auto allowed = [&](const Finding& f) {
    if (opts.disabled.count(f.rule) > 0) {
      return false;
    }
    for (const auto& [rule, substr] : opts.allow_paths) {
      if (f.rule == rule && f.file.find(substr) != std::string::npos) {
        return false;
      }
    }
    return true;
  };

  for (const Unit& u : units_) {
    std::vector<Finding>& findings = per_file[u.file];
    const auto suppressed = suppressions(u.src);
    std::erase_if(findings, [&](const Finding& f) {
      const auto it = suppressed.find(static_cast<std::size_t>(f.line - 1));
      if (it != suppressed.end() && it->second.count(f.rule) > 0) {
        return true;
      }
      return !allowed(f);
    });
    std::stable_sort(
        findings.begin(), findings.end(),
        [](const Finding& a, const Finding& b) { return a.line < b.line; });
    result.findings.insert(result.findings.end(), findings.begin(),
                           findings.end());
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file < b.file;
                   });
  return result;
}

std::vector<Finding> Analyzer::legacy_findings(const std::string& file,
                                               const std::string& content) {
  const ScannedSource src = scan(content);
  const std::vector<Token> toks = tokenize(src);
  std::vector<Finding> findings;
  rules::legacy_port(src, toks, file, findings);

  const auto suppressed = suppressions(src);
  std::erase_if(findings, [&](const Finding& f) {
    const auto it = suppressed.find(static_cast<std::size_t>(f.line - 1));
    return it != suppressed.end() && it->second.count(f.rule) > 0;
  });
  std::stable_sort(
      findings.begin(), findings.end(),
      [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

}  // namespace mc::lint
