// Tier-2 front end: a real C++ token stream over the sanitized source.
//
// The tokenizer runs on ScannedSource::code (comments and literal contents
// already blanked), so it never sees prose.  It is not a full lexer — no
// preprocessor, no raw strings — but it is exact about the things the
// semantic rules depend on: identifiers, maximal-munch punctuation
// (`::`, `->`, `...`, `==`, ...), string/char literal positions, and the
// (line, column) of every token so findings and adjacency checks
// (`.size()`) stay byte-compatible with the tier-1 line scanner.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "source.hpp"

namespace mc::lint {

enum class Tok : unsigned char {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-number-ish)
  kString,  // a "..." literal (contents blanked by the stripper)
  kChar,    // a '...' literal
  kPunct,   // operators and punctuation, maximal munch
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;  // 1-based, matches Finding::line
  int col = 0;   // 0-based start column in the sanitized line
};

/// Tokenizes sanitized source.  Preprocessor directive lines (first
/// non-blank char '#') are skipped entirely: rules reason about code, and
/// `#include <vector>` must not read as a comparison chain.
std::vector<Token> tokenize(const ScannedSource& src);

// ---- Stream helpers used by every token rule -------------------------------

/// Index of the matching closer for the opener at `open_idx` (`(`/`)`,
/// `[`/`]`, `{`/`}`, `<`/`>`).  For `<`, a `>>` punct counts as two closes
/// (template-closer munch).  Returns npos when unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open_idx,
                          const char* open, const char* close);

/// Index of the matching opener for the closer at `close_idx`.
/// Returns npos when unbalanced.
std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close_idx, const char* open,
                           const char* close);

/// True when the token is a punct with exactly this text.
bool is_punct(const Token& t, const char* text);

/// True when the token is an identifier with exactly this text.
bool is_ident(const Token& t, const char* text);

}  // namespace mc::lint
