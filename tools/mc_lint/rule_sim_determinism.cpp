// sim-determinism — protects the bit-identical-replay property.
//
// Every differential suite in this repo (fast-path equivalence, fault
// overhead, telemetry overhead) asserts that simulated costs are
// *bit-identical* across configurations.  That property dies quietly the
// moment a TU that charges SimClock costs consults a host wall clock,
// hardware entropy, or hash-table iteration order.  This rule fires on:
//
//   * steady_clock / system_clock / high_resolution_clock mentions,
//   * std::random_device,
//   * range-for iteration over a container declared unordered_* in the
//     same TU,
//
// in any TU that references the simulated-time vocabulary (SimClock,
// SimNanos, charge, advance_raw, sim_ms/sim_us).  src/telemetry/ is the
// audited allowlist: trace spans measure *host* time by design and the
// overhead gate proves the sim stream is unaffected (DESIGN.md §9).
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

bool sim_time_tu(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.kind != Tok::kIdent) {
      continue;
    }
    if (t.text == "SimClock" || t.text == "SimNanos" || t.text == "charge" ||
        t.text == "advance_raw" || t.text == "sim_ms" || t.text == "sim_us") {
      return true;
    }
  }
  return false;
}

bool unordered_type(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

}  // namespace

void sim_determinism(const std::vector<Token>& toks, const std::string& file,
                     std::vector<Finding>& out) {
  if (telemetry_owner(file)) {
    return;  // audited allowlist: host-time tracing is its contract
  }
  if (!sim_time_tu(toks)) {
    return;
  }

  // Containers declared unordered in this TU: `unordered_map<...> name`.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !unordered_type(toks[i].text) ||
        !is_punct(toks[i + 1], "<")) {
      continue;
    }
    const std::size_t c = match_forward(toks, i + 1, "<", ">");
    if (c == std::string::npos) {
      continue;
    }
    // Skip ref/pointer declarators between the template args and the name.
    std::size_t j = c + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_punct(toks[j], "&&"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) {
      continue;
    }
    unordered_vars.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) {
      continue;
    }
    if (t.text == "steady_clock" || t.text == "system_clock" ||
        t.text == "high_resolution_clock") {
      out.push_back(
          {file, t.line, "sim-determinism",
           "'" + t.text +
               "' reads the host wall clock in a simulated-time TU; charge "
               "SimClock costs instead (bit-identical replay)"});
      continue;
    }
    if (t.text == "random_device") {
      out.push_back(
          {file, t.line, "sim-determinism",
           "std::random_device is nondeterministic; use the seeded "
           "generators in util/rng.hpp"});
      continue;
    }
    // Range-for over an unordered container declared in this TU.
    if (t.text == "for" && i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close == std::string::npos) {
        continue;
      }
      // Find the top-level ':' (not '::') — the range-for separator.
      std::size_t colon = std::string::npos;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        const Token& p = toks[k];
        if (p.kind != Tok::kPunct) {
          continue;
        }
        if (p.text == "(" || p.text == "[" || p.text == "{" || p.text == "<") {
          ++depth;
        } else if (p.text == ")" || p.text == "]" || p.text == "}" ||
                   p.text == ">") {
          --depth;
        } else if (p.text == ":" && depth == 0) {
          colon = k;
          break;
        }
      }
      if (colon == std::string::npos) {
        continue;
      }
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (toks[k].kind == Tok::kIdent &&
            unordered_vars.count(toks[k].text) > 0) {
          out.push_back(
              {file, toks[k].line, "sim-determinism",
               "iteration over unordered container '" + toks[k].text +
                   "' has platform-dependent order in a simulated-time TU; "
                   "use an ordered container or sort the keys first"});
          break;
        }
      }
    }
  }
}

}  // namespace mc::lint::rules
