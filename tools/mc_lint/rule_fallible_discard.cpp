// fallible-discard — the cross-file [[nodiscard]] the fault domain needs.
//
// A Fallible<T>/MaybeFault return *is* the fault-propagation channel: a
// call whose result is dropped on the floor silently converts a guest
// fault into "nothing happened", which is exactly the bug class PR 4's
// structured fault domain exists to kill.  The compiler's [[nodiscard]]
// only fires where the attribute is spelled; this rule enforces it from
// the index, across files, with or without the annotation.
//
// A call counts as discarded when it forms a complete expression
// statement: `s.try_read_va(va, out);` — including one nested inside an
// `if (...) call();` body.  Binding the value, branching on it, returning
// it, passing it on, `std::ignore = ...`, and an explicit `(void)` cast
// are all uses.
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

/// Walks left over a `recv.chain->name` receiver to the first token of the
/// full call expression.  Returns the index of that first token.
std::size_t chain_start(const std::vector<Token>& toks, std::size_t callee) {
  std::size_t j = callee;
  while (j >= 2) {
    const Token& sep = toks[j - 1];
    if (!is_punct(sep, ".") && !is_punct(sep, "->") && !is_punct(sep, "::")) {
      break;
    }
    const Token& recv = toks[j - 2];
    if (recv.kind == Tok::kIdent) {
      j -= 2;
      continue;
    }
    if (is_punct(recv, ")")) {
      // Receiver is itself a call: `session().try_x(...)`.  Walk over the
      // balanced parens and the name before them.
      const std::size_t open = match_backward(toks, j - 2, "(", ")");
      if (open == std::string::npos || open == 0 ||
          toks[open - 1].kind != Tok::kIdent) {
        break;
      }
      j = open - 1;
      continue;
    }
    break;
  }
  return j;
}

/// True when the token before the statement is a statement boundary — the
/// call's value has nowhere to go.
bool at_statement_position(const std::vector<Token>& toks, std::size_t first) {
  if (first == 0) {
    return true;
  }
  const Token& p = toks[first - 1];
  if (is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}")) {
    return true;
  }
  if (is_ident(p, "else") || is_ident(p, "do")) {
    return true;
  }
  if (is_punct(p, ")")) {
    // Either a control-flow head `if (...) call();` (discard) or a cast
    // `(void) call();` (sanctioned explicit discard) or something we can't
    // classify (stay quiet).
    const std::size_t open = match_backward(toks, first - 1, "(", ")");
    if (open == std::string::npos) {
      return false;
    }
    if (open + 2 == first - 1 && is_ident(toks[open + 1], "void")) {
      return false;  // (void)call() — explicit, audited discard
    }
    if (open > 0) {
      const Token& head = toks[open - 1];
      if (head.kind == Tok::kIdent &&
          (head.text == "if" || head.text == "for" || head.text == "while" ||
           head.text == "switch")) {
        return true;
      }
    }
    return false;
  }
  return false;
}

}  // namespace

void fallible_discard(const std::vector<Token>& toks, const FunctionIndex& idx,
                      const std::string& file, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || !idx.fallible(t.text) ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string::npos || close + 1 >= toks.size() ||
        !is_punct(toks[close + 1], ";")) {
      continue;  // not a full expression statement
    }
    const std::size_t first = chain_start(toks, i);
    if (!at_statement_position(toks, first)) {
      continue;
    }
    const IndexedDecl* decl = nullptr;
    const auto it = idx.decls().find(t.text);
    if (it != idx.decls().end()) {
      decl = &it->second;
    }
    out.push_back(
        {file, t.line, "fallible-discard",
         "result of fallible '" + t.text + "' (" +
             (decl != nullptr ? decl->return_type : "Fallible") +
             ") is discarded — the fault would be silently dropped; bind "
             "it, branch on ok(), or assign to std::ignore"});
  }
}

}  // namespace mc::lint::rules
