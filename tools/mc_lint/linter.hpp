// mc_lint — in-repo static analysis enforcing ModChecker's guest-memory
// safety invariants.
//
// The linter is deliberately a line-oriented scanner, not a real C++
// front-end: every rule below is decidable from comment/string-stripped
// source text, which keeps the tool dependency-free (it must build in the
// same minimal toolchain as the checker itself) and fast enough to run as
// an always-on ctest.  Rules:
//
//   raw-reinterpret-cast  reinterpret_cast outside util/bytes.hpp — guest
//                         buffers are attacker-controlled; all pointer
//                         reinterpretation goes through mc::as_bytes.
//   raw-memcpy            memcpy outside util/bytes.hpp — use
//                         mc::copy_bytes / load_le* / store_le*, which
//                         bounds-check via MC_CHECK.
//   std-rand              std::rand/srand — all stochastic behaviour flows
//                         from the seeded generators in util/rng.hpp so
//                         experiments stay bit-reproducible.
//   naked-new             `new` expression outside a smart-pointer factory;
//   naked-delete          manual `delete` — ownership is expressed with
//                         std::unique_ptr/std::make_unique (R.11).
//   parser-bounds-check   a function body indexes a ByteView parameter
//                         before any MC_CHECK/size validation — parser
//                         entries must validate bounds first.
//   pipeline-bypass       ModuleSearcher/ModuleParser constructed outside
//                         modchecker/pipeline.{hpp,cpp} (or the components'
//                         own files) — all extraction flows through the
//                         CheckPipeline's Acquire/Parse stages; a second
//                         construction site re-grows the duplicated flow
//                         the staged-pipeline refactor removed.
//   format-bypass         pe::ParsedImage / elf::ElfImage constructed
//                         outside src/pe/ / src/elf/ — module bytes are
//                         interpreted by the plugin the FormatRegistry
//                         (modchecker/format.hpp) resolves; a second
//                         construction site hard-codes one container
//                         format into format-neutral code.
//   catch-swallow         `catch (...)`, or a catch clause with an empty
//                         body — both erase the fault they intercepted.
//                         Handlers must be typed and must handle, convert
//                         to a FaultRecord (util/fault.hpp), or rethrow.
//
// A finding on line N is suppressed by `// mc-lint: allow(<rule>)` either
// at the end of line N or on an otherwise-empty comment line N-1.
#pragma once

#include <string>
#include <vector>

namespace mc::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// All known rule identifiers (the strings accepted by allow(...)).
const std::vector<std::string>& rule_ids();

/// Lints one in-memory translation unit. `file_name` is used for reporting
/// only. Findings are ordered by line.
std::vector<Finding> lint_source(const std::string& file_name,
                                 const std::string& content);

/// Lints one file on disk. Throws mc::Error if unreadable.
std::vector<Finding> lint_file(const std::string& path);

/// Lints every *.cpp / *.hpp under `root` (recursively); `root` may also
/// name a single file. Findings are ordered by (file, line).
std::vector<Finding> lint_tree(const std::string& root);

/// Like lint_tree, but resilient: files that cannot be read are reported
/// into `errors` ("path: reason") and the walk continues.  `errors` may be
/// null (errors are then dropped).
std::vector<Finding> lint_tree(const std::string& root,
                               std::vector<std::string>* errors);

/// "file:line: [rule] message" — the grep/IDE-friendly format.
std::string format_finding(const Finding& f);

/// Files sanctioned to construct ModuleSearcher/ModuleParser (the
/// pipeline-bypass rule's owner set).  Shared with the tier-2 port.
bool pipeline_component_owner(const std::string& file);

/// Files sanctioned to construct pe::ParsedImage / elf::ElfImage (the
/// format-bypass rule's owner set: the format libraries themselves).
bool format_plugin_owner(const std::string& file);

/// Files exempt from adhoc-stats (the telemetry library itself).
bool telemetry_owner(const std::string& file);

}  // namespace mc::lint
