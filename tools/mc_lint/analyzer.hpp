// mc_analyze — the tier-2, token-stream analysis engine.
//
// Tier 1 (linter.hpp) is the fast per-line scanner; this engine re-lexes
// each translation unit into a real token stream, builds a cross-file
// function index (index.hpp) from every indexed path, and runs:
//
//   * the token-stream port of all nine tier-1 rules (byte-identical
//     findings — proven by the differential self-test), and
//   * seven semantic rules the line scanner cannot express:
//
//   fallible-discard   a call to a function indexed as returning
//                      Fallible<T>/MaybeFault whose result is discarded as
//                      a full statement — the fault would be silently
//                      dropped.  Bind it, branch on it, or assign to
//                      std::ignore.
//   lock-order         per-function lock-acquisition graphs (scoped_lock /
//                      lock_guard / unique_lock sites, one call level
//                      inlined through the index): inconsistent A→B/B→A
//                      mutex orderings anywhere, and blocking operations
//                      (pool submit/wait_idle/pool_scan, condvar waits not
//                      releasing the held guard, guest reads) while holding
//                      a service-layer mutex.
//   sim-determinism    wall clocks (steady_clock/system_clock/
//                      high_resolution_clock), std::random_device, and
//                      range-for iteration over unordered containers in any
//                      TU that charges SimClock costs — each breaks the
//                      bit-identical-replay property the differential
//                      suites depend on.  src/telemetry/ is the audited
//                      allowlist: its spans measure *host* time by design.
//   guest-taint        intraprocedural taint from guest-read sources
//                      (read_*/try_read_*, load_le*, as_bytes) to
//                      array-subscript / resize / guest-sized-allocation
//                      sinks without an intervening bounds check (MC_CHECK,
//                      comparison, min/max/clamp).
//   hotpath-copy       owned-buffer materializations and un-dispatched
//                      pairwise byte compares in TUs referencing the
//                      zero-copy Normalize/Compare/Hash vocabulary.
//   watch-bypass       frame_version()/write_counter() polling outside
//                      vmm/write_watch + vmm/phys_mem — dirty checks must
//                      go through WatchSets / domain write generations.
//   shard-bypass       direct FleetService/SweepQueue construction outside
//                      src/service/ and tests — sweeps must enter through
//                      a ShardCoordinator (or the facade) so admission
//                      control, SLO accounting and chaos re-sharding
//                      see them.
//
// `// mc-lint: allow(rule)` suppressions work unchanged for every rule.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "index.hpp"
#include "linter.hpp"

namespace mc::lint {

struct AnalyzeOptions {
  /// Rule ids to skip entirely (the gate-level relaxed sets).
  std::set<std::string> disabled;
  /// (rule, path substring) pairs: findings of `rule` in files whose path
  /// contains the substring are dropped — the audited-allowlist mechanism
  /// (e.g. std-rand in fuzz seeders), preferred over per-line suppression
  /// comments when a whole file/directory is exempt by policy.
  std::vector<std::pair<std::string, std::string>> allow_paths;
};

struct AnalyzeResult {
  std::vector<Finding> findings;  // ordered by (file, line)
  /// Per-file read errors ("path: reason"); the walk continues past them.
  std::vector<std::string> errors;
};

/// The seven semantic rule ids introduced by this engine.
const std::vector<std::string>& analyzer_rule_ids();

/// Full catalog: the ten tier-1 ids plus the seven semantic ids.
std::vector<std::string> all_rule_ids();

class Analyzer {
 public:
  /// Feeds one file to the cross-file index only (not analyzed/reported).
  void index_source(const std::string& file, const std::string& content);

  /// Feeds one file to the index *and* queues it for analysis.
  void add_source(const std::string& file, const std::string& content);

  /// Records a file that could not be read; run() surfaces it.
  void add_error(std::string message) { errors_.push_back(std::move(message)); }

  /// Runs every rule over the queued files.  Callable once per Analyzer.
  AnalyzeResult run(const AnalyzeOptions& opts = {});

  const FunctionIndex& index() const { return index_; }

  /// The tier-2 port of the nine tier-1 rules alone, suppressions applied —
  /// the surface the differential self-test compares against lint_source().
  static std::vector<Finding> legacy_findings(const std::string& file,
                                              const std::string& content);

 private:
  struct Unit {
    std::string file;
    ScannedSource src;
    std::vector<Token> tokens;
  };
  FunctionIndex index_;
  std::vector<Unit> units_;
  std::vector<std::string> errors_;
};

}  // namespace mc::lint
