// hotpath-copy — protects the zero-copy Normalize/Compare/Hash hot path.
//
// The fast path's perf contract is structural: module content flows from
// GuestView spans through the simd dispatcher and the span-streaming
// hashers without ever being flattened into an owned buffer (the bench
// gate asserts pipeline.acquire.materializations == 0 on a clean scan).
// That property regresses one convenient `Bytes tmp = ...` at a time, so
// this rule fires in any TU that references the hot-path vocabulary
// (adjust_rvas, DigestTable, CanonicalPool, process_block,
// hash_item_content, item_content_equal) on:
//
//   * declaration of an owned `Bytes` local/member — borrow ByteView /
//     GuestView spans, or bump-allocate scratch via arena_content_copy;
//   * a call to `content_copy()` — it heap-allocates a fresh owned buffer
//     (`copy_content(out)` into caller scratch stays allowed);
//   * a pairwise indexed byte compare (`a[i] != b[i]`, `==`, `^`) in a TU
//     that never mentions `simd` — the loop bypasses the dispatch kernels
//     (simd::mismatch / simd::equal), so MC_FORCE_SCALAR can no longer
//     pin it and the SWAR/AVX2 speedup gate no longer covers it.
//
// Sanctioned materialization points (forensics, dump paths) carry an
// explicit `// mc-lint: allow(hotpath-copy)` at the site — the audit
// trail is the point.
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

bool hotpath_tu(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.kind != Tok::kIdent) {
      continue;
    }
    if (t.text == "adjust_rvas" || t.text == "DigestTable" ||
        t.text == "CanonicalPool" || t.text == "process_block" ||
        t.text == "hash_item_content" || t.text == "item_content_equal") {
      return true;
    }
  }
  return false;
}

bool mentions_simd(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.kind == Tok::kIdent && t.text == "simd") {
      return true;
    }
  }
  return false;
}

bool pairwise_op(const Token& t) {
  return is_punct(t, "==") || is_punct(t, "!=") || is_punct(t, "^");
}

/// Matches `ident [ ident ]` starting at i; on success stores the index
/// identifier and returns the position one past the `]`.
std::size_t match_indexed(const std::vector<Token>& toks, std::size_t i,
                          std::string* index_name) {
  if (i + 3 >= toks.size() || toks[i].kind != Tok::kIdent ||
      !is_punct(toks[i + 1], "[") || toks[i + 2].kind != Tok::kIdent ||
      !is_punct(toks[i + 3], "]")) {
    return std::string::npos;
  }
  *index_name = toks[i + 2].text;
  return i + 4;
}

}  // namespace

void hotpath_copy(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out) {
  if (!hotpath_tu(toks)) {
    return;
  }
  const bool dispatched = mentions_simd(toks);

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) {
      continue;
    }
    // Owned-buffer declaration: `Bytes name` (not `Bytes name(` — that is
    // a function returning Bytes, which allocates at the *caller*).
    if (t.text == "Bytes" && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::kIdent &&
        (i + 2 >= toks.size() || !is_punct(toks[i + 2], "("))) {
      out.push_back(
          {file, t.line, "hotpath-copy",
           "owned 'Bytes " + toks[i + 1].text +
               "' buffer in a hot-path TU materializes module content; "
               "borrow ByteView/GuestView spans or bump-allocate via "
               "arena_content_copy"});
      continue;
    }
    // Allocating extraction: `content_copy(` returns a fresh owned Bytes.
    if (t.text == "content_copy" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      out.push_back(
          {file, t.line, "hotpath-copy",
           "content_copy() heap-allocates an owned copy in a hot-path TU; "
           "stream the spans (for_each_span / hash_item_content) or copy "
           "into arena scratch with arena_content_copy"});
      continue;
    }
    // Pairwise byte compare outside the dispatch kernels.
    if (!dispatched) {
      std::string idx_a;
      const std::size_t after_a = match_indexed(toks, i, &idx_a);
      if (after_a != std::string::npos && after_a < toks.size() &&
          pairwise_op(toks[after_a])) {
        std::string idx_b;
        if (match_indexed(toks, after_a + 1, &idx_b) != std::string::npos &&
            idx_a == idx_b) {
          out.push_back(
              {file, t.line, "hotpath-copy",
               "pairwise byte compare '" + t.text + "[" + idx_a + "] " +
                   toks[after_a].text + " ...' bypasses the simd dispatcher "
                   "in a hot-path TU; use simd::mismatch / simd::equal so "
                   "MC_FORCE_SCALAR and the speedup gate still apply"});
        }
      }
    }
  }
}

}  // namespace mc::lint::rules
