// mc_lint / mc_analyze CLI — lints the given files or directory trees and
// exits non-zero on any finding.  Registered as ctest gates so invariant
// violations fail the build the same way a unit test does.
//
//   mc_lint [options] <path>...
//
//   --list-rules         print the rule catalog for the selected tier
//   --tier=1|2           1 = line scanner; 2 = token/index engine (default)
//   --format=text|sarif  findings as grep lines or a SARIF 2.1.0 log
//   --output=<file>      write findings there instead of stdout
//   --disable=<r1,r2>    skip the named rules (tier 2)
//   --allow=<rule>:<s>   drop <rule> findings in files whose path contains
//                        <s> — the audited path-allowlist (tier 2)
//   --index=<path>       feed <path> to the cross-file index without
//                        analyzing it (repeatable; tier 2)
//   --budget-ms=<n>      wall-clock budget for --timing-gate (default 5000)
//   --timing-gate        run as the CI timing guard: report elapsed time,
//                        exit 4 over budget, 0 otherwise (findings are not
//                        the gate's concern)
//
// Exit codes: 0 clean, 1 findings, 2 usage error or unreadable files,
// 4 timing budget exceeded.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "linter.hpp"
#include "sarif.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: mc_lint [--list-rules] [--tier=1|2] "
               "[--format=text|sarif] [--output=FILE]\n"
               "               [--disable=RULES] [--allow=RULE:SUBSTR] "
               "[--index=PATH]\n"
               "               [--budget-ms=N] [--timing-gate] <path>...\n");
}

/// Collects every *.cpp / *.hpp under `root` (or `root` itself when it is a
/// file), sorted — the same walk lint_tree does.
void collect(const std::string& root, std::vector<std::string>& files) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    files.push_back(root);
    return;
  }
  std::vector<std::string> found;
  for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  files.insert(files.end(), found.begin(), found.end());
}

bool read_file(const std::string& path, std::string& content,
               std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = path + ": cannot read";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  content = buf.str();
  return true;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) {
      out.push_back(s.substr(begin, end - begin));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::string> paths;
  std::vector<std::string> index_paths;
  mc::lint::AnalyzeOptions opts;
  int tier = 2;
  bool list_rules = false;
  bool timing_gate = false;
  long budget_ms = 5000;
  std::string format = "text";
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg.rfind("--tier=", 0) == 0) {
      const std::string v = value("--tier=");
      if (v != "1" && v != "2") {
        std::fprintf(stderr, "mc_lint: --tier must be 1 or 2\n");
        return 2;
      }
      tier = v == "1" ? 1 : 2;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "mc_lint: --format must be text or sarif\n");
        return 2;
      }
    } else if (arg.rfind("--output=", 0) == 0) {
      output = value("--output=");
    } else if (arg.rfind("--disable=", 0) == 0) {
      for (const std::string& rule : split_commas(value("--disable="))) {
        opts.disabled.insert(rule);
      }
    } else if (arg.rfind("--allow=", 0) == 0) {
      const std::string v = value("--allow=");
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= v.size()) {
        std::fprintf(stderr, "mc_lint: --allow wants RULE:PATH-SUBSTRING\n");
        return 2;
      }
      opts.allow_paths.emplace_back(v.substr(0, colon), v.substr(colon + 1));
    } else if (arg.rfind("--index=", 0) == 0) {
      index_paths.push_back(value("--index="));
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      budget_ms = std::strtol(value("--budget-ms=").c_str(), nullptr, 10);
      if (budget_ms <= 0) {
        std::fprintf(stderr, "mc_lint: --budget-ms wants a positive count\n");
        return 2;
      }
    } else if (arg == "--timing-gate") {
      timing_gate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mc_lint: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    const auto ids =
        tier == 1 ? mc::lint::rule_ids() : mc::lint::all_rule_ids();
    for (const auto& rule : ids) {
      std::printf("%s\n", rule.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    usage(stderr);
    return 2;
  }

  std::vector<mc::lint::Finding> findings;
  std::vector<std::string> errors;
  if (tier == 1) {
    for (const std::string& path : paths) {
      const auto f = mc::lint::lint_tree(path, &errors);
      findings.insert(findings.end(), f.begin(), f.end());
    }
  } else {
    mc::lint::Analyzer analyzer;
    std::vector<std::string> index_files;
    for (const std::string& path : index_paths) {
      collect(path, index_files);
    }
    std::vector<std::string> files;
    for (const std::string& path : paths) {
      collect(path, files);
    }
    for (const std::string& file : index_files) {
      std::string content;
      std::string error;
      if (read_file(file, content, error)) {
        analyzer.index_source(file, content);
      } else {
        analyzer.add_error(error);
      }
    }
    for (const std::string& file : files) {
      std::string content;
      std::string error;
      if (read_file(file, content, error)) {
        analyzer.add_source(file, content);
      } else {
        analyzer.add_error(error);
      }
    }
    auto result = analyzer.run(opts);
    findings = std::move(result.findings);
    errors = std::move(result.errors);
  }

  std::string rendered;
  if (format == "sarif") {
    const auto catalog =
        tier == 1 ? mc::lint::rule_ids() : mc::lint::all_rule_ids();
    rendered = mc::lint::to_sarif(findings, catalog);
  } else {
    for (const auto& finding : findings) {
      rendered += mc::lint::format_finding(finding) + "\n";
    }
  }
  if (output.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mc_lint: cannot write %s\n", output.c_str());
      return 2;
    }
    out << rendered;
  }

  for (const std::string& error : errors) {
    std::fprintf(stderr, "mc_lint: %s\n", error.c_str());
  }

  if (timing_gate) {
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::fprintf(stderr, "mc_lint: analyzed in %lld ms (budget %ld ms)\n",
                 static_cast<long long>(elapsed_ms), budget_ms);
    return elapsed_ms > budget_ms ? 4 : 0;
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "mc_lint: %zu finding(s)\n", findings.size());
  }
  if (!errors.empty()) {
    std::fprintf(stderr, "mc_lint: %zu file error(s)\n", errors.size());
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
