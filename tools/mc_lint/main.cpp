// mc_lint CLI — lints the given files/directories and exits non-zero on
// any finding.  Registered as a ctest over src/ so invariant violations
// fail the build the same way a unit test does.
//
//   mc_lint <path>...       lint files or directory trees (*.cpp, *.hpp)
//   mc_lint --list-rules    print the rule catalog and exit
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "linter.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : mc::lint::rule_ids()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: mc_lint [--list-rules] <path>...\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: mc_lint [--list-rules] <path>...\n");
    return 2;
  }

  std::vector<mc::lint::Finding> findings;
  try {
    for (const std::string& path : paths) {
      const auto f = mc::lint::lint_tree(path);
      findings.insert(findings.end(), f.begin(), f.end());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  for (const auto& finding : findings) {
    std::printf("%s\n", mc::lint::format_finding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "mc_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
