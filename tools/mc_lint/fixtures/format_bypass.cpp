// Fixture: format-bypass violations (scanned by mc_lint tests, never
// compiled).  This file does not live under pe/ or elf/, so constructing
// the format parsers directly must be flagged.

class ParsedImage;  // forward declaration: not a finding

struct Cache {
  ElfImage owned_;  // owning member outside the plugin: a finding
};

void inspect(ByteView mapped, const vmi::GuestView& view) {
  pe::ParsedImage parsed(mapped);
  auto items = elf::ElfImage(view).extract_items(view);
  const ParsedImage fallback{};
  // mc-lint: allow(format-bypass)
  elf::ElfImage sanctioned(mapped);
  use(parsed, items, fallback, sanctioned);
}

void pass_through(ParsedImage& borrowed, const ElfImage* ptr);
