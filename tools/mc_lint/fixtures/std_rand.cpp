// Fixture: std-rand violations (scanned by mc_lint tests, never
// compiled).
#include <cstdlib>

int noisy() {
  std::srand(42);
  return std::rand();
}
