// Fixture: pipeline-bypass violations (scanned by mc_lint tests, never
// compiled).  This file does not live under modchecker/, so constructing
// or owning the Searcher/Parser components directly must be flagged.

class ModuleSearcher;  // forward declaration: not a finding

struct Holder {
  ModuleParser owned_;  // owning member outside the pipeline: a finding
};

void scan(VmiSession& session, const ModuleImage& image) {
  ModuleSearcher searcher(session);
  auto modules = core::ModuleSearcher(session).list_modules();
  const ModuleParser parser{};
  // mc-lint: allow(pipeline-bypass)
  ModuleSearcher sanctioned(session);
  use(searcher, modules, parser, sanctioned);
}

void pass_through(ModuleSearcher& borrowed, const ModuleParser* ptr);
