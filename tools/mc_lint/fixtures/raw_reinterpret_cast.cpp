// Fixture: raw-reinterpret-cast violation (scanned by mc_lint tests,
// never compiled).
#include <cstdint>

const std::uint8_t* view(const char* p) {
  return reinterpret_cast<const std::uint8_t*>(p);
}
