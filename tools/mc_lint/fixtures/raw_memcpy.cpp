// Fixture: raw-memcpy violation (scanned by mc_lint tests, never
// compiled).
#include <cstring>

void copy(void* dst, const void* src, unsigned long n) {
  std::memcpy(dst, src, n);
}
