// Fixture: catch-swallow violations (scanned by mc_lint tests, never
// compiled).  Flagged: the catch-all (7), the empty typed handler (12),
// the comment-only handler (21 — comments don't make a body non-empty)
// and the multi-line catch-all (26).  Not flagged: the non-empty typed
// handler (16) and the allow()-escaped catch-all (33).
void swallow() {
  try { work(); } catch (...) {
    log("ignored");
  }
  try {
    work();
  } catch (const Error& e) {
  }
  try {
    work();
  } catch (const Error& e) {
    handle(e);
  }
  try {
    work();
  } catch (const Error& e) {
    // a comment does not make the handler non-empty
  }
  try {
    work();
  } catch (
      ...) {
    handle_all();
  }
  try {
    work();
    // mc-lint: allow(catch-swallow)
  } catch (...) {
    retry();
  }
}
