// Fixture: adhoc-stats violations (scanned by mc_lint tests, never
// compiled).
#include <cstdint>

struct ScanStats {
  std::uint64_t reads = 0;
};

struct Stats { int n = 0; };

struct PoolStats;

// mc-lint: allow(adhoc-stats)
struct ResultStats {
  double mean = 0;
};

struct Status { int s = 0; };
