// Fixture: parser-bounds-check (scanned by mc_lint tests, never
// compiled).
#include <cstdint>
#include <span>

using ByteView = std::span<const std::uint8_t>;

std::uint8_t unchecked_first(ByteView image) {
  return image[0];
}

std::uint8_t checked_first(ByteView image) {
  MC_CHECK(image.size() >= 1, "image too small");
  return image[0];  // ok: bounds validated above
}
