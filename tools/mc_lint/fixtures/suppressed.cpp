// Fixture: the suppression mechanism (scanned by mc_lint tests, never
// compiled).
#include <cstring>

void blessed(void* dst, const void* src, unsigned long n) {
  std::memcpy(dst, src, n);  // mc-lint: allow(raw-memcpy)
  // mc-lint: allow(raw-memcpy)
  std::memcpy(dst, src, n);
  std::memcpy(dst, src, n);  // mc-lint: allow(raw-reinterpret-cast)
}
