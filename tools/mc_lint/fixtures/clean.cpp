// Fixture: zero findings expected — the linter must not fire on comments,
// string literals, or identifiers that merely contain banned substrings.
#include <string>

// reinterpret_cast in a comment; memcpy too; new Widget; delete w; rand().
const char* kDoc = "call memcpy or reinterpret_cast or new Widget";

struct Alert {
  bool is_new = false;   // `new` inside an identifier
  bool renewed = false;  // likewise
};

struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

int stranded = 0;  // "rand" inside a word
