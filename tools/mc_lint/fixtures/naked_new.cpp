// Fixture: naked-new / naked-delete violations (scanned by mc_lint tests,
// never compiled).

struct Widget {};

Widget* make() { return new Widget(); }
void unmake(Widget* w) { delete w; }

struct NoCopy {
  NoCopy(const NoCopy&) = delete;  // a deleted member is NOT a finding
};
