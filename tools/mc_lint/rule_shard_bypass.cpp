// shard-bypass — protects the sharded control plane's layering.
//
// Since the control-plane refactor, FleetService is a facade and SweepQueue
// is an internal per-shard primitive: every sweep is supposed to enter the
// system through a ShardCoordinator (or the facade), where routing,
// admission control, load shedding and the chaos re-shard all live.  Code
// that constructs a FleetService or a raw SweepQueue outside the service
// layer silently bypasses all of that — its sweeps never hit the bounded
// queues, never count against the SLO, and are invisible to a re-shard —
// so the rule flags direct construction (stack, new, make_unique/shared)
// of either type outside the sanctioned TUs (src/service/* — the layer
// itself — and tests, which exercise internals on purpose).
//
// A deliberate exception (a focused benchmark, a fixture) carries an
// explicit `// mc-lint: allow(shard-bypass)` at the site.
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

bool sanctioned_tu(const std::string& file) {
  return file.find("service/") != std::string::npos ||
         file.find("test") != std::string::npos;
}

bool is_guarded_type(const Token& t) {
  return t.kind == Tok::kIdent &&
         (t.text == "FleetService" || t.text == "SweepQueue");
}

}  // namespace

void shard_bypass(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out) {
  if (sanctioned_tu(file)) {
    return;
  }
  const auto flag = [&](const Token& t) {
    out.push_back(
        {file, t.line, "shard-bypass",
         "direct " + t.text +
             " construction bypasses the shard coordinator; submit sweeps "
             "through a ShardCoordinator (or the FleetService facade) so "
             "admission control, SLO accounting and chaos re-sharding see "
             "them"});
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    // `FleetService svc(...)` / `SweepQueue q;` — a declaration: the type
    // name followed by an identifier.  (Qualified uses like
    // `FleetService::Stats` have punctuation next and stay legal.)
    if (is_guarded_type(t) && toks[i + 1].kind == Tok::kIdent) {
      flag(t);
      continue;
    }
    // `new FleetService(...)`.
    if (t.kind == Tok::kIdent && t.text == "new" &&
        is_guarded_type(toks[i + 1])) {
      flag(toks[i + 1]);
      continue;
    }
    // `make_unique<FleetService>(...)` / `make_shared<SweepQueue>()`.
    if (t.kind == Tok::kIdent &&
        (t.text == "make_unique" || t.text == "make_shared") &&
        i + 2 < toks.size() && is_punct(toks[i + 1], "<") &&
        is_guarded_type(toks[i + 2])) {
      flag(toks[i + 2]);
      continue;
    }
  }
}

}  // namespace mc::lint::rules
