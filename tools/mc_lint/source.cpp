#include "source.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mc::lint {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

std::size_t find_token(const std::string& line, const std::string& token,
                       std::size_t from) {
  for (std::size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) {
      return pos;
    }
  }
  return std::string::npos;
}

bool has_token(const std::string& line, const std::string& token) {
  return find_token(line, token) != std::string::npos;
}

std::string word_before(const std::string& line, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_word_char(line[begin - 1])) {
    --begin;
  }
  return line.substr(begin, end - begin);
}

ScannedSource scan(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  ScannedSource out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  flush_line();
  return out;
}

std::map<std::size_t, std::set<std::string>> suppressions(
    const ScannedSource& src) {
  static const std::string kMarker = "mc-lint: allow(";
  std::map<std::size_t, std::set<std::string>> by_line;
  for (std::size_t i = 0; i < src.comments.size(); ++i) {
    const std::string& comment = src.comments[i];
    for (std::size_t pos = comment.find(kMarker); pos != std::string::npos;
         pos = comment.find(kMarker, pos + 1)) {
      const std::size_t open = pos + kMarker.size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) {
        continue;
      }
      std::stringstream list(comment.substr(open, close - open));
      std::string rule;
      const std::size_t target = is_blank(src.code[i]) ? i + 1 : i;
      while (std::getline(list, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](char c) {
                                    return std::isspace(
                                               static_cast<unsigned char>(c)) !=
                                           0;
                                  }),
                   rule.end());
        if (!rule.empty()) {
          by_line[target].insert(rule);
        }
      }
    }
  }
  return by_line;
}

}  // namespace mc::lint
