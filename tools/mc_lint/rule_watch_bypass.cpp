// watch-bypass — protects the WriteWatch dirty-tracking contract.
//
// PhysicalMemory still exposes the raw per-frame stamp surface
// (frame_version() / write_counter()) because the watch layer itself and
// the snapshot machinery are built on it, but polling those stamps from
// anywhere else re-creates the O(frames) version sweep the WriteWatch
// subsystem was introduced to kill: consumers register a WatchSet once and
// ask one O(1) dirty question per scan, and the fleet skips whole sweeps
// on an unchanged domain_write_generation().  A new frame_version() loop
// in a scanner would silently work — and silently regress every dirty
// check back to linear — so the rule flags any call to either accessor
// outside the sanctioned TUs (vmm/write_watch*, vmm/phys_mem* — the
// facility and its producer).
//
// A deliberate poll (a debugging aid, a fixture) carries an explicit
// `// mc-lint: allow(watch-bypass)` at the site, keeping the audit trail.
#include "rules.hpp"

namespace mc::lint::rules {

namespace {

bool sanctioned_tu(const std::string& file) {
  return file.find("write_watch") != std::string::npos ||
         file.find("phys_mem") != std::string::npos;
}

}  // namespace

void watch_bypass(const std::vector<Token>& toks, const std::string& file,
                  std::vector<Finding>& out) {
  if (sanctioned_tu(file)) {
    return;
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent ||
        (t.text != "frame_version" && t.text != "write_counter") ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    out.push_back(
        {file, t.line, "watch-bypass",
         t.text + "() polls per-frame write stamps directly; register a "
                  "WatchSet on the hypervisor's WriteWatch (or compare "
                  "domain_write_generation()) so dirty checks stay O(1) "
                  "instead of sweeping frame versions"});
  }
}

}  // namespace mc::lint::rules
