// A2 — baseline comparison matrix (paper §II, made quantitative).
//
// Runs every attack scenario (plus two legitimate-update scenarios) against
// four detectors: ModChecker, the signed-module hash dictionary, SVV-style
// disk/memory cross-view, and a LKIM-style trusted-repository checker.
// The matrix substantiates the paper's positioning claims:
//   * hash dictionaries miss every memory-only attack and false-positive
//     on legitimate updates;
//   * SVV is blind when disk and memory are consistently infected;
//   * LKIM catches everything but needs the trusted repository ModChecker
//     is designed to avoid — and ModChecker accepts a pool-wide legitimate
//     update with no re-registration at all.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <memory>

#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "baselines/disk_crossview.hpp"
#include "baselines/hash_dict.hpp"
#include "baselines/lkim_style.hpp"
#include "baselines/pioneer_style.hpp"
#include "cloud/catalog.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

/// Builds an "updated" (legitimate new version) file for a module by
/// regenerating it with a different code seed.
Bytes build_updated_module(const std::string& name) {
  for (auto spec : cloud::default_catalog()) {
    if (spec.name == name) {
      spec.seed ^= 0x5EEDF00Dull;  // new compiler output, same module
      return cloud::build_driver_image(spec);
    }
  }
  throw NotFoundError("no catalog entry for " + name);
}

void install_update(cloud::CloudEnvironment& env, vmm::DomainId vm,
                    const std::string& module, const Bytes& file) {
  env.write_disk_file(vm, module, file);
  env.loader(vm).unload(module);
  env.loader(vm).load(module, file);
}

struct ScenarioResult {
  bool modchecker = false;
  bool hash_dict = false;
  bool svv = false;
  bool lkim = false;
  bool pioneer = false;
};

ScenarioResult evaluate(cloud::CloudEnvironment& env, vmm::DomainId victim,
                        const std::string& module) {
  ScenarioResult r;

  core::ModChecker checker(env.hypervisor());
  r.modchecker = !checker.check_module(victim, module).subject_clean;

  const baselines::HashDictChecker hash_dict(env.golden().all());
  r.hash_dict = hash_dict.check(env, victim, module).flagged;

  const baselines::DiskCrossViewChecker svv;
  r.svv = svv.check(env, victim, module).flagged;

  const baselines::LkimStyleChecker lkim(env.golden().all());
  r.lkim = lkim.check(env, victim, module).flagged;

  const baselines::PioneerStyleChecker pioneer(env.golden().all());
  r.pioneer = pioneer.check(env, victim, module).flagged;
  return r;
}

void print_row(const char* scenario, const char* expected,
               const ScenarioResult& r) {
  const auto mark = [](bool flagged) { return flagged ? "FLAG " : "  -  "; };
  std::printf("%-34s %5s %5s %5s %5s %5s   %s\n", scenario,
              mark(r.modchecker), mark(r.hash_dict), mark(r.svv),
              mark(r.lkim), mark(r.pioneer), expected);
}

void print_table() {
  std::printf("=== A2: detector comparison matrix (5-VM pools) ===\n");
  std::printf("%-34s %5s %5s %5s %5s %5s   %s\n", "scenario", "MODCH",
              "HDICT", "SVV", "LKIM", "PION", "desired outcome");

  const auto fresh_env = [] {
    cloud::CloudConfig cfg;
    cfg.guest_count = 5;
    return std::make_unique<cloud::CloudEnvironment>(cfg);
  };

  {  // E1: disk-first .text infection.
    auto env = fresh_env();
    attacks::OpcodeReplaceAttack{}.apply(*env, env->guests()[0], "hal.dll");
    print_row("E1 opcode replace (disk-first)", "all but SVV flag",
              evaluate(*env, env->guests()[0], "hal.dll"));
  }
  {  // E2: memory-only inline hook.
    auto env = fresh_env();
    attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
    print_row("E2 inline hook (memory-only)", "HDICT misses",
              evaluate(*env, env->guests()[0], "hal.dll"));
  }
  {  // E3: disk-first stub patch.
    auto env = fresh_env();
    attacks::StubPatchAttack{}.apply(*env, env->guests()[0], "dummy.sys");
    print_row("E3 stub patch (disk-first)", "all but SVV flag",
              evaluate(*env, env->guests()[0], "dummy.sys"));
  }
  {  // E4: disk-first import injection.
    auto env = fresh_env();
    attacks::DllImportInjectAttack{}.apply(*env, env->guests()[0],
                                           "dummy.sys");
    print_row("E4 DLL import inject (disk-first)", "all but SVV flag",
              evaluate(*env, env->guests()[0], "dummy.sys"));
  }
  {  // memory-only header tamper.
    auto env = fresh_env();
    attacks::HeaderTamperAttack{}.apply(*env, env->guests()[0], "ntfs.sys");
    print_row("header tamper (memory-only)", "HDICT misses",
              evaluate(*env, env->guests()[0], "ntfs.sys"));
  }
  {  // IAT hook: only the function-pointer-aware LKIM catches it.
    auto env = fresh_env();
    attacks::IatHookAttack{}.apply(*env, env->guests()[0], "http.sys");
    print_row("IAT hook (memory-only)", "only LKIM flags",
              evaluate(*env, env->guests()[0], "http.sys"));
  }
  {  // Legitimate update rolled out to the WHOLE pool: only ModChecker
     // stays quiet without re-registration.
    auto env = fresh_env();
    const Bytes updated = build_updated_module("ntfs.sys");
    for (const auto vm : env->guests()) {
      install_update(*env, vm, "ntfs.sys", updated);
    }
    print_row("legit update, whole pool", "only MODCH stays quiet",
              evaluate(*env, env->guests()[0], "ntfs.sys"));
  }
  {  // Legitimate update on ONE VM only: ModChecker's documented false
     // positive (it sees a discrepancy, which is the intended trigger for
     // deeper analysis).
    auto env = fresh_env();
    install_update(*env, env->guests()[0], "ntfs.sys",
                   build_updated_module("ntfs.sys"));
    print_row("legit update, one VM only",
              "MODCH FP by design; SVV silent (consistent)",
              evaluate(*env, env->guests()[0], "ntfs.sys"));
  }
  std::printf("\n");
}

void BM_BaselineLkim(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 5;
  cloud::CloudEnvironment env(cfg);
  const baselines::LkimStyleChecker lkim(env.golden().all());
  for (auto _ : state) {
    auto out = lkim.check(env, env.guests()[0], "http.sys");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BaselineLkim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
