// A3 — Algorithm 2 cost & design ablation.
//
// ModChecker's dictionary-free design hinges on recovering RVAs by
// *pairwise diffing* (Algorithm 2) instead of consulting relocation
// metadata.  This bench quantifies that choice:
//   (1) real host throughput of adjust_rvas vs section size,
//   (2) sensitivity to relocation density (more fixups = more rewrite
//       work),
//   (3) the alternative design: normalization via the module's own .reloc
//       records (what a LKIM-style tool does), for the same inputs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "modchecker/rva_adjust.hpp"
#include "pe/reloc.hpp"
#include "util/rng.hpp"

namespace {

using namespace mc;

struct SectionPair {
  Bytes a;
  Bytes b;
  std::uint32_t base_a = 0xF8CC2000;
  std::uint32_t base_b = 0xF8D0C000;
  std::vector<std::uint32_t> fixups;  // offsets of the planted addresses
};

/// Builds two copies of a synthetic code section that differ exactly at
/// `density` * size / 4 planted absolute addresses.
SectionPair make_pair(std::size_t size, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SectionPair p;
  p.a.resize(size);
  for (auto& byte : p.a) {
    byte = static_cast<std::uint8_t>(rng.next() & 0x7F);  // "opcode soup"
  }
  p.b = p.a;

  const auto address_count =
      static_cast<std::size_t>(static_cast<double>(size) / 4.0 * density);
  std::size_t planted = 0;
  std::size_t cursor = 8;
  while (planted < address_count && cursor + 4 < size) {
    const auto rva = static_cast<std::uint32_t>(rng.below(0x100000));
    store_le32(p.a, cursor, p.base_a + rva);
    store_le32(p.b, cursor, p.base_b + rva);
    p.fixups.push_back(static_cast<std::uint32_t>(cursor));
    ++planted;
    const std::uint64_t mean_gap = size / (address_count + 1) + 1;
    cursor += 4 + rng.below(mean_gap);
  }
  return p;
}

void print_table() {
  std::printf("=== A3: Algorithm 2 (diff-based RVA recovery) ablation ===\n");
  std::printf("%-12s %-10s %12s %14s %16s\n", "section[KB]", "density",
              "addresses", "adjusted", "unresolved");
  for (const std::size_t kb : {std::size_t{16}, std::size_t{64},
                               std::size_t{256}}) {
    for (const double density : {0.02, 0.10, 0.25}) {
      auto pair = make_pair(kb * 1024, density, 99);
      const auto result = core::adjust_rvas(pair.a, pair.base_a, pair.b,
                                            pair.base_b);
      std::printf("%-12zu %-10.2f %12zu %14u %16u\n", kb, density,
                  pair.fixups.size(), result.adjusted,
                  result.unresolved_diffs);
    }
  }
  std::printf("\n(adjusted == addresses and unresolved == 0 on every row "
              "means Algorithm 2\n recovers every relocation without "
              "metadata — the paper's core claim.)\n\n");
}

void BM_AdjustRvas(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const auto pristine = make_pair(size, density, 1234);
  for (auto _ : state) {
    state.PauseTiming();
    auto pair = pristine;  // adjust_rvas mutates
    state.ResumeTiming();
    auto result = core::adjust_rvas(pair.a, pair.base_a, pair.b, pair.base_b);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_AdjustRvas)
    ->Args({16 * 1024, 10})
    ->Args({64 * 1024, 10})
    ->Args({256 * 1024, 10})
    ->Args({64 * 1024, 2})
    ->Args({64 * 1024, 25})
    ->Unit(benchmark::kMicrosecond);

/// The metadata-based alternative: undo relocations using the .reloc list
/// (requires trusting/locating the records — the dependency Algorithm 2
/// avoids).
void BM_RelocMetadataNormalize(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto pristine = make_pair(size, 0.10, 1234);
  for (auto _ : state) {
    state.PauseTiming();
    auto pair = pristine;
    state.ResumeTiming();
    // Subtract each base from its copy's planted addresses.
    pe::apply_relocations(pair.a, pair.fixups, 0u - pair.base_a);
    pe::apply_relocations(pair.b, pair.fixups, 0u - pair.base_b);
    benchmark::DoNotOptimize(pair);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_RelocMetadataNormalize)
    ->Arg(16 * 1024)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
