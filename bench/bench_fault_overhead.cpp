// Fault-domain overhead gate.
//
// The fault refactor put a retry loop and an injector check on the scan
// hot path; this bench proves the *disabled* machinery is free:
//
//   1. determinism — on a clean t=15 pool, the simulated costs and every
//      verdict are bit-identical whether the retry policy is present
//      (default), reduced to one attempt (the pre-refactor shape), or the
//      injector is armed with all-zero fault rates (gate open, dice
//      rolling, nothing faulting);
//   2. real time — the default configuration's wall-clock cost stays
//      within 2% of the single-attempt configuration (min-of-N on an
//      interleaved schedule, so machine noise hits both sides alike).
//
// Exit status: non-zero on any verdict difference, simulated-cost
// difference, or overhead above the threshold — a CI regression gate like
// bench_ablation_fastpath.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "vmm/fault_injection.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";  // largest catalog module
constexpr std::size_t kPoolSize = 15;        // the paper's t=15 point
constexpr double kMaxOverhead = 1.02;
constexpr int kReps = 9;  // min-of-N per configuration

core::ModCheckerConfig single_attempt_config() {
  core::ModCheckerConfig cfg;
  cfg.retry.max_attempts = 1;  // no retry loop iterations, ever
  return cfg;
}

bool same_scan(const core::PoolScanReport& a, const core::PoolScanReport& b) {
  if (a.verdicts.size() != b.verdicts.size() ||
      a.cpu_times.searcher != b.cpu_times.searcher ||
      a.cpu_times.parser != b.cpu_times.parser ||
      a.cpu_times.checker != b.cpu_times.checker ||
      a.wall_time != b.wall_time || !a.quarantined.empty() ||
      !b.quarantined.empty() || !a.faults.empty() || !b.faults.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    if (a.verdicts[i].clean != b.verdicts[i].clean ||
        a.verdicts[i].successes != b.verdicts[i].successes ||
        a.verdicts[i].total != b.verdicts[i].total ||
        !a.verdicts[i].clean) {  // clean pool: everything must be clean
      return false;
    }
  }
  return true;
}

double min_scan_seconds(cloud::CloudEnvironment& env,
                        const core::ModCheckerConfig& cfg) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    core::ModChecker checker(env.hypervisor(), cfg);
    const auto t0 = std::chrono::steady_clock::now();
    auto report = checker.scan_pool(kModule, env.guests());
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(report);
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) {
      best = s;
    }
  }
  return best;
}

int run_gate(const std::string& json_path) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);

  std::printf("=== fault-domain overhead gate (module %s, t=%zu) ===\n",
              kModule, kPoolSize);

  // 1. Determinism: default vs single-attempt vs armed-with-zero-rates.
  const auto baseline = core::ModChecker(env.hypervisor(), {})
                            .scan_pool(kModule, env.guests());
  const auto single = core::ModChecker(env.hypervisor(),
                                       single_attempt_config())
                          .scan_pool(kModule, env.guests());
  for (const vmm::DomainId vm : env.guests()) {
    env.hypervisor().fault_injector().arm(vm, vmm::FaultProfile{});
  }
  const auto armed_zero = core::ModChecker(env.hypervisor(), {})
                              .scan_pool(kModule, env.guests());
  env.hypervisor().fault_injector().disarm_all();

  const bool identical =
      same_scan(baseline, single) && same_scan(baseline, armed_zero);
  std::printf("simulated costs bit-identical across configs: %s\n",
              identical ? "yes" : "NO");

  // 2. Real time: interleave the two configurations so drift hits both.
  double default_s = 1e300;
  double single_s = 1e300;
  for (int round = 0; round < 3; ++round) {
    const double d = min_scan_seconds(env, {});
    const double s = min_scan_seconds(env, single_attempt_config());
    if (d < default_s) {
      default_s = d;
    }
    if (s < single_s) {
      single_s = s;
    }
  }
  const double ratio = default_s / single_s;
  std::printf("min scan: default %.3f ms, single-attempt %.3f ms, "
              "ratio %.4f (required < %.2f)\n",
              default_s * 1e3, single_s * 1e3, ratio, kMaxOverhead);

  const bool pass = identical && ratio < kMaxOverhead;
  std::printf("=> %s\n", pass ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"fault_overhead\",\n"
                 "  \"module\": \"%s\",\n  \"pool_size\": %zu,\n"
                 "  \"sim_identical\": %s,\n"
                 "  \"default_ms\": %.6f,\n  \"single_attempt_ms\": %.6f,\n"
                 "  \"ratio\": %.6f,\n  \"max_ratio\": %.2f,\n"
                 "  \"pass\": %s\n}\n",
                 kModule, kPoolSize, identical ? "true" : "false",
                 default_s * 1e3, single_s * 1e3, ratio, kMaxOverhead,
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

void BM_CleanScanDefaultRetry(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CleanScanDefaultRetry)->Unit(benchmark::kMillisecond);

void BM_CleanScanSingleAttempt(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor(), single_attempt_config());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CleanScanSingleAttempt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fault_overhead.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_gate(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
