// Event-driven sweep throughput — the WriteWatch payoff quantified.
//
// A cadence deployment re-extracts every module image every tick even when
// the guests never wrote the pages (Fig. 7 attributes the cost to exactly
// that page-wise extraction).  The WriteWatch-backed incremental scanner
// re-reads only dirty pages, so its steady-state cost scales with the
// write weather, not the pool size.  This bench sweeps the dirty fraction
// (share of the pool's watched module pages written between ticks) at
// t=15 and reports simulated sweeps/sec for both scanners.
//
// The weather writes are benign touches (each dirtied byte is rewritten
// with its current value): frames go dirty, content stays clean, so both
// scanners must keep returning identical all-clean verdicts while the
// incremental one pays only for the touched pages.
//
// Exit status: non-zero if the event-driven speedup at a 0% or 1% dirty
// fraction falls below 5x, if any verdict diverges, or if the scanner's
// own counters show it re-read more than the dirtied pages — the bench
// doubles as the regression gate for ROADMAP item "event-driven sweeps".
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "attacks/guest_writer.hpp"
#include "cloud/environment.hpp"
#include "modchecker/incremental.hpp"
#include "modchecker/modchecker.hpp"
#include "vmm/phys_mem.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";  // largest PE catalog module
constexpr std::size_t kPoolSize = 15;        // the paper's t=15 pool
constexpr int kTicks = 10;                   // steady-state ticks per fraction
constexpr double kRequiredSpeedupLowDirty = 5.0;

struct FractionRow {
  double fraction = 0.0;           // share of watched pages dirtied per tick
  std::uint64_t pages_per_tick = 0;
  double incremental_ms = 0.0;     // avg simulated cost per tick
  double fresh_ms = 0.0;
  double speedup = 0.0;
  double sweeps_per_sec = 0.0;     // simulated, event-driven path
  std::uint64_t frames_reread = 0;
  std::uint64_t partial_refreshes = 0;
  std::uint64_t cache_reuses = 0;
  std::uint64_t full_extractions = 0;
  bool verdicts_match = true;
};

bool same_verdicts(const core::PoolScanReport& a,
                   const core::PoolScanReport& b) {
  if (a.verdicts.size() != b.verdicts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    if (a.verdicts[i].vm != b.verdicts[i].vm ||
        a.verdicts[i].clean != b.verdicts[i].clean) {
      return false;
    }
  }
  return true;
}

/// One pool's module placement: guest bases and the shared image size.
struct ModuleMap {
  std::vector<std::uint32_t> bases;
  std::size_t image_bytes = 0;
  std::size_t pages_per_guest = 0;
};

ModuleMap map_module(cloud::CloudEnvironment& env) {
  ModuleMap map;
  for (const vmm::DomainId vm : env.guests()) {
    attacks::GuestMemoryWriter writer(env, vm);
    std::uint32_t base = 0;
    const Bytes image = writer.read_module_image(kModule, &base);
    map.bases.push_back(base);
    map.image_bytes = image.size();
  }
  map.pages_per_guest =
      (map.image_bytes + vmm::kFrameSize - 1) / vmm::kFrameSize;
  return map;
}

/// Benign write weather: touch `pages` random module pages across the pool
/// (rewrite one byte with its current value — dirty frame, clean content).
void rain(cloud::CloudEnvironment& env, const ModuleMap& map,
          std::uint64_t pages, std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> pick_guest(0,
                                                        map.bases.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_page(
      0, map.pages_per_guest - 1);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const std::size_t g = pick_guest(rng);
    // Stay inside the image even on the partial last page.
    const std::size_t offset =
        std::min(pick_page(rng) * vmm::kFrameSize,
                 map.image_bytes - 1);
    attacks::GuestMemoryWriter writer(env, env.guests()[g]);
    const std::uint32_t va =
        map.bases[g] + static_cast<std::uint32_t>(offset);
    writer.write(va, ByteView(writer.read(va, 1)));
  }
}

FractionRow run_fraction(double fraction) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::IncrementalScanner incremental(env.hypervisor());
  core::ModChecker fresh(env.hypervisor());
  const ModuleMap map = map_module(env);

  FractionRow row;
  row.fraction = fraction;
  const std::uint64_t total_pages =
      static_cast<std::uint64_t>(map.pages_per_guest) * kPoolSize;
  row.pages_per_tick = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(total_pages)));
  if (fraction > 0.0 && row.pages_per_tick == 0) {
    row.pages_per_tick = 1;  // "1%" must mean some weather even if t is tiny
  }

  // Cold tick warms both scanners' caches; excluded from the averages.
  row.verdicts_match = same_verdicts(incremental.scan(kModule, env.guests()),
                                     fresh.scan_pool(kModule, env.guests()));
  const auto cold = incremental.stats();

  std::mt19937 rng(0xEDB1u + static_cast<unsigned>(fraction * 1000.0));
  SimNanos incremental_total = 0;
  SimNanos fresh_total = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    rain(env, map, row.pages_per_tick, rng);
    const auto a = incremental.scan(kModule, env.guests());
    const auto b = fresh.scan_pool(kModule, env.guests());
    incremental_total += a.cpu_times.total();
    fresh_total += b.cpu_times.total();
    row.verdicts_match = row.verdicts_match && same_verdicts(a, b);
  }

  const auto& stats = incremental.stats();
  row.frames_reread = stats.frames_reread - cold.frames_reread;
  row.partial_refreshes = stats.partial_refreshes - cold.partial_refreshes;
  row.cache_reuses = stats.cache_reuses - cold.cache_reuses;
  row.full_extractions = stats.full_extractions;
  row.incremental_ms = to_ms(incremental_total) / kTicks;
  row.fresh_ms = to_ms(fresh_total) / kTicks;
  row.speedup = static_cast<double>(fresh_total) /
                static_cast<double>(incremental_total);
  row.sweeps_per_sec =
      1e9 / (static_cast<double>(incremental_total) / kTicks);
  return row;
}

bool write_json(const std::string& path,
                const std::vector<FractionRow>& rows, bool pass) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\"bench\":\"event_driven\",\"module\":\"" << kModule
     << "\",\"pool_size\":" << kPoolSize << ",\"ticks\":" << kTicks
     << ",\"required_speedup_low_dirty\":" << kRequiredSpeedupLowDirty
     << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FractionRow& r = rows[i];
    os << (i == 0 ? "" : ",") << "{\"dirty_fraction\":" << r.fraction
       << ",\"pages_per_tick\":" << r.pages_per_tick
       << ",\"incremental_ms\":" << r.incremental_ms
       << ",\"fresh_ms\":" << r.fresh_ms << ",\"speedup\":" << r.speedup
       << ",\"sweeps_per_sec\":" << r.sweeps_per_sec
       << ",\"frames_reread\":" << r.frames_reread
       << ",\"partial_refreshes\":" << r.partial_refreshes
       << ",\"cache_reuses\":" << r.cache_reuses
       << ",\"full_extractions\":" << r.full_extractions
       << ",\"verdicts_match\":" << (r.verdicts_match ? "true" : "false")
       << '}';
  }
  os << "],\"pass\":" << (pass ? "true" : "false") << "}\n";
  return true;
}

int run_gate(const std::string& json_path) {
  const double fractions[] = {0.0, 0.01, 0.10, 1.0};
  std::vector<FractionRow> rows;
  for (const double f : fractions) {
    rows.push_back(run_fraction(f));
  }

  std::printf("=== event-driven sweeps (t=%zu, module %s, %d ticks) ===\n",
              kPoolSize, kModule, kTicks);
  std::printf("%-8s %10s %14s %12s %9s %12s %9s %9s\n", "dirty", "pages/tick",
              "incremental[ms]", "fresh[ms]", "speedup", "sweeps/sec",
              "reread", "reuses");
  for (const FractionRow& r : rows) {
    std::printf("%-7.0f%% %10llu %14.3f %12.3f %8.2fx %12.1f %9llu %9llu%s\n",
                r.fraction * 100.0,
                static_cast<unsigned long long>(r.pages_per_tick),
                r.incremental_ms, r.fresh_ms, r.speedup, r.sweeps_per_sec,
                static_cast<unsigned long long>(r.frames_reread),
                static_cast<unsigned long long>(r.cache_reuses),
                r.verdicts_match ? "" : "  VERDICT MISMATCH!");
  }

  bool pass = true;
  for (const FractionRow& r : rows) {
    pass = pass && r.verdicts_match;
    // The scanner's own counters prove dirty-only re-reads: it never
    // reads back more pages than the weather dirtied, and a dry tick
    // reads back nothing.
    pass = pass && r.frames_reread <= r.pages_per_tick * kTicks;
    // Only the cold tick pays full extractions.
    pass = pass && r.full_extractions == kPoolSize;
  }
  pass = pass && rows[0].frames_reread == 0 &&
         rows[0].partial_refreshes == 0 &&
         rows[0].cache_reuses == kPoolSize * kTicks;
  pass = pass && rows[1].partial_refreshes > 0;
  // The headline gate: near-idle pools sweep at least 5x faster.
  pass = pass && rows[0].speedup >= kRequiredSpeedupLowDirty &&
         rows[1].speedup >= kRequiredSpeedupLowDirty;
  std::printf("speedup at 0%%/1%% dirty: %.2fx / %.2fx (required >= %.1fx) "
              "=> %s\n\n",
              rows[0].speedup, rows[1].speedup, kRequiredSpeedupLowDirty,
              pass ? "PASS" : "FAIL");

  if (!write_json(json_path, rows, pass)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

void BM_EventDrivenTick(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::IncrementalScanner scanner(env.hypervisor());
  scanner.scan(kModule, env.guests());  // warm the cache
  const ModuleMap map = map_module(env);
  const std::uint64_t total_pages =
      static_cast<std::uint64_t>(map.pages_per_guest) * kPoolSize;
  const std::uint64_t pages = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(state.range(0)) / 100.0 *
      static_cast<double>(total_pages)));
  std::mt19937 rng(0xEDB2u);
  for (auto _ : state) {
    rain(env, map, pages, rng);
    auto report = scanner.scan(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_EventDrivenTick)
    ->Arg(0)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_FullSweepTick(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullSweepTick)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument overrides the JSON output path.
  std::string json_path = "BENCH_event_driven.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_gate(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
