// Figure 8 — "Runtime performance of ModChecker (and its components) on
// different number of VMs when they are exhaustively using their
// resources".
//
// Reproduction: the same http.sys sweep as Fig. 7, but every VM in the
// pool runs HeavyLoad.  The paper's shape: runtime tracks Fig. 7 with a
// mild inflation while the number of loaded VMs is at or below the 8
// virtual cores, then grows *nonlinearly* past that knee ("a sudden
// nonlinear growth ... when the number of heavily loaded VMs exceeded the
// number of available virtual cores").
//
// The printed per-step growth ratio makes the knee visible numerically.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "workload/heavyload.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";

struct Row {
  std::size_t vms;
  double searcher_ms, parser_ms, checker_ms, total_ms, slowdown;
};

void print_table() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  workload::HeavyLoad heavyload(env);
  core::ModChecker checker(env.hypervisor());

  std::vector<Row> rows;
  for (std::size_t n = 2; n <= env.guests().size(); ++n) {
    // Every VM participating in the comparison runs HeavyLoad.
    heavyload.stress_guests(n);
    std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                      env.guests().begin() +
                                          static_cast<std::ptrdiff_t>(n));
    const auto report = checker.check_module(env.guests()[0], kModule, others);
    rows.push_back({n, to_ms(report.cpu_times.searcher),
                    to_ms(report.cpu_times.parser),
                    to_ms(report.cpu_times.checker),
                    to_ms(report.cpu_times.total()),
                    env.hypervisor().dom0_slowdown()});
  }
  heavyload.stop_all();

  const std::uint32_t cores = env.hypervisor().hardware().virtual_cores();
  std::printf(
      "=== Figure 8: ModChecker runtime, HeavyLoad VMs (module %s, %u "
      "virtual cores) ===\n",
      kModule, cores);
  std::printf("%-5s %14s %14s %14s %12s %10s %8s\n", "VMs", "Searcher[ms]",
              "Parser[ms]", "Checker[ms]", "Total[ms]", "slowdown",
              "step");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double step =
        i == 0 ? 0.0 : rows[i].total_ms - rows[i - 1].total_ms;
    std::printf("%-5zu %14.3f %14.3f %14.3f %12.3f %10.2fx %8.3f\n",
                rows[i].vms, rows[i].searcher_ms, rows[i].parser_ms,
                rows[i].checker_ms, rows[i].total_ms, rows[i].slowdown, step);
  }

  // Knee check: the marginal cost per added VM must jump once the busy VM
  // count passes the core count.
  double pre_knee_step = 0, post_knee_step = 0;
  std::size_t pre_n = 0, post_n = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double step = rows[i].total_ms - rows[i - 1].total_ms;
    if (rows[i].vms <= cores) {
      pre_knee_step += step;
      ++pre_n;
    } else {
      post_knee_step += step;
      ++post_n;
    }
  }
  pre_knee_step /= static_cast<double>(pre_n);
  post_knee_step /= static_cast<double>(post_n);
  std::printf("\nShape checks (paper §V-C.1 / Fig. 8):\n");
  std::printf("  mean step (<= %u busy VMs): %.3f ms/VM\n", cores,
              pre_knee_step);
  std::printf("  mean step ( > %u busy VMs): %.3f ms/VM\n", cores,
              post_knee_step);
  std::printf("  nonlinear knee ratio       : %.2fx (expect >> 1)\n\n",
              post_knee_step / pre_knee_step);
}

void BM_CheckModuleLoaded(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  workload::HeavyLoad heavyload(env);
  const auto n = static_cast<std::size_t>(state.range(0));
  heavyload.stress_guests(n);
  core::ModChecker checker(env.hypervisor());
  std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                    env.guests().begin() +
                                        static_cast<std::ptrdiff_t>(n));
  for (auto _ : state) {
    auto report = checker.check_module(env.guests()[0], kModule, others);
    benchmark::DoNotOptimize(report);
    state.counters["sim_total_ms"] = to_ms(report.cpu_times.total());
  }
}
BENCHMARK(BM_CheckModuleLoaded)->Arg(4)->Arg(8)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
