// Figure 9 — "Inside virtual machine - CPU and memory impact of
// ModChecker" (§V-C.2).
//
// Reproduction: an idle guest is monitored at 1 Hz by the in-guest
// resource recorder while ModChecker performs several memory-access
// passes.  The paper's result to reproduce: "no significant perturbation
// during the time span when memory was accessed by ModChecker".
//
// We derive the access windows from actual simulated check runs, render a
// coarse time series with the windows marked (the paper's boxes), and
// compute Welch's t between in-window and out-of-window samples for every
// recorded metric — all |t| < 2 reproduces the figure's conclusion.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "workload/monitor.hpp"

namespace {

using namespace mc;

void print_table() {
  // Access windows: 4 ModChecker passes over a 240 s observation, each
  // pass lasting the simulated duration of a real pool check (rounded up
  // to whole seconds for the 1 Hz sampler).
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], "http.sys");
  // One operator pass sweeps every module of every VM repeatedly; at the
  // simulated per-check cost this occupies the access box for ~20 s — the
  // span of the paper's zoomed boxes.
  const double single_check_s =
      static_cast<double>(report.cpu_times.total()) / 1e9;
  const double pass_s = 20.0;

  std::vector<workload::AccessWindow> windows;
  for (double start = 30; start + pass_s < 240; start += 60) {
    windows.push_back({start, start + pass_s});
  }
  std::printf("(single pool check of http.sys: %.1f ms simulated; a %g s "
              "access box covers\n repeated sweeps of all modules)\n",
              single_check_s * 1e3, pass_s);

  workload::MonitorConfig mc_cfg;
  mc_cfg.seed = 7;
  mc_cfg.load_level = 0.0;  // idle guest, as in the paper
  workload::ResourceMonitor monitor(mc_cfg);
  const auto samples = monitor.record(240.0, windows);

  std::printf("=== Figure 9: in-guest impact of ModChecker (idle guest) ===\n");
  std::printf("access windows:");
  for (const auto& w : windows) {
    std::printf(" [%.0fs..%.0fs]", w.start, w.end);
  }
  std::printf("\n\nCPU idle %% time series (1 Hz, '*' = ModChecker access):\n");
  for (std::size_t i = 0; i < samples.size(); i += 8) {
    std::printf("  t=%3.0fs %c idle=%5.1f%% user=%4.1f%% priv=%4.1f%% "
                "memfree=%4.1f%% faults=%5.1f/s\n",
                samples[i].t, samples[i].in_access_window ? '*' : ' ',
                samples[i].cpu_idle_pct, samples[i].cpu_user_pct,
                samples[i].cpu_privileged_pct, samples[i].mem_free_pct,
                samples[i].page_faults_per_s);
  }

  struct Metric {
    const char* name;
    double (*get)(const workload::ResourceSample&);
  };
  const Metric metrics[] = {
      {"cpu_idle_pct", [](const workload::ResourceSample& s) { return s.cpu_idle_pct; }},
      {"cpu_user_pct", [](const workload::ResourceSample& s) { return s.cpu_user_pct; }},
      {"cpu_privileged_pct", [](const workload::ResourceSample& s) { return s.cpu_privileged_pct; }},
      {"mem_free_pct", [](const workload::ResourceSample& s) { return s.mem_free_pct; }},
      {"virt_free_pct", [](const workload::ResourceSample& s) { return s.virt_free_pct; }},
      {"page_faults_per_s", [](const workload::ResourceSample& s) { return s.page_faults_per_s; }},
      {"disk_queue", [](const workload::ResourceSample& s) { return s.disk_queue; }},
      {"disk_reads_per_s", [](const workload::ResourceSample& s) { return s.disk_reads_per_s; }},
      {"disk_writes_per_s", [](const workload::ResourceSample& s) { return s.disk_writes_per_s; }},
      {"net_sent_per_s", [](const workload::ResourceSample& s) { return s.net_sent_per_s; }},
      {"net_recv_per_s", [](const workload::ResourceSample& s) { return s.net_recv_per_s; }},
  };

  std::printf("\nPerturbation analysis (in-window vs out-of-window):\n");
  std::printf("%-20s %10s %10s %8s %12s\n", "metric", "mean_in", "mean_out",
              "|t|", "significant?");
  bool any_significant = false;
  for (const auto& m : metrics) {
    const auto stats = workload::analyze_metric(samples, m.get);
    const double abs_t = stats.welch_t < 0 ? -stats.welch_t : stats.welch_t;
    std::printf("%-20s %10.3f %10.3f %8.2f %12s\n", m.name, stats.mean_in,
                stats.mean_out, abs_t, stats.significant() ? "YES" : "no");
    any_significant = any_significant || stats.significant();
  }
  std::printf("\nConclusion: %s (paper: \"no significant perturbation\")\n\n",
              any_significant
                  ? "PERTURBATION DETECTED — shape mismatch!"
                  : "no considerable burden on guest resources");
}

void BM_MonitorRecord(benchmark::State& state) {
  workload::MonitorConfig cfg;
  cfg.seed = 7;
  workload::ResourceMonitor monitor(cfg);
  const std::vector<workload::AccessWindow> windows = {{30, 40}, {90, 100}};
  for (auto _ : state) {
    auto samples = monitor.record(240.0, windows);
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_MonitorRecord)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
