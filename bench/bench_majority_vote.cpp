// A4 — majority-vote robustness under spreading infection (§III
// discussion).
//
// The paper: the vote "is only effective if majority of the VMs are
// running the original (or uninfected) modules.  However, there are cases
// when malware such as SQL Slammer can rapidly infect most of the machines
// in a network and this would possibly make the above approach raise false
// alarms.  However, in either of the above cases, ModChecker is capable of
// detecting discrepancies among VMs."
//
// This bench sweeps the infected fraction of the pool and reports, per
// fraction: how many infected VMs are flagged, how many clean VMs are
// misflagged (the false alarms past 50%), and whether *any* discrepancy is
// visible — the property that survives even a majority infection.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "attacks/campaign.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "hal.dll";

void print_table() {
  std::printf("=== A4: majority vote vs spreading infection (15-VM pool, "
              "identical infection) ===\n");
  std::printf("%-10s %14s %16s %18s %14s\n", "infected", "flagged(inf)",
              "misflagged(cln)", "discrepancy seen?", "verdict");

  for (std::size_t infected = 0; infected <= 15; infected += 1) {
    cloud::CloudConfig cfg;
    cfg.guest_count = 15;
    cloud::CloudEnvironment env(cfg);

    const attacks::InlineHookAttack attack;
    for (std::size_t i = 0; i < infected; ++i) {
      attack.apply(env, env.guests()[i], kModule);
    }

    core::ModChecker checker(env.hypervisor());
    const auto report = checker.scan_pool(kModule, env.guests());

    std::size_t flagged_infected = 0;
    std::size_t misflagged_clean = 0;
    bool any_mismatch_pair = false;
    for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
      const auto& v = report.verdicts[i];
      const bool is_infected = i < infected;
      if (!v.clean && is_infected) {
        ++flagged_infected;
      }
      if (!v.clean && !is_infected) {
        ++misflagged_clean;
      }
      if (v.successes != v.total) {
        any_mismatch_pair = true;
      }
    }

    // A clean VM passes the strict vote n > (t-1)/2 iff it matches at
    // least 8 of its 14 peers, i.e. while infected <= 6.  At 7/15 the pool
    // splits 8/7 and a clean VM matches exactly 7 — the criterion's own
    // boundary produces false alarms one VM *before* the infection holds
    // the majority (see EXPERIMENTS.md, A4).
    const char* verdict;
    if (infected == 0) {
      verdict = misflagged_clean == 0 ? "correct (all clean)" : "BROKEN";
    } else if (infected == 15) {
      // Identical infection everywhere: indistinguishable from a clean
      // pool — the documented blind spot of pure cross-comparison.
      verdict = any_mismatch_pair ? "unexpected" : "blind (uniform pool)";
    } else if (static_cast<int>(15 - infected) - 1 > 7) {
      // Clean VMs still pass the strict vote.
      verdict = (flagged_infected == infected && misflagged_clean == 0)
                    ? "correct"
                    : "BROKEN";
    } else {
      verdict = any_mismatch_pair ? "false alarms, discrepancy visible"
                                  : "BROKEN";
    }

    std::printf("%2zu/15     %14zu %16zu %18s %s\n", infected,
                flagged_infected, misflagged_clean,
                any_mismatch_pair ? "yes" : "no", verdict);
  }
  std::printf("\n(Past 8/15 the vote inverts — infected copies form the "
              "majority — but pairwise\n discrepancies remain visible, "
              "which is the trigger the paper relies on for\n deeper "
              "analysis.  At 15/15 identical infections the cross-view is "
              "blind.)\n\n");
}

/// The same analysis driven by a worm-style campaign (§III's SQL-Slammer
/// discussion): infection grows wave by wave; each wave ends with a pool
/// scan, showing how long the detection window stays open.
void print_campaign_table() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  env.snapshot_all();

  attacks::CampaignConfig campaign_cfg;
  campaign_cfg.seed = 20120910;  // ICPP'12
  campaign_cfg.contact_infectivity = 0.22;
  attacks::InfectionCampaign campaign(campaign_cfg);

  std::printf("=== A4b: worm-style campaign (infectivity %.2f/contact) ===\n",
              campaign_cfg.contact_infectivity);
  const auto result = campaign.run(env, attacks::InlineHookAttack{},
                                   kModule, env.guests()[0]);

  // Replay the campaign on a fresh environment wave by wave, scanning
  // after each wave.
  cloud::CloudEnvironment replay(cfg);
  core::ModChecker checker(replay.hypervisor());
  const attacks::InlineHookAttack attack;
  std::printf("%-6s %10s %14s %16s\n", "wave", "infected", "flagged VMs",
              "vote usable?");
  std::size_t infected_so_far = 0;
  std::size_t idx = 0;
  for (const auto& wave : result.waves) {
    for (const auto vm : wave.newly_infected) {
      (void)vm;
      attack.apply(replay, replay.guests()[idx], kModule);
      ++idx;
    }
    infected_so_far = wave.total_infected;
    const auto scan = checker.scan_pool(kModule, replay.guests());
    std::size_t flagged = 0;
    for (const auto& v : scan.verdicts) {
      flagged += v.clean ? 0 : 1;
    }
    const bool usable = infected_so_far <= 6;  // strict-majority window
    std::printf("%-6zu %7zu/15 %14zu %16s\n", wave.wave, infected_so_far,
                flagged, usable ? "yes" : "discrepancy-only");
  }
  std::printf("\n");
}

void BM_PoolScan(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PoolScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_campaign_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
