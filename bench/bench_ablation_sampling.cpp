// A6 — sampled-comparison ablation: cost vs vote reliability.
//
// The paper's sequential design costs O(t) per check (Fig. 7).  At cloud
// scale an operator may sample k peers instead of all t-1.  This bench
// quantifies the tradeoff on a 15-VM pool with exactly one infected VM:
//
//   * cost        — simulated time per check, linear in k;
//   * TP rate     — infected subject flagged (always: it mismatches every
//                   clean peer it meets);
//   * FP rate     — CLEAN subject flagged because the infected copy
//                   happened to dominate a tiny sample (possible at
//                   k <= 2; impossible at k >= 3 with one infected peer);
//   * leak rate   — clean subject's report still *reveals* the infected
//                   peer via a mismatch, even when the vote stays clean
//                   (the discrepancy signal the paper falls back on).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "hal.dll";
constexpr std::size_t kTrials = 40;

void print_table() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  const vmm::DomainId infected = env.guests()[7];
  attacks::InlineHookAttack{}.apply(env, infected, kModule);

  core::ModChecker checker(env.hypervisor());

  std::printf("=== A6: sampled comparisons (15 VMs, 1 infected, %zu trials "
              "per k) ===\n",
              kTrials);
  std::printf("%-4s %14s %8s %8s %10s\n", "k", "cost[ms]", "TP", "FP",
              "leak");
  for (std::size_t k = 1; k <= 14; ++k) {
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t leak = 0;
    double cost_ms = 0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Infected subject.
      const auto bad = checker.check_module_sampled(
          infected, kModule, k, trial * 1000 + k);
      tp += bad.subject_clean ? 0 : 1;
      // A clean subject (rotate through all 14, skipping the infected VM
      // at position 7).
      std::size_t clean_idx = trial % 14;
      if (clean_idx >= 7) {
        ++clean_idx;
      }
      const vmm::DomainId clean = env.guests()[clean_idx];
      const auto good =
          checker.check_module_sampled(clean, kModule, k, trial * 7919 + k);
      fp += good.subject_clean ? 0 : 1;
      leak += good.successes != good.total_comparisons ? 1 : 0;
      cost_ms += to_ms(good.cpu_times.total());
    }
    std::printf("%-4zu %14.3f %7zu%% %7zu%% %9zu%%\n", k,
                cost_ms / static_cast<double>(kTrials),
                100 * tp / kTrials, 100 * fp / kTrials, 100 * leak / kTrials);
  }
  std::printf("\nReading: TP is 100%% for every k (an infected subject can "
              "never match a clean\npeer); FPs exist only at k <= 2; the "
              "leak column is the per-check chance a\nclean subject's "
              "sample happens to include the infected VM (~k/14).\n\n");
}

void BM_SampledCheck(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  const auto k = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto report =
        checker.check_module_sampled(env.guests()[0], kModule, k, ++seed);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SampledCheck)->Arg(1)->Arg(3)->Arg(7)->Arg(14)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
