// Sharded fleet throughput — the control-plane scheduling win quantified.
//
// The event-driven bench measures the *scanner* win (skip provably-clean
// work); this bench measures the *scheduling* win on top of it: the same
// P-pool fleet swept through 1, 2, 4 and 8 coordinator shards.  All warm
// state lives in the SweepEngine below the shard layer, so per-pool
// simulated scan costs are shard-independent — the fleet's simulated
// makespan is the busiest shard's timeline, and sweeps/sec is completed
// runs over that makespan.  More shards = more concurrent per-pool
// timelines = proportionally higher throughput, until pools run out.
//
// Dirty legs: a "dirty" pool takes write traffic every tick, so its sweep
// must scan each cadence; a clean pool's event-driven sweep scans once
// (cold) and then re-emits provably-clean results.  The legs realize that
// as {0,10,100}% of pools running always-scan full sweeps with the rest on
// event-driven sweeps — the fleet-level skip mix the ROADMAP item cares
// about, without nondeterministic mid-drain write injection.
//
// Backpressure leg: 2 shards with a bounded admission queue under 2x
// oversubmission.  The gate demands load shedding actually engaged
// (load_shed > 0), every one-shot sweep survived (zero dropped — they are
// unsheddable by policy), and the per-shard backlog never exceeded
// capacity plus the unsheddable overflow admissions (the bounded
// queue-age evidence).
//
// Exit status: non-zero if the 8-shard/1-shard throughput ratio on the
// 0%-dirty leg falls below 3x, or the backpressure gate fails — the bench
// doubles as the regression gate for the sharded control plane.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "service/coordinator.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "hal.dll";
constexpr std::size_t kPools = 24;
constexpr std::size_t kPoolSize = 15;  // the paper's t=15 pool
constexpr std::size_t kRepeat = 3;     // runs per sweep
constexpr double kRequiredSpeedup8v1 = 3.0;
constexpr std::size_t kBackpressureCapacity = 4;

struct ShardRow {
  std::size_t shards = 0;
  std::size_t dirty_pct = 0;   // share of pools on always-scan sweeps
  std::uint64_t completed = 0;
  std::uint64_t skipped_clean = 0;
  std::uint64_t steals = 0;
  std::uint64_t deadline_misses = 0;
  double makespan_ms = 0.0;    // busiest shard's simulated timeline
  double sweeps_per_sec = 0.0; // simulated
};

struct BackpressureRow {
  std::uint64_t load_shed = 0;
  std::uint64_t overflow = 0;
  std::uint64_t completed = 0;
  std::size_t peak_pending = 0;      // max over shards
  std::size_t one_shots_submitted = 0;
  std::size_t one_shots_completed = 0;
  bool backlog_bounded = false;
  bool pass = false;
};

/// The shared fleet: kPools independent deterministic clouds, built once
/// (sweeps never mutate guest memory, so every configuration sees
/// identical pools and identical simulated costs).
std::vector<std::unique_ptr<cloud::CloudEnvironment>> build_pools() {
  std::vector<std::unique_ptr<cloud::CloudEnvironment>> pools;
  pools.reserve(kPools);
  for (std::size_t p = 0; p < kPools; ++p) {
    cloud::CloudConfig cfg;
    cfg.guest_count = kPoolSize;
    pools.push_back(std::make_unique<cloud::CloudEnvironment>(cfg));
  }
  return pools;
}

ShardRow run_leg(std::vector<std::unique_ptr<cloud::CloudEnvironment>>& pools,
                 std::size_t shards, std::size_t dirty_pct) {
  telemetry::MetricRegistry registry;
  service::CoordinatorConfig cfg;
  cfg.shards = shards;
  cfg.metrics = &registry;
  // Stealing rebalances by *host* idleness, so on a small CI box one eager
  // worker thread can execute (and get charged for) most of the fleet,
  // collapsing the per-shard timelines the throughput metric is built on.
  // With stealing off the makespan is the consistent-hash schedule itself
  // — deterministic on any host (the rebalance path has its own tests and
  // the backpressure leg below keeps the default policy).
  cfg.admission.work_stealing = false;
  service::ShardCoordinator coordinator(cfg);
  for (const auto& pool : pools) {
    coordinator.add_pool(pool->hypervisor(),
                         std::vector<vmm::DomainId>(pool->guests()));
  }

  // Submit everything before start() so each leg's queue contents are
  // reproducible; the workers then race only over execution order, which
  // simulated per-pool costs do not depend on.
  const std::size_t dirty_pools = (kPools * dirty_pct + 99) / 100;
  for (std::size_t p = 0; p < kPools; ++p) {
    service::SweepSpec spec;
    spec.name = "pool-" + std::to_string(p);
    spec.pool_index = p;
    spec.modules = {kModule};
    spec.repeat = kRepeat;
    spec.cadence = sim_ms(100);
    spec.event_driven = p >= dirty_pools;  // dirty pools always scan
    coordinator.submit(std::move(spec));
  }
  coordinator.start();
  coordinator.drain();

  const auto stats = coordinator.stats();
  ShardRow row;
  row.shards = shards;
  row.dirty_pct = dirty_pct;
  row.completed = stats.completed_runs;
  row.skipped_clean = stats.sweeps_skipped_clean;
  row.steals = stats.steals;
  row.deadline_misses = stats.deadline_misses;
  SimNanos makespan = 0;
  for (const auto& s : coordinator.shard_stats()) {
    makespan = std::max(makespan, s.sim_busy);
  }
  row.makespan_ms = to_ms(makespan);
  if (makespan > 0) {
    row.sweeps_per_sec = static_cast<double>(row.completed) * 1e9 /
                         static_cast<double>(makespan);
  }
  return row;
}

BackpressureRow run_backpressure(
    std::vector<std::unique_ptr<cloud::CloudEnvironment>>& pools) {
  telemetry::MetricRegistry registry;
  service::CoordinatorConfig cfg;
  cfg.shards = 2;
  cfg.metrics = &registry;
  cfg.admission.queue_capacity = kBackpressureCapacity;
  service::ShardCoordinator coordinator(cfg);
  for (const auto& pool : pools) {
    coordinator.add_pool(pool->hypervisor(),
                         std::vector<vmm::DomainId>(pool->guests()));
  }
  const auto ring = std::make_shared<service::RingSink>(512);
  coordinator.add_sink(ring);

  // 2x oversubmission against the bounded queues: four recurring ticks
  // per pool (sheddable) plus one one-shot per pool (never droppable),
  // all pushed before a single worker exists — the admission policy alone
  // decides who survives the burst.
  BackpressureRow row;
  std::set<service::SweepId> one_shots;
  for (std::size_t wave = 0; wave < 4; ++wave) {
    for (std::size_t p = 0; p < kPools; ++p) {
      service::SweepSpec spec;
      spec.name = "tick-" + std::to_string(wave) + "-" + std::to_string(p);
      spec.pool_index = p;
      spec.modules = {kModule};
      spec.repeat = 2;
      spec.cadence = sim_ms(100);
      spec.event_driven = true;
      coordinator.submit(std::move(spec));
    }
  }
  for (std::size_t p = 0; p < kPools; ++p) {
    service::SweepSpec spec;
    spec.name = "oneshot-" + std::to_string(p);
    spec.pool_index = p;
    spec.modules = {kModule};
    const service::SweepId id = coordinator.submit(std::move(spec));
    if (id != 0) {
      one_shots.insert(id);
    }
    ++row.one_shots_submitted;
  }
  coordinator.start();
  coordinator.drain();

  const auto stats = coordinator.stats();
  row.load_shed = stats.load_shed;
  row.overflow = stats.overflow;
  row.completed = stats.completed_runs;
  for (const auto& s : coordinator.shard_stats()) {
    row.peak_pending = std::max(row.peak_pending, s.peak_pending);
  }
  for (const auto& report : ring->snapshot()) {
    if (one_shots.count(report.id) > 0 && !report.cancelled) {
      ++row.one_shots_completed;
    }
  }
  // The backlog bound: a shard's queue never grows past its capacity plus
  // the unsheddable overflow admissions (which are deliberate).
  row.backlog_bounded =
      row.peak_pending <=
      kBackpressureCapacity + static_cast<std::size_t>(row.overflow);
  row.pass = row.load_shed > 0 && row.backlog_bounded &&
             row.one_shots_completed == row.one_shots_submitted &&
             one_shots.size() == row.one_shots_submitted;
  return row;
}

bool write_json(const std::string& path, const std::vector<ShardRow>& rows,
                const BackpressureRow& bp, double speedup_8v1, bool pass) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\"bench\":\"fleet_shards\",\"module\":\"" << kModule
     << "\",\"pools\":" << kPools << ",\"pool_size\":" << kPoolSize
     << ",\"repeat\":" << kRepeat
     << ",\"required_speedup_8v1\":" << kRequiredSpeedup8v1
     << ",\"speedup_8v1\":" << speedup_8v1 << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    os << (i == 0 ? "" : ",") << "{\"shards\":" << r.shards
       << ",\"dirty_pct\":" << r.dirty_pct
       << ",\"completed\":" << r.completed
       << ",\"skipped_clean\":" << r.skipped_clean
       << ",\"steals\":" << r.steals
       << ",\"deadline_misses\":" << r.deadline_misses
       << ",\"makespan_ms\":" << r.makespan_ms
       << ",\"sweeps_per_sec\":" << r.sweeps_per_sec << '}';
  }
  os << "],\"backpressure\":{\"capacity\":" << kBackpressureCapacity
     << ",\"load_shed\":" << bp.load_shed << ",\"overflow\":" << bp.overflow
     << ",\"completed\":" << bp.completed
     << ",\"peak_pending\":" << bp.peak_pending
     << ",\"one_shots_submitted\":" << bp.one_shots_submitted
     << ",\"one_shots_completed\":" << bp.one_shots_completed
     << ",\"backlog_bounded\":" << (bp.backlog_bounded ? "true" : "false")
     << ",\"pass\":" << (bp.pass ? "true" : "false") << '}'
     << ",\"pass\":" << (pass ? "true" : "false") << "}\n";
  return true;
}

int run_gate(const std::string& json_path) {
  auto pools = build_pools();

  const std::size_t shard_counts[] = {1, 2, 4, 8};
  const std::size_t dirty_pcts[] = {0, 10, 100};
  std::vector<ShardRow> rows;
  for (const std::size_t dirty : dirty_pcts) {
    for (const std::size_t shards : shard_counts) {
      rows.push_back(run_leg(pools, shards, dirty));
    }
  }

  std::printf("=== sharded fleet (%zu pools x t=%zu, module %s, "
              "%zu runs/sweep) ===\n",
              kPools, kPoolSize, kModule, kRepeat);
  std::printf("%6s %6s %10s %8s %7s %13s %14s\n", "dirty", "shards",
              "completed", "skipped", "steals", "makespan[ms]", "sweeps/sec");
  for (const ShardRow& r : rows) {
    std::printf("%5zu%% %6zu %10llu %8llu %7llu %13.3f %14.1f\n", r.dirty_pct,
                r.shards, static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.skipped_clean),
                static_cast<unsigned long long>(r.steals), r.makespan_ms,
                r.sweeps_per_sec);
  }

  const auto throughput = [&](std::size_t shards,
                              std::size_t dirty) -> double {
    for (const ShardRow& r : rows) {
      if (r.shards == shards && r.dirty_pct == dirty) {
        return r.sweeps_per_sec;
      }
    }
    return 0.0;
  };
  const double base = throughput(1, 0);
  const double speedup_8v1 = base > 0.0 ? throughput(8, 0) / base : 0.0;

  bool pass = speedup_8v1 >= kRequiredSpeedup8v1;
  // Every leg completes the full schedule: the shard count must never
  // change *what* runs, only where.
  for (const ShardRow& r : rows) {
    pass = pass && r.completed ==
                       static_cast<std::uint64_t>(kPools) * kRepeat;
  }
  std::printf("throughput at 8 shards vs 1 (0%% dirty): %.2fx "
              "(required >= %.1fx)\n",
              speedup_8v1, kRequiredSpeedup8v1);

  const BackpressureRow bp = run_backpressure(pools);
  std::printf("backpressure (2 shards, capacity %zu, 2x oversubmission): "
              "shed %llu, overflow %llu, peak backlog %zu, one-shots "
              "%zu/%zu => %s\n",
              kBackpressureCapacity,
              static_cast<unsigned long long>(bp.load_shed),
              static_cast<unsigned long long>(bp.overflow), bp.peak_pending,
              bp.one_shots_completed, bp.one_shots_submitted,
              bp.pass ? "PASS" : "FAIL");
  pass = pass && bp.pass;
  std::printf("fleet-shards gate => %s\n\n", pass ? "PASS" : "FAIL");

  if (!write_json(json_path, rows, bp, speedup_8v1, pass)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

void BM_FleetDrain(benchmark::State& state) {
  auto pools = build_pools();
  for (auto _ : state) {
    telemetry::MetricRegistry registry;
    service::CoordinatorConfig cfg;
    cfg.shards = static_cast<std::size_t>(state.range(0));
    cfg.metrics = &registry;
    service::ShardCoordinator coordinator(cfg);
    for (const auto& pool : pools) {
      coordinator.add_pool(pool->hypervisor(),
                           std::vector<vmm::DomainId>(pool->guests()));
    }
    coordinator.start();
    for (std::size_t p = 0; p < kPools; ++p) {
      service::SweepSpec spec;
      spec.name = "bench";
      spec.pool_index = p;
      spec.modules = {kModule};
      coordinator.submit(std::move(spec));
    }
    coordinator.drain();
  }
}
BENCHMARK(BM_FleetDrain)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument overrides the JSON output path.
  std::string json_path = "BENCH_fleet_shards.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_gate(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
