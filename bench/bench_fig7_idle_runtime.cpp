// Figure 7 — "Runtime performance of ModChecker (and its components) on
// different number of VMs when they are mostly idle".
//
// Reproduction: a 15-guest cloud, all idle; http.sys (the paper's module)
// is checked across pools of 2..15 VMs.  The printed series is the
// simulated per-component runtime; the paper's shape to reproduce is
//   (a) linear growth of the total with the pool size, and
//   (b) Module-Searcher dominating Parser and Integrity-Checker.
// A least-squares linearity fit (R^2) quantifies (a).
//
// The google-benchmark section additionally measures real host wall time
// of the full pipeline, for library-performance tracking.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";

std::unique_ptr<cloud::CloudEnvironment> make_env() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

struct Row {
  std::size_t vms;
  double searcher_ms, parser_ms, checker_ms, total_ms;
};

std::vector<Row> sweep(cloud::CloudEnvironment& env) {
  std::vector<Row> rows;
  core::ModChecker checker(env.hypervisor());
  for (std::size_t n = 2; n <= env.guests().size(); ++n) {
    std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                      env.guests().begin() +
                                          static_cast<std::ptrdiff_t>(n));
    const auto report =
        checker.check_module(env.guests()[0], kModule, others);
    rows.push_back({n, to_ms(report.cpu_times.searcher),
                    to_ms(report.cpu_times.parser),
                    to_ms(report.cpu_times.checker),
                    to_ms(report.cpu_times.total())});
  }
  return rows;
}

/// R^2 of a least-squares line fit through (x=vms, y=total).
double linearity_r2(const std::vector<Row>& rows) {
  const double n = static_cast<double>(rows.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& r : rows) {
    const double x = static_cast<double>(r.vms);
    sx += x;
    sy += r.total_ms;
    sxx += x * x;
    sxy += x * r.total_ms;
    syy += r.total_ms * r.total_ms;
  }
  const double cov = n * sxy - sx * sy;
  const double vx = n * sxx - sx * sx;
  const double vy = n * syy - sy * sy;
  return (cov * cov) / (vx * vy);
}

void print_table() {
  auto env = make_env();
  const auto rows = sweep(*env);

  std::printf("=== Figure 7: ModChecker runtime, idle VMs (module %s) ===\n",
              kModule);
  std::printf("%-5s %14s %14s %14s %12s\n", "VMs", "Searcher[ms]",
              "Parser[ms]", "Checker[ms]", "Total[ms]");
  for (const auto& r : rows) {
    std::printf("%-5zu %14.3f %14.3f %14.3f %12.3f\n", r.vms, r.searcher_ms,
                r.parser_ms, r.checker_ms, r.total_ms);
  }
  const auto& last = rows.back();
  std::printf("\nShape checks (paper §V-C.1):\n");
  std::printf("  linear total vs pool size: R^2 = %.5f (expect > 0.999)\n",
              linearity_r2(rows));
  std::printf("  searcher share at 15 VMs : %.1f%% (expect dominant)\n",
              100.0 * last.searcher_ms / last.total_ms);
  std::printf("  component order          : searcher %s parser, checker\n\n",
              (last.searcher_ms > last.parser_ms &&
               last.searcher_ms > last.checker_ms)
                  ? ">"
                  : "!>");
}

void BM_CheckModuleIdle(benchmark::State& state) {
  auto env = make_env();
  core::ModChecker checker(env->hypervisor());
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<vmm::DomainId> others(env->guests().begin() + 1,
                                    env->guests().begin() +
                                        static_cast<std::ptrdiff_t>(n));
  for (auto _ : state) {
    auto report = checker.check_module(env->guests()[0], kModule, others);
    benchmark::DoNotOptimize(report);
    state.counters["sim_total_ms"] = to_ms(report.cpu_times.total());
  }
}
BENCHMARK(BM_CheckModuleIdle)->Arg(2)->Arg(8)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
