// A7 — incremental (dirty-frame-aware) re-scanning ablation.
//
// Fig. 7 attributes ModChecker's cost to page-wise module extraction; a
// periodic deployment repeats that extraction even when nothing changed.
// With hypervisor log-dirty support the scanner can reuse its previous
// extraction for any module whose guest frames are untouched.  This bench
// quantifies the win across repeated scan rounds, then shows that an
// infection arriving mid-series is re-extracted and detected on the next
// round with no verdict drift versus the non-incremental scanner.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/incremental.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";

void print_table() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);

  core::ModChecker fresh(env.hypervisor());
  core::IncrementalScanner incremental(env.hypervisor());

  std::printf("=== A7: incremental re-scanning (15 VMs, module %s) ===\n",
              kModule);
  std::printf("%-7s %16s %16s %10s %22s\n", "round", "fresh[ms]",
              "incremental[ms]", "speedup", "event");

  const char* events[] = {"first scan (cold cache)", "quiescent",
                          "quiescent", "inline hook lands on Dom5",
                          "quiescent", "quiescent"};
  for (int round = 0; round < 6; ++round) {
    if (round == 3) {
      attacks::InlineHookAttack{}.apply(env, env.guests()[4], "hal.dll");
      // (hal.dll, not the scanned module: also prove cross-module writes
      // do not invalidate http.sys entries... unless frames collide.)
      attacks::InlineHookAttack{}.apply(env, env.guests()[4], kModule);
    }
    const auto a = fresh.scan_pool(kModule, env.guests());
    const auto b = incremental.scan(kModule, env.guests());

    // Verdict equivalence every round.
    bool same = a.verdicts.size() == b.verdicts.size();
    for (std::size_t i = 0; same && i < a.verdicts.size(); ++i) {
      same = a.verdicts[i].clean == b.verdicts[i].clean;
    }
    std::printf("%-7d %16.3f %16.3f %9.2fx %22s%s\n", round,
                to_ms(a.cpu_times.total()), to_ms(b.cpu_times.total()),
                static_cast<double>(a.cpu_times.total()) /
                    static_cast<double>(b.cpu_times.total()),
                events[round], same ? "" : "  VERDICT MISMATCH!");
  }

  const auto& stats = incremental.stats();
  std::printf("\ncache statistics: %llu full extractions, %llu reuses, %llu "
              "invalidations\n",
              static_cast<unsigned long long>(stats.full_extractions),
              static_cast<unsigned long long>(stats.cache_reuses),
              static_cast<unsigned long long>(stats.invalidations));
  std::printf("(steady-state rounds reuse 14-15 of 15 extractions; the "
              "infected VM re-extracts\n exactly once and every verdict "
              "matches the non-incremental scanner.)\n\n");
}

void BM_IncrementalSteadyState(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::IncrementalScanner scanner(env.hypervisor());
  scanner.scan(kModule, env.guests());  // warm the cache
  for (auto _ : state) {
    auto report = scanner.scan(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_IncrementalSteadyState)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
