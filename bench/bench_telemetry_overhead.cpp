// Telemetry overhead gate.
//
// The telemetry substrate put counters, histograms and (optionally) span
// recording on the scan hot path; this bench proves the observability is
// close to free:
//
//   1. determinism — on a clean t=15 pool, the simulated costs and every
//      verdict are bit-identical whether metrics land on a live registry
//      (default), the disabled sentinel registry, or a live registry plus
//      an active TraceRecorder — telemetry never charges simulated time;
//   2. real time — relative to the disabled-registry configuration, a live
//      registry stays within 2% wall clock and a live registry + tracer
//      within 5% (min-of-N on an interleaved schedule, so machine noise
//      hits every side alike).
//
// Exit status: non-zero on any verdict difference, simulated-cost
// difference, or overhead above the thresholds — a CI regression gate like
// bench_fault_overhead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";  // largest catalog module
constexpr std::size_t kPoolSize = 15;        // the paper's t=15 point
constexpr double kMaxMetricsOverhead = 1.02;
constexpr double kMaxTracedOverhead = 1.05;
constexpr int kReps = 9;  // min-of-N per configuration

core::ModCheckerConfig disabled_config() {
  core::ModCheckerConfig cfg;
  cfg.metrics = &telemetry::MetricRegistry::disabled();
  return cfg;
}

bool same_scan(const core::PoolScanReport& a, const core::PoolScanReport& b) {
  if (a.verdicts.size() != b.verdicts.size() ||
      a.cpu_times.searcher != b.cpu_times.searcher ||
      a.cpu_times.parser != b.cpu_times.parser ||
      a.cpu_times.checker != b.cpu_times.checker ||
      a.wall_time != b.wall_time || !a.quarantined.empty() ||
      !b.quarantined.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    if (a.verdicts[i].clean != b.verdicts[i].clean ||
        a.verdicts[i].successes != b.verdicts[i].successes ||
        a.verdicts[i].total != b.verdicts[i].total ||
        !a.verdicts[i].clean) {  // clean pool: everything must be clean
      return false;
    }
  }
  return true;
}

// One timed scan per fresh checker; the per-scan registry/tracer (when any)
// is constructed outside the timed window, like a service would hold them.
double min_scan_seconds(cloud::CloudEnvironment& env, bool live_metrics,
                        bool traced) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    telemetry::MetricRegistry registry;
    telemetry::TraceRecorder recorder;
    core::ModCheckerConfig cfg;
    cfg.metrics =
        live_metrics ? &registry : &telemetry::MetricRegistry::disabled();
    cfg.tracer = traced ? &recorder : nullptr;
    core::ModChecker checker(env.hypervisor(), cfg);
    const auto t0 = std::chrono::steady_clock::now();
    auto report = checker.scan_pool(kModule, env.guests());
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(report);
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) {
      best = s;
    }
  }
  return best;
}

int run_gate(const std::string& json_path) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);

  std::printf("=== telemetry overhead gate (module %s, t=%zu) ===\n",
              kModule, kPoolSize);

  // 1. Determinism: disabled registry vs live registry vs live + tracer.
  const auto disabled = core::ModChecker(env.hypervisor(), disabled_config())
                            .scan_pool(kModule, env.guests());
  telemetry::MetricRegistry live_registry;
  core::ModCheckerConfig live_cfg;
  live_cfg.metrics = &live_registry;
  const auto live = core::ModChecker(env.hypervisor(), live_cfg)
                        .scan_pool(kModule, env.guests());
  telemetry::MetricRegistry traced_registry;
  telemetry::TraceRecorder recorder;
  core::ModCheckerConfig traced_cfg;
  traced_cfg.metrics = &traced_registry;
  traced_cfg.tracer = &recorder;
  const auto traced = core::ModChecker(env.hypervisor(), traced_cfg)
                          .scan_pool(kModule, env.guests());

  const bool identical =
      same_scan(disabled, live) && same_scan(disabled, traced);
  std::printf("simulated costs bit-identical across configs: %s\n",
              identical ? "yes" : "NO");
  std::printf("tracer recorded %zu spans\n", recorder.completed());

  // 2. Real time: interleave the three configurations so drift hits all.
  double off_s = 1e300;
  double metrics_s = 1e300;
  double traced_s = 1e300;
  for (int round = 0; round < 3; ++round) {
    const double o = min_scan_seconds(env, false, false);
    const double m = min_scan_seconds(env, true, false);
    const double t = min_scan_seconds(env, true, true);
    if (o < off_s) {
      off_s = o;
    }
    if (m < metrics_s) {
      metrics_s = m;
    }
    if (t < traced_s) {
      traced_s = t;
    }
  }
  const double metrics_ratio = metrics_s / off_s;
  const double traced_ratio = traced_s / off_s;
  std::printf("min scan: disabled %.3f ms, metrics %.3f ms (ratio %.4f, "
              "required < %.2f), metrics+tracer %.3f ms (ratio %.4f, "
              "required < %.2f)\n",
              off_s * 1e3, metrics_s * 1e3, metrics_ratio,
              kMaxMetricsOverhead, traced_s * 1e3, traced_ratio,
              kMaxTracedOverhead);

  const bool pass = identical && metrics_ratio < kMaxMetricsOverhead &&
                    traced_ratio < kMaxTracedOverhead;
  std::printf("=> %s\n", pass ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"telemetry_overhead\",\n"
                 "  \"module\": \"%s\",\n  \"pool_size\": %zu,\n"
                 "  \"sim_identical\": %s,\n"
                 "  \"disabled_ms\": %.6f,\n  \"metrics_ms\": %.6f,\n"
                 "  \"traced_ms\": %.6f,\n"
                 "  \"metrics_ratio\": %.6f,\n  \"max_metrics_ratio\": %.2f,\n"
                 "  \"traced_ratio\": %.6f,\n  \"max_traced_ratio\": %.2f,\n"
                 "  \"pass\": %s\n}\n",
                 kModule, kPoolSize, identical ? "true" : "false",
                 off_s * 1e3, metrics_s * 1e3, traced_s * 1e3, metrics_ratio,
                 kMaxMetricsOverhead, traced_ratio, kMaxTracedOverhead,
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

void BM_CleanScanDisabledRegistry(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor(), disabled_config());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CleanScanDisabledRegistry)->Unit(benchmark::kMillisecond);

void BM_CleanScanLiveRegistry(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  telemetry::MetricRegistry registry;
  core::ModCheckerConfig mc_cfg;
  mc_cfg.metrics = &registry;
  core::ModChecker checker(env.hypervisor(), mc_cfg);
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CleanScanLiveRegistry)->Unit(benchmark::kMillisecond);

void BM_CleanScanTraced(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = kPoolSize;
  cloud::CloudEnvironment env(cfg);
  telemetry::MetricRegistry registry;
  telemetry::TraceRecorder recorder;
  core::ModCheckerConfig mc_cfg;
  mc_cfg.metrics = &registry;
  mc_cfg.tracer = &recorder;
  core::ModChecker checker(env.hypervisor(), mc_cfg);
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
    recorder.drain();  // a real consumer drains; unbounded growth is unfair
  }
}
BENCHMARK(BM_CleanScanTraced)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_telemetry_overhead.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_gate(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
