// §V-B — the detection experiments E1-E4 (plus extensions), run on the
// paper's full 15-VM pool.  Prints the detection matrix: attack, victim
// module, flagged integrity items, and the vote tally, matching the
// narrative results of the evaluation section.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "attacks/dkom_hide.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/eat_hook.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/iat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/stub_patch.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

struct Scenario {
  const attacks::Attack& attack;
  const char* experiment;
  const char* module;
};

void print_table() {
  const attacks::OpcodeReplaceAttack e1;
  const attacks::InlineHookAttack e2;
  const attacks::StubPatchAttack e3;
  const attacks::DllImportInjectAttack e4;
  const attacks::HeaderTamperAttack x1;
  const attacks::IatHookAttack x2;
  const attacks::DkomHideAttack x3;
  const attacks::EatHookAttack x4;

  const Scenario scenarios[] = {
      {e1, "E1 (V-B.1)", "hal.dll"},   {e2, "E2 (V-B.2)", "hal.dll"},
      {e3, "E3 (V-B.3)", "dummy.sys"}, {e4, "E4 (V-B.4)", "dummy.sys"},
      {x1, "ext", "ntfs.sys"},         {x2, "ext", "http.sys"},
      {x3, "ext", "tcpip.sys"},        {x4, "ext", "hal.dll"},
  };

  std::printf("=== Section V-B: detection experiments, 15-VM pool ===\n");
  std::printf("%-12s %-26s %-10s %-9s %-7s %s\n", "experiment", "attack",
              "module", "verdict", "votes", "flagged items");

  for (const auto& s : scenarios) {
    cloud::CloudConfig cfg;
    cfg.guest_count = 15;
    cloud::CloudEnvironment env(cfg);
    const vmm::DomainId victim = env.guests()[0];

    const auto result = s.attack.apply(env, victim, s.module);
    core::ModChecker checker(env.hypervisor());

    bool hidden = false;
    core::CheckReport report;
    try {
      report = checker.check_module(victim, s.module);
    } catch (const NotFoundError&) {
      hidden = true;  // DKOM-hidden on the subject itself
    }

    std::string flagged;
    const char* verdict;
    char votes[32] = "-";
    if (hidden) {
      verdict = "FLAGGED";
      flagged = "(module hidden from loader list)";
    } else {
      verdict = report.subject_clean ? "clean" : "FLAGGED";
      std::snprintf(votes, sizeof votes, "%zu/%zu", report.successes,
                    report.total_comparisons);
      for (std::size_t i = 0; i < report.flagged_items.size(); ++i) {
        flagged += (i ? ", " : "") + report.flagged_items[i];
      }
      if (flagged.empty()) {
        flagged = result.detectable_by_modchecker
                      ? "(none)"
                      : "(none — documented evasion: writable .idata)";
      }
    }
    std::printf("%-12s %-26s %-10s %-9s %-7s %s\n", s.experiment,
                result.attack_name.c_str(), s.module, verdict, votes,
                flagged.c_str());
  }
  std::printf(
      "\nPaper expectations: E1 -> .text only; E2 -> .text only; E3 -> DOS "
      "header only;\nE4 -> NT/OPTIONAL/section headers + .text; IAT hook "
      "evades (outside the checked\nsurface); DKOM surfaces as a missing "
      "module.\n\n");
}

void BM_DetectInlineHook(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  attacks::InlineHookAttack{}.apply(env, env.guests()[0], "hal.dll");
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.check_module(env.guests()[0], "hal.dll");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DetectInlineHook)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
