// A5 — cost-model sensitivity analysis.
//
// The reproduced runtime figures rest on a simulated cost model (we have
// no Xen testbed).  This bench demonstrates that the *claims* drawn from
// Figs. 7-8 are robust to those constants:
//
//   (1) Module-Searcher dominance holds across a 25x sweep of the VMI
//       page-mapping cost (the least certain constant), only fading when
//       mapping becomes implausibly cheap (~1 us — faster than a 2012
//       hypercall round-trip);
//   (2) total runtime stays linear in the pool size for every setting;
//   (3) the Fig. 8 knee follows the virtual-core count, not the costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "workload/heavyload.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";

double searcher_share(cloud::CloudEnvironment& env,
                      const core::ModCheckerConfig& cfg) {
  core::ModChecker checker(env.hypervisor(), cfg);
  const auto report = checker.check_module(env.guests()[0], kModule);
  return static_cast<double>(report.cpu_times.searcher) /
         static_cast<double>(report.cpu_times.total());
}

double linearity_r2(cloud::CloudEnvironment& env,
                    const core::ModCheckerConfig& cfg) {
  core::ModChecker checker(env.hypervisor(), cfg);
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0, n = 0;
  for (std::size_t vms = 2; vms <= env.guests().size(); ++vms) {
    std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                      env.guests().begin() +
                                          static_cast<std::ptrdiff_t>(vms));
    const auto report = checker.check_module(env.guests()[0], kModule, others);
    const double x = static_cast<double>(vms);
    const double y = to_ms(report.cpu_times.total());
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    n += 1;
  }
  const double cov = n * sxy - sx * sy;
  return (cov * cov) / ((n * sxx - sx * sx) * (n * syy - sy * sy));
}

void print_table() {
  std::printf("=== A5: sensitivity of the reproduced claims to the cost "
              "model ===\n\n");

  std::printf("(1) Searcher dominance vs VMI page-map cost (paper claim: "
              "dominant):\n");
  std::printf("%-18s %18s %12s\n", "page_map cost", "searcher share",
              "dominant?");
  for (const std::uint64_t us : {1ull, 5ull, 10ull, 25ull, 50ull, 100ull}) {
    cloud::CloudConfig cc;
    cc.guest_count = 15;
    cloud::CloudEnvironment env(cc);
    core::ModCheckerConfig cfg;
    cfg.vmi_costs.page_map = sim_us(us);
    const double share = searcher_share(env, cfg);
    std::printf("%15llu us %17.1f%% %12s\n",
                static_cast<unsigned long long>(us), share * 100,
                share > 0.5 ? "yes" : "no");
  }

  std::printf("\n(2) Linearity (R^2 of total vs pool size) across cost "
              "extremes:\n");
  std::printf("%-34s %10s\n", "configuration", "R^2");
  {
    cloud::CloudConfig cc;
    cc.guest_count = 15;
    cloud::CloudEnvironment env(cc);
    core::ModCheckerConfig cheap;
    cheap.vmi_costs.page_map = sim_us(2);
    cheap.host_costs.hash_per_byte = 1;
    core::ModCheckerConfig expensive;
    expensive.vmi_costs.page_map = sim_us(100);
    expensive.host_costs.hash_per_byte = 16;
    std::printf("%-34s %10.6f\n", "cheap VMI, cheap hash",
                linearity_r2(env, cheap));
    std::printf("%-34s %10.6f\n", "expensive VMI, expensive hash",
                linearity_r2(env, expensive));
  }

  std::printf("\n(3) Fig. 8 knee position vs virtual-core count (contention "
              "parameter, not cost):\n");
  std::printf("%-8s %24s\n", "cores", "max marginal-step ratio at");
  for (const std::uint32_t cores : {4u, 8u, 12u}) {
    cloud::CloudConfig cc;
    cc.guest_count = 15;
    cc.hardware.physical_cores = cores / 2;
    cc.hardware.hyperthreading = true;
    cloud::CloudEnvironment env(cc);
    workload::HeavyLoad heavyload(env);
    core::ModChecker checker(env.hypervisor());

    double prev_total = 0;
    double max_ratio = 0;
    std::size_t knee_at = 0;
    double prev_step = 0;
    for (std::size_t n = 2; n <= 15; ++n) {
      heavyload.stress_guests(n);
      std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                        env.guests().begin() +
                                            static_cast<std::ptrdiff_t>(n));
      const auto report =
          checker.check_module(env.guests()[0], kModule, others);
      const double total = to_ms(report.cpu_times.total());
      const double step = total - prev_total;
      if (prev_step > 0 && step / prev_step > max_ratio) {
        max_ratio = step / prev_step;
        knee_at = n;
      }
      prev_step = step;
      prev_total = total;
    }
    std::printf("%-8u %17zu VMs (x%.2f)\n", cores, knee_at, max_ratio);
  }
  std::printf("\n");
}

void BM_CheckWithExpensiveVmi(benchmark::State& state) {
  cloud::CloudConfig cc;
  cc.guest_count = 15;
  cloud::CloudEnvironment env(cc);
  core::ModCheckerConfig cfg;
  cfg.vmi_costs.page_map = sim_us(static_cast<std::uint64_t>(state.range(0)));
  core::ModChecker checker(env.hypervisor(), cfg);
  for (auto _ : state) {
    auto report = checker.check_module(env.guests()[0], kModule);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CheckWithExpensiveVmi)->Arg(5)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
