// A1 — parallel pool scan ablation.
//
// The paper (§V-C.1) attributes Fig. 7's linear growth to sequential VM
// access and notes: "The modular design of ModChecker can support parallel
// access of virtual machines' memory which would considerably enhance the
// runtime performance."  This bench implements that extension and
// quantifies it: simulated wall time of sequential vs parallel pool scans
// as the pool grows.  Parallel wall time should stay near-flat (critical
// path = slowest single VM) while sequential grows linearly.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";

void print_table() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);

  core::ModCheckerConfig seq_cfg;
  seq_cfg.parallel = false;
  core::ModChecker sequential(env.hypervisor(), seq_cfg);

  core::ModCheckerConfig par_cfg;
  par_cfg.parallel = true;
  par_cfg.worker_threads = 8;  // one per virtual core of the testbed
  core::ModChecker parallel(env.hypervisor(), par_cfg);

  std::printf("=== A1: sequential vs parallel pool access (module %s) ===\n",
              kModule);
  std::printf("%-5s %18s %18s %10s\n", "VMs", "sequential[ms]",
              "parallel[ms]", "speedup");
  double last_seq = 0, last_par = 0;
  for (std::size_t n = 2; n <= env.guests().size(); ++n) {
    std::vector<vmm::DomainId> others(env.guests().begin() + 1,
                                      env.guests().begin() +
                                          static_cast<std::ptrdiff_t>(n));
    const auto seq = sequential.check_module(env.guests()[0], kModule, others);
    const auto par = parallel.check_module(env.guests()[0], kModule, others);
    last_seq = to_ms(seq.wall_time);
    last_par = to_ms(par.wall_time);
    std::printf("%-5zu %18.3f %18.3f %9.2fx\n", n, last_seq, last_par,
                last_seq / last_par);
  }
  std::printf("\nShape checks:\n");
  std::printf("  speedup at 15 VMs: %.2fx (expect approaching pool size /"
              " critical path)\n\n",
              last_seq / last_par);
}

void BM_SequentialScan(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.check_module(env.guests()[0], kModule);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SequentialScan)->Unit(benchmark::kMillisecond);

void BM_ParallelScan(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModCheckerConfig mcfg;
  mcfg.parallel = true;
  core::ModChecker checker(env.hypervisor(), mcfg);
  for (auto _ : state) {
    auto report = checker.check_module(env.guests()[0], kModule);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ParallelScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
