// A8 — canonical-RVA fast-path ablation.
//
// The paper's pool scan compares every unordered VM pair, re-running
// Algorithm 2 and re-hashing both copies per pair: O(t^2) image work.  The
// fast path normalizes each copy once against a single reference and
// decides pairs by digest-vector comparison — O(t) image work with a
// per-pair cost of one fixed digest compare.  This bench sweeps the pool
// size, checks verdict equivalence at every point, and emits a
// machine-readable BENCH_modchecker.json consumed by CI.
//
// Exit status: non-zero if the checker-phase speedup at t=15 falls below
// 5x or any verdict diverges, so the bench doubles as a regression gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "cloud/environment.hpp"
#include "cloud/linux.hpp"
#include "modchecker/item_content.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/rva_adjust.hpp"
#include "modchecker/searcher.hpp"
#include "telemetry/registry.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";     // largest PE catalog module
constexpr const char* kElfModule = "scsi_mod";  // largest .ko in the catalog
constexpr double kRequiredSpeedupAt15 = 5.0;
/// The word-wise normalize diff kernel must beat forced-scalar by at least
/// this factor on the 1 MiB mostly-equal probe (the clean-scan shape).
constexpr double kRequiredNormalizeSpeedup = 2.0;

core::ModCheckerConfig faithful_config() {
  core::ModCheckerConfig cfg;
  cfg.pool_fastpath = false;
  cfg.digest_memo = false;
  cfg.reuse_sessions = false;
  return cfg;
}

struct Row {
  std::size_t pool_size = 0;
  core::PoolScanReport faithful;
  core::PoolScanReport fast;
  bool verdicts_match = false;
};

double checker_speedup(const Row& r) {
  return static_cast<double>(r.faithful.cpu_times.checker) /
         static_cast<double>(r.fast.cpu_times.checker);
}

double total_speedup(const Row& r) {
  return static_cast<double>(r.faithful.cpu_times.total()) /
         static_cast<double>(r.fast.cpu_times.total());
}

/// One sweep point: faithful vs fast scan of `module` over the same pool.
Row sweep_point(const vmm::Hypervisor& hypervisor,
                const std::vector<vmm::DomainId>& pool,
                const char* module) {
  Row row;
  row.pool_size = pool.size();
  row.faithful =
      core::ModChecker(hypervisor, faithful_config()).scan_pool(module, pool);
  row.fast = core::ModChecker(hypervisor).scan_pool(module, pool);

  row.verdicts_match =
      row.faithful.verdicts.size() == row.fast.verdicts.size();
  for (std::size_t i = 0; row.verdicts_match && i < pool.size(); ++i) {
    row.verdicts_match =
        row.faithful.verdicts[i].clean == row.fast.verdicts[i].clean &&
        row.faithful.verdicts[i].successes == row.fast.verdicts[i].successes;
  }
  return row;
}

constexpr std::size_t kPoolSizes[] = {2, 3, 5, 8, 10, 12, 15};

std::vector<Row> sweep() {
  std::vector<Row> rows;
  for (const std::size_t t : kPoolSizes) {
    cloud::CloudConfig cfg;
    cfg.guest_count = t;
    cloud::CloudEnvironment env(cfg);
    rows.push_back(sweep_point(env.hypervisor(), env.guests(), kModule));
  }
  return rows;
}

/// The ELF leg: the same ablation over Linux guests and .ko modules — the
/// canonical pool must deliver the same O(t) win under the ELF64 fixup
/// policy (8-byte biased slots) as under PE32's 4-byte relocations.
std::vector<Row> elf_sweep() {
  std::vector<Row> rows;
  for (const std::size_t t : kPoolSizes) {
    cloud::LinuxCloudConfig cfg;
    cfg.guest_count = t;
    cloud::LinuxEnvironment env(cfg);
    rows.push_back(sweep_point(env.hypervisor(), env.guests(), kElfModule));
  }
  return rows;
}

// ---- hot-path microprobes -----------------------------------------------------
//
// Host (wall-clock) cost of each pipeline stage, normalized per byte of
// module image.  Cycles come from the TSC on x86 and degrade to
// nanoseconds elsewhere; each probe keeps the best of several repetitions
// so a noisy CI neighbor cannot fail the gate.

std::uint64_t read_cycle_counter() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      // Host-time probe by design.  mc-lint: allow(sim-determinism)
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct Probe {
  double ns_per_byte = 0;
  double cycles_per_byte = 0;
  std::size_t bytes = 0;
};

template <typename Fn>
Probe probe_stage(std::size_t bytes, Fn&& fn) {
  constexpr int kReps = 7;
  double best_ns = 1e300;
  double best_cycles = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    // The probes measure host wall time on purpose (the sim stream is
    // untouched — the equivalence suites gate that separately).
    const auto t0 = std::chrono::steady_clock::now();  // mc-lint: allow(sim-determinism)
    const std::uint64_t c0 = read_cycle_counter();
    fn();
    const std::uint64_t c1 = read_cycle_counter();
    const auto t1 = std::chrono::steady_clock::now();  // mc-lint: allow(sim-determinism)
    best_ns = std::min(
        best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
    best_cycles = std::min(best_cycles, static_cast<double>(c1 - c0));
  }
  Probe p;
  p.bytes = bytes;
  p.ns_per_byte = best_ns / static_cast<double>(bytes);
  p.cycles_per_byte = best_cycles / static_cast<double>(bytes);
  return p;
}

struct HotpathReport {
  Probe acquire_view;
  Probe acquire_copy;
  Probe parse;
  Probe normalize_vec;
  Probe normalize_scalar;
  Probe compare;
  Probe hash_md5;
  double normalize_kernel_speedup = 0;  // scalar ns / vectorized ns
  const char* simd_level = "";
};

/// Per-stage probes over a real module on real guests, plus the synthetic
/// 1 MiB normalize-kernel A/B that backs the speedup gate.
HotpathReport measure_hotpath() {
  HotpathReport hp;
  hp.simd_level = simd::level_name(simd::active_level());

  cloud::CloudConfig cfg;
  cfg.guest_count = 2;
  cloud::CloudEnvironment env(cfg);
  SimClock clock;
  vmi::VmiSession s0(env.hypervisor(), env.guests()[0], clock);
  vmi::VmiSession s1(env.hypervisor(), env.guests()[1], clock);

  core::ModuleSearcher searcher0(s0);
  core::ModuleSearcher searcher1(s1);
  const auto info0 = searcher0.find_module(kModule);
  const auto info1 = searcher1.find_module(kModule);
  if (!info0 || !info1) {
    return hp;
  }
  const std::size_t image_bytes = info0->size_of_image;

  // Acquire: borrowed view vs owned copy of the whole image.
  hp.acquire_view = probe_stage(image_bytes, [&] {
    auto view = s0.try_read_view(info0->base, image_bytes);
    benchmark::DoNotOptimize(view);
  });
  hp.acquire_copy = probe_stage(image_bytes, [&] {
    auto copy = s0.try_read_region(info0->base, image_bytes);
    benchmark::DoNotOptimize(copy);
  });

  // Parse on the view-backed image (the zero-copy pipeline's shape).
  auto fallible0 = searcher0.try_extract_module(kModule,
                                                core::ExtractMode::kView);
  auto fallible1 = searcher1.try_extract_module(kModule,
                                                core::ExtractMode::kView);
  if (!fallible0.ok() || !fallible0.value() || !fallible1.ok() ||
      !fallible1.value()) {
    return hp;
  }
  const core::ModuleImage& img0 = *fallible0.value();
  const core::ModuleImage& img1 = *fallible1.value();
  const core::ModuleParser parser;
  hp.parse = probe_stage(image_bytes, [&] {
    SimClock inner_clock;
    auto parsed = parser.parse(img0, inner_clock);
    benchmark::DoNotOptimize(parsed);
  });

  SimClock parse_clock;
  const core::ParsedModule mod0 = parser.parse(img0, parse_clock);
  const core::ParsedModule mod1 = parser.parse(img1, parse_clock);

  // Pick the largest rva-sensitive item pair (the .text sections).
  const core::IntegrityItem* text0 = nullptr;
  const core::IntegrityItem* text1 = nullptr;
  for (std::size_t i = 0; i < mod0.items.size() && i < mod1.items.size();
       ++i) {
    if (mod0.items[i].rva_sensitive &&
        (text0 == nullptr ||
         mod0.items[i].content_size() > text0->content_size())) {
      text0 = &mod0.items[i];
      text1 = &mod1.items[i];
    }
  }
  if (text0 == nullptr) {
    return hp;
  }
  const std::size_t text_bytes = text0->content_size();

  // Normalize (Algorithm 2) on real sections, vectorized vs forced scalar.
  const auto normalize_once = [&](simd::Policy policy) {
    ArenaScope scope(scratch_arena());
    MutableByteView a = core::arena_content_copy(scratch_arena(), *text0);
    MutableByteView b = core::arena_content_copy(scratch_arena(), *text1);
    auto adj = core::adjust_rvas(a, mod0.base, b, mod1.base, policy);
    benchmark::DoNotOptimize(adj);
  };
  hp.normalize_vec = probe_stage(
      text_bytes, [&] { normalize_once(simd::Policy::kAuto); });
  hp.normalize_scalar = probe_stage(
      text_bytes, [&] { normalize_once(simd::Policy::kScalar); });

  // Compare and Hash over the view-backed items.
  hp.compare = probe_stage(text_bytes, [&] {
    bool eq = core::item_content_equal(*text0, *text0);
    benchmark::DoNotOptimize(eq);
  });
  hp.hash_md5 = probe_stage(text_bytes, [&] {
    auto d = core::hash_item_content(crypto::HashAlgorithm::kMd5, *text0);
    benchmark::DoNotOptimize(d);
  });

  // Speedup gate runs on a synthetic 1 MiB mostly-equal pair: the shape a
  // clean pool scan spends its normalize time on, and large enough that
  // per-call overhead cannot mask the kernel.
  constexpr std::size_t kProbeBytes = 1u << 20;
  Bytes pa(kProbeBytes, 0xA5);
  Bytes pb = pa;
  pb[kProbeBytes - 3] ^= 1;  // one late diff so the scan is honest
  const Probe vec = probe_stage(kProbeBytes, [&] {
    auto j = simd::mismatch(pa.data(), pb.data(), kProbeBytes, 0);
    benchmark::DoNotOptimize(j);
  });
  const Probe sca = probe_stage(kProbeBytes, [&] {
    auto j = simd::mismatch(pa.data(), pb.data(), kProbeBytes, 0,
                            simd::Policy::kScalar);
    benchmark::DoNotOptimize(j);
  });
  hp.normalize_kernel_speedup = sca.ns_per_byte / vec.ns_per_byte;
  return hp;
}

// ---- zero-copy acquire gate ---------------------------------------------------

struct ZeroCopyAudit {
  std::uint64_t materializations = 0;
  std::uint64_t view_bytes = 0;
  std::uint64_t bytes_copied = 0;
  bool clean = false;  // zero owned-image copies on the clean scan
};

/// Clean pool scan against a private registry: the Acquire stage must
/// produce only borrowed views (materializations == 0, view_bytes > 0).
ZeroCopyAudit measure_zero_copy() {
  telemetry::MetricRegistry reg;
  cloud::CloudConfig cfg;
  cfg.guest_count = 8;
  cloud::CloudEnvironment env(cfg);
  core::ModCheckerConfig mc_cfg;
  mc_cfg.metrics = &reg;
  core::ModChecker checker(env.hypervisor(), mc_cfg);
  auto report = checker.scan_pool(kModule, env.guests());
  benchmark::DoNotOptimize(report);

  ZeroCopyAudit zc;
  zc.materializations =
      reg.counter("pipeline.acquire.materializations").value();
  zc.view_bytes = reg.counter("vmi.view_bytes").value();
  zc.bytes_copied = reg.counter("vmi.bytes_copied").value();
  zc.clean = zc.materializations == 0 && zc.view_bytes > 0;
  return zc;
}

void print_probe(std::FILE* f, const char* name, const Probe& p,
                 bool trailing_comma) {
  std::fprintf(f,
               "      \"%s\": {\"ns_per_byte\": %.4f, "
               "\"cycles_per_byte\": %.4f, \"bytes\": %zu}%s\n",
               name, p.ns_per_byte, p.cycles_per_byte, p.bytes,
               trailing_comma ? "," : "");
}

void print_component(std::FILE* f, const char* name,
                     const core::PoolScanReport& r, bool trailing_comma) {
  std::fprintf(f,
               "      \"%s\": {\"searcher_ms\": %.6f, \"parser_ms\": %.6f, "
               "\"checker_ms\": %.6f, \"total_cpu_ms\": %.6f, "
               "\"wall_ms\": %.6f, \"fastpath_pairs\": %zu, "
               "\"fallback_pairs\": %zu}%s\n",
               name, to_ms(r.cpu_times.searcher), to_ms(r.cpu_times.parser),
               to_ms(r.cpu_times.checker), to_ms(r.cpu_times.total()),
               to_ms(r.wall_time), r.fastpath_pairs, r.fallback_pairs,
               trailing_comma ? "," : "");
}

void print_rows(std::FILE* f, const std::vector<Row>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "    {\n      \"pool_size\": %zu,\n", r.pool_size);
    print_component(f, "faithful", r.faithful, true);
    print_component(f, "fast", r.fast, true);
    std::fprintf(f,
                 "      \"checker_speedup\": %.3f,\n"
                 "      \"total_speedup\": %.3f,\n"
                 "      \"verdicts_match\": %s\n    }%s\n",
                 checker_speedup(r), total_speedup(r),
                 r.verdicts_match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
}

bool write_json(const std::string& path, const std::vector<Row>& rows,
                const std::vector<Row>& elf_rows,
                const vmi::SessionPoolStats& pool_stats,
                double warm_rescan_searcher_ms, const HotpathReport& hp,
                const ZeroCopyAudit& zc, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ablation_fastpath\",\n");
  std::fprintf(f, "  \"module\": \"%s\",\n", kModule);
  std::fprintf(f, "  \"elf_module\": \"%s\",\n", kElfModule);
  std::fprintf(f, "  \"required_checker_speedup_at_15\": %.1f,\n",
               kRequiredSpeedupAt15);
  std::fprintf(f, "  \"rows\": [\n");
  print_rows(f, rows);
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"elf_rows\": [\n");
  print_rows(f, elf_rows);
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"session_pool\": {\"created\": %llu, \"reused\": %llu, "
               "\"invalidated\": %llu},\n",
               static_cast<unsigned long long>(pool_stats.created),
               static_cast<unsigned long long>(pool_stats.reused),
               static_cast<unsigned long long>(pool_stats.invalidated));
  std::fprintf(f, "  \"warm_rescan_searcher_ms\": %.6f,\n",
               warm_rescan_searcher_ms);
  std::fprintf(f, "  \"hotpath\": {\n    \"stages\": {\n");
  print_probe(f, "acquire_view", hp.acquire_view, true);
  print_probe(f, "acquire_copy", hp.acquire_copy, true);
  print_probe(f, "parse", hp.parse, true);
  print_probe(f, "normalize_vec", hp.normalize_vec, true);
  print_probe(f, "normalize_scalar", hp.normalize_scalar, true);
  print_probe(f, "compare", hp.compare, true);
  print_probe(f, "hash_md5", hp.hash_md5, false);
  std::fprintf(f,
               "    },\n    \"simd_level\": \"%s\",\n"
               "    \"normalize_kernel_speedup\": %.3f,\n"
               "    \"required_normalize_speedup\": %.1f\n  },\n",
               hp.simd_level, hp.normalize_kernel_speedup,
               kRequiredNormalizeSpeedup);
  std::fprintf(f,
               "  \"zero_copy\": {\"materializations\": %llu, "
               "\"view_bytes\": %llu, \"bytes_copied\": %llu, "
               "\"clean_scan_zero_materializations\": %s},\n",
               static_cast<unsigned long long>(zc.materializations),
               static_cast<unsigned long long>(zc.view_bytes),
               static_cast<unsigned long long>(zc.bytes_copied),
               zc.clean ? "true" : "false");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  return true;
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-6s %14s %14s %9s %9s %8s %9s %8s\n", "pool",
              "faithful[ms]", "fast[ms]", "chk-spdp", "tot-spdp", "fastpairs",
              "fallback", "match");
  for (const Row& r : rows) {
    std::printf("%-6zu %14.3f %14.3f %8.2fx %8.2fx %8zu %9zu %8s\n",
                r.pool_size, to_ms(r.faithful.cpu_times.total()),
                to_ms(r.fast.cpu_times.total()), checker_speedup(r),
                total_speedup(r), r.fast.fastpath_pairs,
                r.fast.fallback_pairs, r.verdicts_match ? "yes" : "NO");
  }
}

/// Runs both format sweeps + a warm-rescan probe; returns the exit code.
int run_ablation(const std::string& json_path) {
  const std::vector<Row> rows = sweep();
  const std::vector<Row> elf_rows = elf_sweep();

  std::printf("=== A8: canonical-RVA fast path (module %s) ===\n", kModule);
  print_table(rows);
  std::printf("\n=== A8/elf: same ablation, Linux pool (module %s) ===\n",
              kElfModule);
  print_table(elf_rows);

  // Warm-rescan probe: a second scan through the same checker reuses the
  // pooled sessions, eliminating attach + debug-block scan per VM.
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker warm(env.hypervisor());
  const auto cold_scan = warm.scan_pool(kModule, env.guests());
  const auto warm_scan = warm.scan_pool(kModule, env.guests());
  std::printf("\nwarm rescan (t=15): searcher %0.3f -> %0.3f ms, "
              "sessions created %llu reused %llu\n",
              to_ms(cold_scan.cpu_times.searcher),
              to_ms(warm_scan.cpu_times.searcher),
              static_cast<unsigned long long>(warm.session_pool_stats().created),
              static_cast<unsigned long long>(warm.session_pool_stats().reused));

  // Hot-path microprobes + zero-copy acquire audit (tentpole gates).
  const HotpathReport hp = measure_hotpath();
  const ZeroCopyAudit zc = measure_zero_copy();

  const auto print_stage = [](const char* name, const Probe& p) {
    std::printf("  %-16s %10.4f %14.4f %10zu\n", name, p.ns_per_byte,
                p.cycles_per_byte, p.bytes);
  };
  std::printf("\nper-stage hot path (dispatch level: %s)\n", hp.simd_level);
  std::printf("  %-16s %10s %14s %10s\n", "stage", "ns/byte", "cycles/byte",
              "bytes");
  print_stage("acquire_view", hp.acquire_view);
  print_stage("acquire_copy", hp.acquire_copy);
  print_stage("parse", hp.parse);
  print_stage("normalize_vec", hp.normalize_vec);
  print_stage("normalize_scalar", hp.normalize_scalar);
  print_stage("compare", hp.compare);
  print_stage("hash_md5", hp.hash_md5);
  std::printf("normalize kernel speedup (1 MiB probe): %.2fx "
              "(required >= %.1fx)\n",
              hp.normalize_kernel_speedup, kRequiredNormalizeSpeedup);
  std::printf("zero-copy clean scan: materializations=%llu view_bytes=%llu "
              "bytes_copied=%llu => %s\n",
              static_cast<unsigned long long>(zc.materializations),
              static_cast<unsigned long long>(zc.view_bytes),
              static_cast<unsigned long long>(zc.bytes_copied),
              zc.clean ? "clean" : "NOT CLEAN");

  // The gate applies per format: both t=15 legs must clear the same
  // speedup floor, and every row of either sweep must match verdicts.
  const Row& last = rows.back();
  const Row& elf_last = elf_rows.back();
  bool pass = last.pool_size == 15 &&
              checker_speedup(last) >= kRequiredSpeedupAt15 &&
              elf_last.pool_size == 15 &&
              checker_speedup(elf_last) >= kRequiredSpeedupAt15 &&
              warm_scan.cpu_times.searcher < cold_scan.cpu_times.searcher;
  for (const Row& r : rows) {
    pass = pass && r.verdicts_match;
  }
  for (const Row& r : elf_rows) {
    pass = pass && r.verdicts_match;
  }
  pass = pass && hp.normalize_kernel_speedup >= kRequiredNormalizeSpeedup;
  pass = pass && zc.clean;
  std::printf("checker speedup at t=15: pe32 %.2fx, elf64 %.2fx "
              "(required >= %.1fx) => %s\n\n",
              checker_speedup(last), checker_speedup(elf_last),
              kRequiredSpeedupAt15, pass ? "PASS" : "FAIL");

  if (!write_json(json_path, rows, elf_rows, warm.session_pool_stats(),
                  to_ms(warm_scan.cpu_times.searcher), hp, zc, pass)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

void BM_ScanPoolFaithful(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = static_cast<std::size_t>(state.range(0));
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor(), faithful_config());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ScanPoolFaithful)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_ScanPoolFastpath(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = static_cast<std::size_t>(state.range(0));
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ScanPoolFastpath)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument overrides the JSON output path.
  std::string json_path = "BENCH_modchecker.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_ablation(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
