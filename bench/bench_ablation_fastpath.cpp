// A8 — canonical-RVA fast-path ablation.
//
// The paper's pool scan compares every unordered VM pair, re-running
// Algorithm 2 and re-hashing both copies per pair: O(t^2) image work.  The
// fast path normalizes each copy once against a single reference and
// decides pairs by digest-vector comparison — O(t) image work with a
// per-pair cost of one fixed digest compare.  This bench sweeps the pool
// size, checks verdict equivalence at every point, and emits a
// machine-readable BENCH_modchecker.json consumed by CI.
//
// Exit status: non-zero if the checker-phase speedup at t=15 falls below
// 5x or any verdict diverges, so the bench doubles as a regression gate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

namespace {

using namespace mc;

constexpr const char* kModule = "http.sys";  // largest catalog module
constexpr double kRequiredSpeedupAt15 = 5.0;

core::ModCheckerConfig faithful_config() {
  core::ModCheckerConfig cfg;
  cfg.pool_fastpath = false;
  cfg.digest_memo = false;
  cfg.reuse_sessions = false;
  return cfg;
}

struct Row {
  std::size_t pool_size = 0;
  core::PoolScanReport faithful;
  core::PoolScanReport fast;
  bool verdicts_match = false;
};

double checker_speedup(const Row& r) {
  return static_cast<double>(r.faithful.cpu_times.checker) /
         static_cast<double>(r.fast.cpu_times.checker);
}

double total_speedup(const Row& r) {
  return static_cast<double>(r.faithful.cpu_times.total()) /
         static_cast<double>(r.fast.cpu_times.total());
}

std::vector<Row> sweep() {
  std::vector<Row> rows;
  for (const std::size_t t : {2u, 3u, 5u, 8u, 10u, 12u, 15u}) {
    cloud::CloudConfig cfg;
    cfg.guest_count = t;
    cloud::CloudEnvironment env(cfg);

    Row row;
    row.pool_size = t;
    row.faithful = core::ModChecker(env.hypervisor(), faithful_config())
                       .scan_pool(kModule, env.guests());
    row.fast =
        core::ModChecker(env.hypervisor()).scan_pool(kModule, env.guests());

    row.verdicts_match =
        row.faithful.verdicts.size() == row.fast.verdicts.size();
    for (std::size_t i = 0; row.verdicts_match && i < t; ++i) {
      row.verdicts_match =
          row.faithful.verdicts[i].clean == row.fast.verdicts[i].clean &&
          row.faithful.verdicts[i].successes == row.fast.verdicts[i].successes;
    }
    rows.push_back(row);
  }
  return rows;
}

void print_component(std::FILE* f, const char* name,
                     const core::PoolScanReport& r, bool trailing_comma) {
  std::fprintf(f,
               "      \"%s\": {\"searcher_ms\": %.6f, \"parser_ms\": %.6f, "
               "\"checker_ms\": %.6f, \"total_cpu_ms\": %.6f, "
               "\"wall_ms\": %.6f, \"fastpath_pairs\": %zu, "
               "\"fallback_pairs\": %zu}%s\n",
               name, to_ms(r.cpu_times.searcher), to_ms(r.cpu_times.parser),
               to_ms(r.cpu_times.checker), to_ms(r.cpu_times.total()),
               to_ms(r.wall_time), r.fastpath_pairs, r.fallback_pairs,
               trailing_comma ? "," : "");
}

bool write_json(const std::string& path, const std::vector<Row>& rows,
                const vmi::SessionPoolStats& pool_stats,
                double warm_rescan_searcher_ms, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ablation_fastpath\",\n");
  std::fprintf(f, "  \"module\": \"%s\",\n", kModule);
  std::fprintf(f, "  \"required_checker_speedup_at_15\": %.1f,\n",
               kRequiredSpeedupAt15);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "    {\n      \"pool_size\": %zu,\n", r.pool_size);
    print_component(f, "faithful", r.faithful, true);
    print_component(f, "fast", r.fast, true);
    std::fprintf(f,
                 "      \"checker_speedup\": %.3f,\n"
                 "      \"total_speedup\": %.3f,\n"
                 "      \"verdicts_match\": %s\n    }%s\n",
                 checker_speedup(r), total_speedup(r),
                 r.verdicts_match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"session_pool\": {\"created\": %llu, \"reused\": %llu, "
               "\"invalidated\": %llu},\n",
               static_cast<unsigned long long>(pool_stats.created),
               static_cast<unsigned long long>(pool_stats.reused),
               static_cast<unsigned long long>(pool_stats.invalidated));
  std::fprintf(f, "  \"warm_rescan_searcher_ms\": %.6f,\n",
               warm_rescan_searcher_ms);
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  return true;
}

/// Runs the sweep + a warm-rescan probe; returns the process exit code.
int run_ablation(const std::string& json_path) {
  const std::vector<Row> rows = sweep();

  std::printf("=== A8: canonical-RVA fast path (module %s) ===\n", kModule);
  std::printf("%-6s %14s %14s %9s %9s %8s %9s %8s\n", "pool",
              "faithful[ms]", "fast[ms]", "chk-spdp", "tot-spdp", "fastpairs",
              "fallback", "match");
  for (const Row& r : rows) {
    std::printf("%-6zu %14.3f %14.3f %8.2fx %8.2fx %8zu %9zu %8s\n",
                r.pool_size, to_ms(r.faithful.cpu_times.total()),
                to_ms(r.fast.cpu_times.total()), checker_speedup(r),
                total_speedup(r), r.fast.fastpath_pairs,
                r.fast.fallback_pairs, r.verdicts_match ? "yes" : "NO");
  }

  // Warm-rescan probe: a second scan through the same checker reuses the
  // pooled sessions, eliminating attach + debug-block scan per VM.
  cloud::CloudConfig cfg;
  cfg.guest_count = 15;
  cloud::CloudEnvironment env(cfg);
  core::ModChecker warm(env.hypervisor());
  const auto cold_scan = warm.scan_pool(kModule, env.guests());
  const auto warm_scan = warm.scan_pool(kModule, env.guests());
  std::printf("\nwarm rescan (t=15): searcher %0.3f -> %0.3f ms, "
              "sessions created %llu reused %llu\n",
              to_ms(cold_scan.cpu_times.searcher),
              to_ms(warm_scan.cpu_times.searcher),
              static_cast<unsigned long long>(warm.session_pool_stats().created),
              static_cast<unsigned long long>(warm.session_pool_stats().reused));

  const Row& last = rows.back();
  bool pass = last.pool_size == 15 &&
              checker_speedup(last) >= kRequiredSpeedupAt15 &&
              warm_scan.cpu_times.searcher < cold_scan.cpu_times.searcher;
  for (const Row& r : rows) {
    pass = pass && r.verdicts_match;
  }
  std::printf("checker speedup at t=15: %.2fx (required >= %.1fx) => %s\n\n",
              checker_speedup(last), kRequiredSpeedupAt15,
              pass ? "PASS" : "FAIL");

  if (!write_json(json_path, rows, warm.session_pool_stats(),
                  to_ms(warm_scan.cpu_times.searcher), pass)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

void BM_ScanPoolFaithful(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = static_cast<std::size_t>(state.range(0));
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor(), faithful_config());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ScanPoolFaithful)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_ScanPoolFastpath(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = static_cast<std::size_t>(state.range(0));
  cloud::CloudEnvironment env(cfg);
  core::ModChecker checker(env.hypervisor());
  for (auto _ : state) {
    auto report = checker.scan_pool(kModule, env.guests());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ScanPoolFastpath)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument overrides the JSON output path.
  std::string json_path = "BENCH_modchecker.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-') {
      json_path = arg;
      break;
    }
  }
  const int rc = run_ablation(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return rc;
}
