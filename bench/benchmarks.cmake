# Benchmark harness — one binary per reproduced table/figure (see
# DESIGN.md §4).  Declared with include() from the top-level lists file so
# ${CMAKE_BINARY_DIR}/bench contains nothing but runnable binaries.

# Every bench links mc_warnings: it carries the warning set AND the
# MODCHECKER_SANITIZE compile/link flags, so sanitizer builds cover the
# bench binaries identically to src/ and tests/ (DESIGN.md §6.1).
function(mc_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    mc_warnings
    mc_core mc_cloud mc_attacks mc_baselines mc_workload
    benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mc_add_bench(bench_fig7_idle_runtime)
mc_add_bench(bench_fig8_loaded_runtime)
mc_add_bench(bench_fig9_guest_impact)
mc_add_bench(bench_detection)
mc_add_bench(bench_baselines)
mc_add_bench(bench_ablation_parallel)
mc_add_bench(bench_ablation_rva)
mc_add_bench(bench_majority_vote)
mc_add_bench(bench_ablation_costmodel)
mc_add_bench(bench_ablation_sampling)
mc_add_bench(bench_ablation_incremental)
mc_add_bench(bench_ablation_fastpath)
mc_add_bench(bench_fault_overhead)
mc_add_bench(bench_telemetry_overhead)
mc_add_bench(bench_event_driven)
mc_add_bench(bench_micro)
mc_add_bench(bench_fleet_shards)
# The fleet bench drives the sharded control plane itself.
target_link_libraries(bench_fleet_shards PRIVATE mc_service)
