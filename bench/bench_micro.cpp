// Microbenchmarks of the library's real (host wall-clock) performance —
// the substrate primitives every reproduced figure is built on.
#include <benchmark/benchmark.h>

#include <memory>

#include "cloud/environment.hpp"
#include "crypto/md5.hpp"
#include "crypto/sha256.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "util/rng.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;

Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next());
  }
  return data;
}

void BM_Md5(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto digest = crypto::Md5::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto digest = crypto::Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(65536);

void BM_BuildGoldenImages(benchmark::State& state) {
  const auto catalog = cloud::default_catalog();
  for (auto _ : state) {
    cloud::GoldenImages golden(catalog);
    benchmark::DoNotOptimize(golden);
  }
}
BENCHMARK(BM_BuildGoldenImages)->Unit(benchmark::kMillisecond);

void BM_MapImage(benchmark::State& state) {
  const cloud::GoldenImages golden(cloud::default_catalog());
  const Bytes& file = golden.file("http.sys");
  for (auto _ : state) {
    auto mapped = pe::map_image(file);
    benchmark::DoNotOptimize(mapped);
  }
}
BENCHMARK(BM_MapImage)->Unit(benchmark::kMicrosecond);

void BM_BootGuest(benchmark::State& state) {
  for (auto _ : state) {
    cloud::CloudConfig cfg;
    cfg.guest_count = 1;
    cloud::CloudEnvironment env(cfg);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_BootGuest)->Unit(benchmark::kMillisecond);

void BM_VmiExtractModule(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 1;
  cloud::CloudEnvironment env(cfg);
  for (auto _ : state) {
    SimClock clock;
    vmi::VmiSession session(env.hypervisor(), env.guests()[0], clock);
    core::ModuleSearcher searcher(session);
    auto image = searcher.extract_module("http.sys");
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_VmiExtractModule)->Unit(benchmark::kMicrosecond);

void BM_ParseModule(benchmark::State& state) {
  cloud::CloudConfig cfg;
  cfg.guest_count = 1;
  cloud::CloudEnvironment env(cfg);
  SimClock clock;
  vmi::VmiSession session(env.hypervisor(), env.guests()[0], clock);
  core::ModuleSearcher searcher(session);
  const auto image = searcher.extract_module("http.sys");
  const core::ModuleParser parser;
  for (auto _ : state) {
    SimClock parse_clock;
    auto parsed = parser.parse(*image, parse_clock);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseModule)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
