# Empty compiler generated dependencies file for bench_fig9_guest_impact.
# This may be replaced when dependencies are built.
