file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_guest_impact.dir/bench/bench_fig9_guest_impact.cpp.o"
  "CMakeFiles/bench_fig9_guest_impact.dir/bench/bench_fig9_guest_impact.cpp.o.d"
  "bench/bench_fig9_guest_impact"
  "bench/bench_fig9_guest_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_guest_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
