file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_loaded_runtime.dir/bench/bench_fig8_loaded_runtime.cpp.o"
  "CMakeFiles/bench_fig8_loaded_runtime.dir/bench/bench_fig8_loaded_runtime.cpp.o.d"
  "bench/bench_fig8_loaded_runtime"
  "bench/bench_fig8_loaded_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_loaded_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
