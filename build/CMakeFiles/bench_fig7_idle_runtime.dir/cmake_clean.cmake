file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_idle_runtime.dir/bench/bench_fig7_idle_runtime.cpp.o"
  "CMakeFiles/bench_fig7_idle_runtime.dir/bench/bench_fig7_idle_runtime.cpp.o.d"
  "bench/bench_fig7_idle_runtime"
  "bench/bench_fig7_idle_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_idle_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
