file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rva.dir/bench/bench_ablation_rva.cpp.o"
  "CMakeFiles/bench_ablation_rva.dir/bench/bench_ablation_rva.cpp.o.d"
  "bench/bench_ablation_rva"
  "bench/bench_ablation_rva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
