# Empty compiler generated dependencies file for bench_ablation_rva.
# This may be replaced when dependencies are built.
