file(REMOVE_RECURSE
  "CMakeFiles/bench_majority_vote.dir/bench/bench_majority_vote.cpp.o"
  "CMakeFiles/bench_majority_vote.dir/bench/bench_majority_vote.cpp.o.d"
  "bench/bench_majority_vote"
  "bench/bench_majority_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_majority_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
