# Empty compiler generated dependencies file for bench_majority_vote.
# This may be replaced when dependencies are built.
