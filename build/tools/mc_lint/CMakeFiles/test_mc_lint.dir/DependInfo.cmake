
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mc_lint/lint_test.cpp" "tools/mc_lint/CMakeFiles/test_mc_lint.dir/lint_test.cpp.o" "gcc" "tools/mc_lint/CMakeFiles/test_mc_lint.dir/lint_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/mc_lint/CMakeFiles/mc_lint_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
