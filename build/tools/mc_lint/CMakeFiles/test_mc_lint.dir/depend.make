# Empty dependencies file for test_mc_lint.
# This may be replaced when dependencies are built.
