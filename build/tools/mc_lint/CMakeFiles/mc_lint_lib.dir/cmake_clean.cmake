file(REMOVE_RECURSE
  "CMakeFiles/mc_lint_lib.dir/linter.cpp.o"
  "CMakeFiles/mc_lint_lib.dir/linter.cpp.o.d"
  "libmc_lint_lib.a"
  "libmc_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
