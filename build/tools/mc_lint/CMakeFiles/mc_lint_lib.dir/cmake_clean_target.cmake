file(REMOVE_RECURSE
  "libmc_lint_lib.a"
)
