# Empty dependencies file for mc_lint_lib.
# This may be replaced when dependencies are built.
