file(REMOVE_RECURSE
  "CMakeFiles/mc_lint.dir/main.cpp.o"
  "CMakeFiles/mc_lint.dir/main.cpp.o.d"
  "mc_lint"
  "mc_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
