# Empty dependencies file for mc_lint.
# This may be replaced when dependencies are built.
