# CMake generated Testfile for 
# Source directory: /root/repo/tools/mc_lint
# Build directory: /root/repo/build/tools/mc_lint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tools/mc_lint/test_mc_lint[1]_include.cmake")
add_test([=[mc_lint_src]=] "/root/repo/build/tools/mc_lint/mc_lint" "/root/repo/src")
set_tests_properties([=[mc_lint_src]=] PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/tools/mc_lint/CMakeLists.txt;22;add_test;/root/repo/tools/mc_lint/CMakeLists.txt;0;")
