# Empty compiler generated dependencies file for modchecker_cli.
# This may be replaced when dependencies are built.
