file(REMOVE_RECURSE
  "CMakeFiles/modchecker_cli.dir/modchecker_cli.cpp.o"
  "CMakeFiles/modchecker_cli.dir/modchecker_cli.cpp.o.d"
  "modchecker_cli"
  "modchecker_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modchecker_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
