# Empty dependencies file for modchecker_cli.
# This may be replaced when dependencies are built.
