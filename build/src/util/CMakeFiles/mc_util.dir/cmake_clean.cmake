file(REMOVE_RECURSE
  "CMakeFiles/mc_util.dir/error.cpp.o"
  "CMakeFiles/mc_util.dir/error.cpp.o.d"
  "CMakeFiles/mc_util.dir/hexdump.cpp.o"
  "CMakeFiles/mc_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/mc_util.dir/log.cpp.o"
  "CMakeFiles/mc_util.dir/log.cpp.o.d"
  "CMakeFiles/mc_util.dir/sim_clock.cpp.o"
  "CMakeFiles/mc_util.dir/sim_clock.cpp.o.d"
  "CMakeFiles/mc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mc_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mc_util.dir/utf16.cpp.o"
  "CMakeFiles/mc_util.dir/utf16.cpp.o.d"
  "libmc_util.a"
  "libmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
