file(REMOVE_RECURSE
  "libmc_util.a"
)
