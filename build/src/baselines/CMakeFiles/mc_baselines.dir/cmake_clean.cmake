file(REMOVE_RECURSE
  "CMakeFiles/mc_baselines.dir/disk_crossview.cpp.o"
  "CMakeFiles/mc_baselines.dir/disk_crossview.cpp.o.d"
  "CMakeFiles/mc_baselines.dir/hash_dict.cpp.o"
  "CMakeFiles/mc_baselines.dir/hash_dict.cpp.o.d"
  "CMakeFiles/mc_baselines.dir/lkim_style.cpp.o"
  "CMakeFiles/mc_baselines.dir/lkim_style.cpp.o.d"
  "CMakeFiles/mc_baselines.dir/pioneer_style.cpp.o"
  "CMakeFiles/mc_baselines.dir/pioneer_style.cpp.o.d"
  "libmc_baselines.a"
  "libmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
