# Empty compiler generated dependencies file for mc_pe.
# This may be replaced when dependencies are built.
