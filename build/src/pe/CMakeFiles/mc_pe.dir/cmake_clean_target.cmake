file(REMOVE_RECURSE
  "libmc_pe.a"
)
