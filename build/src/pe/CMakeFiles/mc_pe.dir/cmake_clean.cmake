file(REMOVE_RECURSE
  "CMakeFiles/mc_pe.dir/builder.cpp.o"
  "CMakeFiles/mc_pe.dir/builder.cpp.o.d"
  "CMakeFiles/mc_pe.dir/exports.cpp.o"
  "CMakeFiles/mc_pe.dir/exports.cpp.o.d"
  "CMakeFiles/mc_pe.dir/imports.cpp.o"
  "CMakeFiles/mc_pe.dir/imports.cpp.o.d"
  "CMakeFiles/mc_pe.dir/mapper.cpp.o"
  "CMakeFiles/mc_pe.dir/mapper.cpp.o.d"
  "CMakeFiles/mc_pe.dir/parser.cpp.o"
  "CMakeFiles/mc_pe.dir/parser.cpp.o.d"
  "CMakeFiles/mc_pe.dir/reloc.cpp.o"
  "CMakeFiles/mc_pe.dir/reloc.cpp.o.d"
  "CMakeFiles/mc_pe.dir/resources.cpp.o"
  "CMakeFiles/mc_pe.dir/resources.cpp.o.d"
  "CMakeFiles/mc_pe.dir/strings.cpp.o"
  "CMakeFiles/mc_pe.dir/strings.cpp.o.d"
  "CMakeFiles/mc_pe.dir/structs.cpp.o"
  "CMakeFiles/mc_pe.dir/structs.cpp.o.d"
  "CMakeFiles/mc_pe.dir/validate.cpp.o"
  "CMakeFiles/mc_pe.dir/validate.cpp.o.d"
  "libmc_pe.a"
  "libmc_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
