
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pe/builder.cpp" "src/pe/CMakeFiles/mc_pe.dir/builder.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/builder.cpp.o.d"
  "/root/repo/src/pe/exports.cpp" "src/pe/CMakeFiles/mc_pe.dir/exports.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/exports.cpp.o.d"
  "/root/repo/src/pe/imports.cpp" "src/pe/CMakeFiles/mc_pe.dir/imports.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/imports.cpp.o.d"
  "/root/repo/src/pe/mapper.cpp" "src/pe/CMakeFiles/mc_pe.dir/mapper.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/mapper.cpp.o.d"
  "/root/repo/src/pe/parser.cpp" "src/pe/CMakeFiles/mc_pe.dir/parser.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/parser.cpp.o.d"
  "/root/repo/src/pe/reloc.cpp" "src/pe/CMakeFiles/mc_pe.dir/reloc.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/reloc.cpp.o.d"
  "/root/repo/src/pe/resources.cpp" "src/pe/CMakeFiles/mc_pe.dir/resources.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/resources.cpp.o.d"
  "/root/repo/src/pe/strings.cpp" "src/pe/CMakeFiles/mc_pe.dir/strings.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/strings.cpp.o.d"
  "/root/repo/src/pe/structs.cpp" "src/pe/CMakeFiles/mc_pe.dir/structs.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/structs.cpp.o.d"
  "/root/repo/src/pe/validate.cpp" "src/pe/CMakeFiles/mc_pe.dir/validate.cpp.o" "gcc" "src/pe/CMakeFiles/mc_pe.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
