
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guestos/kernel.cpp" "src/guestos/CMakeFiles/mc_guestos.dir/kernel.cpp.o" "gcc" "src/guestos/CMakeFiles/mc_guestos.dir/kernel.cpp.o.d"
  "/root/repo/src/guestos/module_loader.cpp" "src/guestos/CMakeFiles/mc_guestos.dir/module_loader.cpp.o" "gcc" "src/guestos/CMakeFiles/mc_guestos.dir/module_loader.cpp.o.d"
  "/root/repo/src/guestos/profile.cpp" "src/guestos/CMakeFiles/mc_guestos.dir/profile.cpp.o" "gcc" "src/guestos/CMakeFiles/mc_guestos.dir/profile.cpp.o.d"
  "/root/repo/src/guestos/winlike.cpp" "src/guestos/CMakeFiles/mc_guestos.dir/winlike.cpp.o" "gcc" "src/guestos/CMakeFiles/mc_guestos.dir/winlike.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/mc_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
