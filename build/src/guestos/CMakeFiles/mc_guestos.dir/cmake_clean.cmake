file(REMOVE_RECURSE
  "CMakeFiles/mc_guestos.dir/kernel.cpp.o"
  "CMakeFiles/mc_guestos.dir/kernel.cpp.o.d"
  "CMakeFiles/mc_guestos.dir/module_loader.cpp.o"
  "CMakeFiles/mc_guestos.dir/module_loader.cpp.o.d"
  "CMakeFiles/mc_guestos.dir/profile.cpp.o"
  "CMakeFiles/mc_guestos.dir/profile.cpp.o.d"
  "CMakeFiles/mc_guestos.dir/winlike.cpp.o"
  "CMakeFiles/mc_guestos.dir/winlike.cpp.o.d"
  "libmc_guestos.a"
  "libmc_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
