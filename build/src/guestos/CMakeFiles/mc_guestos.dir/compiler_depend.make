# Empty compiler generated dependencies file for mc_guestos.
# This may be replaced when dependencies are built.
