file(REMOVE_RECURSE
  "libmc_guestos.a"
)
