file(REMOVE_RECURSE
  "libmc_vmi.a"
)
