# Empty dependencies file for mc_vmi.
# This may be replaced when dependencies are built.
