file(REMOVE_RECURSE
  "CMakeFiles/mc_vmi.dir/cost_model.cpp.o"
  "CMakeFiles/mc_vmi.dir/cost_model.cpp.o.d"
  "CMakeFiles/mc_vmi.dir/dump.cpp.o"
  "CMakeFiles/mc_vmi.dir/dump.cpp.o.d"
  "CMakeFiles/mc_vmi.dir/session.cpp.o"
  "CMakeFiles/mc_vmi.dir/session.cpp.o.d"
  "libmc_vmi.a"
  "libmc_vmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_vmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
