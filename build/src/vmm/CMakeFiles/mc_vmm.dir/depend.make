# Empty dependencies file for mc_vmm.
# This may be replaced when dependencies are built.
