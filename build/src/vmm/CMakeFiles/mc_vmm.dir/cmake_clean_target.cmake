file(REMOVE_RECURSE
  "libmc_vmm.a"
)
