file(REMOVE_RECURSE
  "CMakeFiles/mc_vmm.dir/address_space.cpp.o"
  "CMakeFiles/mc_vmm.dir/address_space.cpp.o.d"
  "CMakeFiles/mc_vmm.dir/contention.cpp.o"
  "CMakeFiles/mc_vmm.dir/contention.cpp.o.d"
  "CMakeFiles/mc_vmm.dir/domain.cpp.o"
  "CMakeFiles/mc_vmm.dir/domain.cpp.o.d"
  "CMakeFiles/mc_vmm.dir/hypervisor.cpp.o"
  "CMakeFiles/mc_vmm.dir/hypervisor.cpp.o.d"
  "CMakeFiles/mc_vmm.dir/phys_mem.cpp.o"
  "CMakeFiles/mc_vmm.dir/phys_mem.cpp.o.d"
  "libmc_vmm.a"
  "libmc_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
