
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/address_space.cpp" "src/vmm/CMakeFiles/mc_vmm.dir/address_space.cpp.o" "gcc" "src/vmm/CMakeFiles/mc_vmm.dir/address_space.cpp.o.d"
  "/root/repo/src/vmm/contention.cpp" "src/vmm/CMakeFiles/mc_vmm.dir/contention.cpp.o" "gcc" "src/vmm/CMakeFiles/mc_vmm.dir/contention.cpp.o.d"
  "/root/repo/src/vmm/domain.cpp" "src/vmm/CMakeFiles/mc_vmm.dir/domain.cpp.o" "gcc" "src/vmm/CMakeFiles/mc_vmm.dir/domain.cpp.o.d"
  "/root/repo/src/vmm/hypervisor.cpp" "src/vmm/CMakeFiles/mc_vmm.dir/hypervisor.cpp.o" "gcc" "src/vmm/CMakeFiles/mc_vmm.dir/hypervisor.cpp.o.d"
  "/root/repo/src/vmm/phys_mem.cpp" "src/vmm/CMakeFiles/mc_vmm.dir/phys_mem.cpp.o" "gcc" "src/vmm/CMakeFiles/mc_vmm.dir/phys_mem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
