file(REMOVE_RECURSE
  "CMakeFiles/mc_workload.dir/heavyload.cpp.o"
  "CMakeFiles/mc_workload.dir/heavyload.cpp.o.d"
  "CMakeFiles/mc_workload.dir/monitor.cpp.o"
  "CMakeFiles/mc_workload.dir/monitor.cpp.o.d"
  "libmc_workload.a"
  "libmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
