# Empty compiler generated dependencies file for mc_workload.
# This may be replaced when dependencies are built.
