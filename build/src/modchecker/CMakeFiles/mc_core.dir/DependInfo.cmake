
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modchecker/audit.cpp" "src/modchecker/CMakeFiles/mc_core.dir/audit.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/audit.cpp.o.d"
  "/root/repo/src/modchecker/checker.cpp" "src/modchecker/CMakeFiles/mc_core.dir/checker.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/checker.cpp.o.d"
  "/root/repo/src/modchecker/forensics.cpp" "src/modchecker/CMakeFiles/mc_core.dir/forensics.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/forensics.cpp.o.d"
  "/root/repo/src/modchecker/history.cpp" "src/modchecker/CMakeFiles/mc_core.dir/history.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/history.cpp.o.d"
  "/root/repo/src/modchecker/incremental.cpp" "src/modchecker/CMakeFiles/mc_core.dir/incremental.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/incremental.cpp.o.d"
  "/root/repo/src/modchecker/modchecker.cpp" "src/modchecker/CMakeFiles/mc_core.dir/modchecker.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/modchecker.cpp.o.d"
  "/root/repo/src/modchecker/parser.cpp" "src/modchecker/CMakeFiles/mc_core.dir/parser.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/parser.cpp.o.d"
  "/root/repo/src/modchecker/report.cpp" "src/modchecker/CMakeFiles/mc_core.dir/report.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/report.cpp.o.d"
  "/root/repo/src/modchecker/report_json.cpp" "src/modchecker/CMakeFiles/mc_core.dir/report_json.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/report_json.cpp.o.d"
  "/root/repo/src/modchecker/rva_adjust.cpp" "src/modchecker/CMakeFiles/mc_core.dir/rva_adjust.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/rva_adjust.cpp.o.d"
  "/root/repo/src/modchecker/scheduler.cpp" "src/modchecker/CMakeFiles/mc_core.dir/scheduler.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/modchecker/searcher.cpp" "src/modchecker/CMakeFiles/mc_core.dir/searcher.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/searcher.cpp.o.d"
  "/root/repo/src/modchecker/triage.cpp" "src/modchecker/CMakeFiles/mc_core.dir/triage.cpp.o" "gcc" "src/modchecker/CMakeFiles/mc_core.dir/triage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/mc_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/vmi/CMakeFiles/mc_vmi.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/mc_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/mc_guestos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
