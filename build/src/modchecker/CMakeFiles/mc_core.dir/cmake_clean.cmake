file(REMOVE_RECURSE
  "CMakeFiles/mc_core.dir/audit.cpp.o"
  "CMakeFiles/mc_core.dir/audit.cpp.o.d"
  "CMakeFiles/mc_core.dir/checker.cpp.o"
  "CMakeFiles/mc_core.dir/checker.cpp.o.d"
  "CMakeFiles/mc_core.dir/forensics.cpp.o"
  "CMakeFiles/mc_core.dir/forensics.cpp.o.d"
  "CMakeFiles/mc_core.dir/history.cpp.o"
  "CMakeFiles/mc_core.dir/history.cpp.o.d"
  "CMakeFiles/mc_core.dir/incremental.cpp.o"
  "CMakeFiles/mc_core.dir/incremental.cpp.o.d"
  "CMakeFiles/mc_core.dir/modchecker.cpp.o"
  "CMakeFiles/mc_core.dir/modchecker.cpp.o.d"
  "CMakeFiles/mc_core.dir/parser.cpp.o"
  "CMakeFiles/mc_core.dir/parser.cpp.o.d"
  "CMakeFiles/mc_core.dir/report.cpp.o"
  "CMakeFiles/mc_core.dir/report.cpp.o.d"
  "CMakeFiles/mc_core.dir/report_json.cpp.o"
  "CMakeFiles/mc_core.dir/report_json.cpp.o.d"
  "CMakeFiles/mc_core.dir/rva_adjust.cpp.o"
  "CMakeFiles/mc_core.dir/rva_adjust.cpp.o.d"
  "CMakeFiles/mc_core.dir/scheduler.cpp.o"
  "CMakeFiles/mc_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/mc_core.dir/searcher.cpp.o"
  "CMakeFiles/mc_core.dir/searcher.cpp.o.d"
  "CMakeFiles/mc_core.dir/triage.cpp.o"
  "CMakeFiles/mc_core.dir/triage.cpp.o.d"
  "libmc_core.a"
  "libmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
