
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/assembler.cpp" "src/x86/CMakeFiles/mc_x86.dir/assembler.cpp.o" "gcc" "src/x86/CMakeFiles/mc_x86.dir/assembler.cpp.o.d"
  "/root/repo/src/x86/codegen.cpp" "src/x86/CMakeFiles/mc_x86.dir/codegen.cpp.o" "gcc" "src/x86/CMakeFiles/mc_x86.dir/codegen.cpp.o.d"
  "/root/repo/src/x86/decoder.cpp" "src/x86/CMakeFiles/mc_x86.dir/decoder.cpp.o" "gcc" "src/x86/CMakeFiles/mc_x86.dir/decoder.cpp.o.d"
  "/root/repo/src/x86/disasm.cpp" "src/x86/CMakeFiles/mc_x86.dir/disasm.cpp.o" "gcc" "src/x86/CMakeFiles/mc_x86.dir/disasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
