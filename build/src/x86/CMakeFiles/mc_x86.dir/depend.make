# Empty dependencies file for mc_x86.
# This may be replaced when dependencies are built.
