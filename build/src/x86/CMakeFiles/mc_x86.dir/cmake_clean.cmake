file(REMOVE_RECURSE
  "CMakeFiles/mc_x86.dir/assembler.cpp.o"
  "CMakeFiles/mc_x86.dir/assembler.cpp.o.d"
  "CMakeFiles/mc_x86.dir/codegen.cpp.o"
  "CMakeFiles/mc_x86.dir/codegen.cpp.o.d"
  "CMakeFiles/mc_x86.dir/decoder.cpp.o"
  "CMakeFiles/mc_x86.dir/decoder.cpp.o.d"
  "CMakeFiles/mc_x86.dir/disasm.cpp.o"
  "CMakeFiles/mc_x86.dir/disasm.cpp.o.d"
  "libmc_x86.a"
  "libmc_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
