file(REMOVE_RECURSE
  "libmc_x86.a"
)
