# Empty dependencies file for mc_crypto.
# This may be replaced when dependencies are built.
