file(REMOVE_RECURSE
  "libmc_crypto.a"
)
