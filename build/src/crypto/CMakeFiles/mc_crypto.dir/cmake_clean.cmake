file(REMOVE_RECURSE
  "CMakeFiles/mc_crypto.dir/crc32.cpp.o"
  "CMakeFiles/mc_crypto.dir/crc32.cpp.o.d"
  "CMakeFiles/mc_crypto.dir/digest.cpp.o"
  "CMakeFiles/mc_crypto.dir/digest.cpp.o.d"
  "CMakeFiles/mc_crypto.dir/hasher.cpp.o"
  "CMakeFiles/mc_crypto.dir/hasher.cpp.o.d"
  "CMakeFiles/mc_crypto.dir/md5.cpp.o"
  "CMakeFiles/mc_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/mc_crypto.dir/sha1.cpp.o"
  "CMakeFiles/mc_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/mc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mc_crypto.dir/sha256.cpp.o.d"
  "libmc_crypto.a"
  "libmc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
