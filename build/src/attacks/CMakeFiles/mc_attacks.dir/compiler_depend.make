# Empty compiler generated dependencies file for mc_attacks.
# This may be replaced when dependencies are built.
