file(REMOVE_RECURSE
  "CMakeFiles/mc_attacks.dir/byte_patch.cpp.o"
  "CMakeFiles/mc_attacks.dir/byte_patch.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/campaign.cpp.o"
  "CMakeFiles/mc_attacks.dir/campaign.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/dkom_hide.cpp.o"
  "CMakeFiles/mc_attacks.dir/dkom_hide.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/dll_import_inject.cpp.o"
  "CMakeFiles/mc_attacks.dir/dll_import_inject.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/eat_hook.cpp.o"
  "CMakeFiles/mc_attacks.dir/eat_hook.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/guest_writer.cpp.o"
  "CMakeFiles/mc_attacks.dir/guest_writer.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/header_tamper.cpp.o"
  "CMakeFiles/mc_attacks.dir/header_tamper.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/hollowing.cpp.o"
  "CMakeFiles/mc_attacks.dir/hollowing.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/iat_hook.cpp.o"
  "CMakeFiles/mc_attacks.dir/iat_hook.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/inline_hook.cpp.o"
  "CMakeFiles/mc_attacks.dir/inline_hook.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/opcode_replace.cpp.o"
  "CMakeFiles/mc_attacks.dir/opcode_replace.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/stub_patch.cpp.o"
  "CMakeFiles/mc_attacks.dir/stub_patch.cpp.o.d"
  "CMakeFiles/mc_attacks.dir/version_spoof.cpp.o"
  "CMakeFiles/mc_attacks.dir/version_spoof.cpp.o.d"
  "libmc_attacks.a"
  "libmc_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
