
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/byte_patch.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/byte_patch.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/byte_patch.cpp.o.d"
  "/root/repo/src/attacks/campaign.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/campaign.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/campaign.cpp.o.d"
  "/root/repo/src/attacks/dkom_hide.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/dkom_hide.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/dkom_hide.cpp.o.d"
  "/root/repo/src/attacks/dll_import_inject.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/dll_import_inject.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/dll_import_inject.cpp.o.d"
  "/root/repo/src/attacks/eat_hook.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/eat_hook.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/eat_hook.cpp.o.d"
  "/root/repo/src/attacks/guest_writer.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/guest_writer.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/guest_writer.cpp.o.d"
  "/root/repo/src/attacks/header_tamper.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/header_tamper.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/header_tamper.cpp.o.d"
  "/root/repo/src/attacks/hollowing.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/hollowing.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/hollowing.cpp.o.d"
  "/root/repo/src/attacks/iat_hook.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/iat_hook.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/iat_hook.cpp.o.d"
  "/root/repo/src/attacks/inline_hook.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/inline_hook.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/inline_hook.cpp.o.d"
  "/root/repo/src/attacks/opcode_replace.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/opcode_replace.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/opcode_replace.cpp.o.d"
  "/root/repo/src/attacks/stub_patch.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/stub_patch.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/stub_patch.cpp.o.d"
  "/root/repo/src/attacks/version_spoof.cpp" "src/attacks/CMakeFiles/mc_attacks.dir/version_spoof.cpp.o" "gcc" "src/attacks/CMakeFiles/mc_attacks.dir/version_spoof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/mc_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/mc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/mc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/mc_vmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
