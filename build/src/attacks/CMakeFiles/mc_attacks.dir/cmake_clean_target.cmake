file(REMOVE_RECURSE
  "libmc_attacks.a"
)
