# Empty compiler generated dependencies file for mc_cloud.
# This may be replaced when dependencies are built.
