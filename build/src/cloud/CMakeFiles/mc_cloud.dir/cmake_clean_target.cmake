file(REMOVE_RECURSE
  "libmc_cloud.a"
)
