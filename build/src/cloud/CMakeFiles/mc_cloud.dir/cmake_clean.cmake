file(REMOVE_RECURSE
  "CMakeFiles/mc_cloud.dir/catalog.cpp.o"
  "CMakeFiles/mc_cloud.dir/catalog.cpp.o.d"
  "CMakeFiles/mc_cloud.dir/environment.cpp.o"
  "CMakeFiles/mc_cloud.dir/environment.cpp.o.d"
  "CMakeFiles/mc_cloud.dir/golden.cpp.o"
  "CMakeFiles/mc_cloud.dir/golden.cpp.o.d"
  "libmc_cloud.a"
  "libmc_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
