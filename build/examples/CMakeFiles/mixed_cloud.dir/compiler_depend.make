# Empty compiler generated dependencies file for mixed_cloud.
# This may be replaced when dependencies are built.
