file(REMOVE_RECURSE
  "CMakeFiles/mixed_cloud.dir/mixed_cloud.cpp.o"
  "CMakeFiles/mixed_cloud.dir/mixed_cloud.cpp.o.d"
  "mixed_cloud"
  "mixed_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
