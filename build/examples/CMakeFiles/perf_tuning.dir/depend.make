# Empty dependencies file for perf_tuning.
# This may be replaced when dependencies are built.
