file(REMOVE_RECURSE
  "CMakeFiles/perf_tuning.dir/perf_tuning.cpp.o"
  "CMakeFiles/perf_tuning.dir/perf_tuning.cpp.o.d"
  "perf_tuning"
  "perf_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
