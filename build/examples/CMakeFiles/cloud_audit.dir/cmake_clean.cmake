file(REMOVE_RECURSE
  "CMakeFiles/cloud_audit.dir/cloud_audit.cpp.o"
  "CMakeFiles/cloud_audit.dir/cloud_audit.cpp.o.d"
  "cloud_audit"
  "cloud_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
