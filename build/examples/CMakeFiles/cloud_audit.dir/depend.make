# Empty dependencies file for cloud_audit.
# This may be replaced when dependencies are built.
