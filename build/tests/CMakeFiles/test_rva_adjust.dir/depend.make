# Empty dependencies file for test_rva_adjust.
# This may be replaced when dependencies are built.
