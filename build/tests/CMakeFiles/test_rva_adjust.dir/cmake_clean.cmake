file(REMOVE_RECURSE
  "CMakeFiles/test_rva_adjust.dir/rva_adjust_test.cpp.o"
  "CMakeFiles/test_rva_adjust.dir/rva_adjust_test.cpp.o.d"
  "test_rva_adjust"
  "test_rva_adjust.pdb"
  "test_rva_adjust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rva_adjust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
