# Empty dependencies file for test_history_sampling.
# This may be replaced when dependencies are built.
