file(REMOVE_RECURSE
  "CMakeFiles/test_history_sampling.dir/history_sampling_test.cpp.o"
  "CMakeFiles/test_history_sampling.dir/history_sampling_test.cpp.o.d"
  "test_history_sampling"
  "test_history_sampling.pdb"
  "test_history_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
