file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_audit.dir/scheduler_audit_test.cpp.o"
  "CMakeFiles/test_scheduler_audit.dir/scheduler_audit_test.cpp.o.d"
  "test_scheduler_audit"
  "test_scheduler_audit.pdb"
  "test_scheduler_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
