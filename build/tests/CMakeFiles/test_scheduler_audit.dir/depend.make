# Empty dependencies file for test_scheduler_audit.
# This may be replaced when dependencies are built.
