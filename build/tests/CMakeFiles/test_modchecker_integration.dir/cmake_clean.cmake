file(REMOVE_RECURSE
  "CMakeFiles/test_modchecker_integration.dir/modchecker_integration_test.cpp.o"
  "CMakeFiles/test_modchecker_integration.dir/modchecker_integration_test.cpp.o.d"
  "test_modchecker_integration"
  "test_modchecker_integration.pdb"
  "test_modchecker_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modchecker_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
