# Empty dependencies file for test_concurrency_stress.
# This may be replaced when dependencies are built.
