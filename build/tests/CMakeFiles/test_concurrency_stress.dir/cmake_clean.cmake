file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency_stress.dir/concurrency_stress_test.cpp.o"
  "CMakeFiles/test_concurrency_stress.dir/concurrency_stress_test.cpp.o.d"
  "test_concurrency_stress"
  "test_concurrency_stress.pdb"
  "test_concurrency_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
