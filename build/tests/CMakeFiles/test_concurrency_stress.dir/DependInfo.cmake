
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrency_stress_test.cpp" "tests/CMakeFiles/test_concurrency_stress.dir/concurrency_stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_concurrency_stress.dir/concurrency_stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/modchecker/CMakeFiles/mc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/mc_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/mc_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vmi/CMakeFiles/mc_vmi.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/mc_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/mc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mc_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/mc_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
