# Empty compiler generated dependencies file for test_list_compare_json.
# This may be replaced when dependencies are built.
