file(REMOVE_RECURSE
  "CMakeFiles/test_list_compare_json.dir/list_compare_json_test.cpp.o"
  "CMakeFiles/test_list_compare_json.dir/list_compare_json_test.cpp.o.d"
  "test_list_compare_json"
  "test_list_compare_json.pdb"
  "test_list_compare_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_compare_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
