file(REMOVE_RECURSE
  "CMakeFiles/test_guestos.dir/guestos_test.cpp.o"
  "CMakeFiles/test_guestos.dir/guestos_test.cpp.o.d"
  "test_guestos"
  "test_guestos.pdb"
  "test_guestos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
