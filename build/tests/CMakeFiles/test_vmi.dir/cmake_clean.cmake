file(REMOVE_RECURSE
  "CMakeFiles/test_vmi.dir/vmi_test.cpp.o"
  "CMakeFiles/test_vmi.dir/vmi_test.cpp.o.d"
  "test_vmi"
  "test_vmi.pdb"
  "test_vmi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
