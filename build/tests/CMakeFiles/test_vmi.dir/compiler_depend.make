# Empty compiler generated dependencies file for test_vmi.
# This may be replaced when dependencies are built.
