file(REMOVE_RECURSE
  "CMakeFiles/test_pe.dir/pe_test.cpp.o"
  "CMakeFiles/test_pe.dir/pe_test.cpp.o.d"
  "test_pe"
  "test_pe.pdb"
  "test_pe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
