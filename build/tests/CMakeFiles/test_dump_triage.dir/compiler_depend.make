# Empty compiler generated dependencies file for test_dump_triage.
# This may be replaced when dependencies are built.
