file(REMOVE_RECURSE
  "CMakeFiles/test_dump_triage.dir/dump_triage_test.cpp.o"
  "CMakeFiles/test_dump_triage.dir/dump_triage_test.cpp.o.d"
  "test_dump_triage"
  "test_dump_triage.pdb"
  "test_dump_triage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dump_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
