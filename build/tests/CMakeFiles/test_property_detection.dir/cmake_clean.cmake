file(REMOVE_RECURSE
  "CMakeFiles/test_property_detection.dir/property_detection_test.cpp.o"
  "CMakeFiles/test_property_detection.dir/property_detection_test.cpp.o.d"
  "test_property_detection"
  "test_property_detection.pdb"
  "test_property_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
