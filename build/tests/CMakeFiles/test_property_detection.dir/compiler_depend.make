# Empty compiler generated dependencies file for test_property_detection.
# This may be replaced when dependencies are built.
