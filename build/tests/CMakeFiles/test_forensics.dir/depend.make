# Empty dependencies file for test_forensics.
# This may be replaced when dependencies are built.
